"""Reliable delivery over the lossy simulated transport.

:class:`ReliableEndpoint` wraps a :class:`~repro.net.transport.Node`
with the recovery machinery real middleware runs on top of a lossy
datagram fabric:

* **sequence-numbered sends** with positive acknowledgements,
* **retransmission** on ack timeout, with exponential backoff and
  seeded jitter (all timers ride the network's virtual-time event
  queue, so every run is deterministic for a given seed),
* **bounded retries** — a send that exhausts its retry budget is
  reported as failed, never retried forever,
* **duplicate suppression** on the receive side (retransmits whose
  original did arrive, or whose ack was lost, are dropped and counted),
* **in-order delivery** per peer: frames that arrive ahead of a gap are
  buffered and handed to the application strictly in send order.  A
  retransmitted *old* message can therefore never overtake (or, worse,
  follow and clobber) a newer one — last-writer-wins state like the
  channel membership replicas depends on this.  A sender that exhausts
  the retry budget for a sequence number emits a best-effort ``GAP``
  frame so receivers can skip the hole instead of stalling; a receiver
  whose hole stays unfilled longer than any same-configured sender
  could still be retrying (the GAP itself was lost — e.g. the sender
  gave up while this node was down) skips it on a **stall timeout**,
  so crash recovery never wedges a peer's stream,
* a per-peer **circuit breaker**: after N consecutive ack timeouts the
  peer is declared down and new sends fail fast; after a cooldown one
  half-open probe is admitted, and a successful ack closes the circuit.

Framing: reliable traffic is prefixed with a 13-byte header (magic +
frame type + sequence number).  Frames without the magic pass straight
through to the application handler, so reliable and raw traffic can
share one node.

Observability: every endpoint counts retries, duplicate drops, breaker
openings and the rest locally (plain attributes, always on) and mirrors
them into ``repro.obs`` as ``net.reliable.*`` counters when enabled.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.net.transport import Network, Node
from repro.obs import OBS
from repro.obs.tracectx import activate

#: Frame magic: deliberately distinct from PBIO's header magic and from
#: the ``{``-prefixed JSON of the meta-data plane.
MAGIC = b"RLP1"
_FRAME_DATA = 0
_FRAME_ACK = 1
_FRAME_GAP = 2  # "I gave up on this seq; deliver around it"
_HEADER = struct.Struct(">4sBQ")  # magic, frame type, sequence number
HEADER_SIZE = _HEADER.size

#: Reorder-buffer marker for a sequence number the sender abandoned.
_SKIPPED = object()

MessageHandler = Callable[[str, bytes], None]


def _peek_any_trace(payload: bytes):
    """Best-effort trace sniff of a reliable payload: a bare PBIO
    message or a BATCH1 frame (one block per frame)."""
    from repro.net.batch import peek_batch_trace  # late: module init order
    from repro.pbio.buffer import peek_trace  # late: layering

    ctx = peek_batch_trace(payload)
    if ctx is not None:
        return ctx
    return peek_trace(payload)


class CircuitBreaker:
    """Per-peer failure detector with the classic three states.

    ``closed`` (healthy) -> ``open`` after *threshold* consecutive ack
    timeouts -> ``half_open`` after *cooldown* virtual seconds, admitting
    a single probe -> back to ``closed`` on ack, back to ``open`` on
    another timeout.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    __slots__ = ("threshold", "cooldown", "state", "failures", "opened_at",
                 "opens", "probe_in_flight")

    def __init__(self, threshold: int = 5, cooldown: float = 1.0) -> None:
        if threshold < 1:
            raise TransportError("breaker threshold must be >= 1")
        if cooldown < 0:
            raise TransportError("breaker cooldown must be >= 0")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        #: closed->open transitions (tests and obs reconcile against it)
        self.opens = 0
        self.probe_in_flight = False

    def allow(self, now: float) -> bool:
        """May a new send go to this peer at virtual time *now*?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now - self.opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                self.probe_in_flight = True
                return True
            return False
        # half-open: exactly one probe may be outstanding
        if not self.probe_in_flight:
            self.probe_in_flight = True
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.probe_in_flight = False
        self.state = self.CLOSED

    def record_failure(self, now: float) -> bool:
        """Record one ack timeout; returns True when this transition
        opened the circuit."""
        self.failures += 1
        if self.state == self.HALF_OPEN:
            self.state = self.OPEN
            self.opened_at = now
            self.opens += 1
            self.probe_in_flight = False
            return True
        if self.state == self.CLOSED and self.failures >= self.threshold:
            self.state = self.OPEN
            self.opened_at = now
            self.opens += 1
            return True
        return False


class SendTicket:
    """The fate of one reliable send.

    ``state`` moves ``pending`` -> ``acked`` | ``failed`` (retry budget
    exhausted) | ``rejected`` (circuit open, never transmitted).  The
    optional ``on_result`` callback fires exactly once, with the ticket,
    when the state becomes final.
    """

    __slots__ = ("destination", "seq", "payload", "state", "attempts",
                 "retry_times", "on_result")

    def __init__(
        self,
        destination: str,
        seq: int,
        payload: bytes,
        on_result: Optional[Callable[["SendTicket"], None]] = None,
    ) -> None:
        self.destination = destination
        self.seq = seq
        self.payload = payload
        self.state = "pending"
        self.attempts = 0
        #: virtual times at which (re)transmissions happened — the
        #: backoff schedule, asserted deterministic by the tests
        self.retry_times: List[float] = []
        self.on_result = on_result

    @property
    def final(self) -> bool:
        return self.state != "pending"

    def _finish(self, state: str) -> None:
        self.state = state
        if self.on_result is not None:
            callback, self.on_result = self.on_result, None
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SendTicket(to={self.destination!r}, seq={self.seq}, "
                f"state={self.state!r}, attempts={self.attempts})")


class ReliableEndpoint:
    """Sequence/ack/retry reliability layered over one network node.

    Parameters
    ----------
    network / address:
        Where to attach.  Pass ``node=`` instead of *address* to wrap a
        node that already exists (the ECho integration does this).
    base_timeout:
        Ack timeout of the first transmission, in virtual seconds.
        Retry *k* waits ``base_timeout * backoff_factor**k`` plus jitter.
    backoff_factor / retry_jitter:
        Exponential backoff multiplier and the maximum uniform jitter
        added per retry (drawn from this endpoint's own seeded RNG).
    max_retries:
        Retransmissions after the initial send before giving up.
    breaker_threshold / breaker_cooldown:
        Consecutive ack timeouts that open a peer's circuit, and how
        long the circuit stays open before a half-open probe.
    stall_timeout:
        How long (virtual seconds) in-order delivery waits on an
        unfilled sequence hole before skipping it.  ``None`` derives a
        safe value from this endpoint's own retry schedule: 1.25x the
        full retransmission span, so a frame is only ever skipped after
        a same-configured sender must have given up on it.
    seed:
        Jitter RNG seed; combined with the address so distinct endpoints
        draw distinct (but reproducible) schedules.
    """

    def __init__(
        self,
        network: Network,
        address: Optional[str] = None,
        *,
        node: Optional[Node] = None,
        base_timeout: float = 0.05,
        backoff_factor: float = 2.0,
        retry_jitter: float = 0.005,
        max_retries: int = 8,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 1.0,
        stall_timeout: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        if (address is None) == (node is None):
            raise TransportError(
                "ReliableEndpoint needs exactly one of address= or node="
            )
        if base_timeout <= 0:
            raise TransportError("base_timeout must be > 0")
        if backoff_factor < 1.0:
            raise TransportError("backoff_factor must be >= 1")
        if max_retries < 0:
            raise TransportError("max_retries must be >= 0")
        self.network = network
        self.node = node if node is not None else network.add_node(address)
        self.node.set_handler(self._on_raw)
        self.base_timeout = base_timeout
        self.backoff_factor = backoff_factor
        self.retry_jitter = retry_jitter
        self.max_retries = max_retries
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        if stall_timeout is None:
            # 1.25x the full retransmission span of a sender with this
            # configuration: by then the missing frame can never arrive.
            span = base_timeout * sum(
                backoff_factor ** k for k in range(max_retries + 1)
            )
            stall_timeout = 1.25 * span + (max_retries + 1) * retry_jitter
        self.stall_timeout = stall_timeout
        self._rng = random.Random(f"{seed}:{self.node.address}")
        self._handler: Optional[MessageHandler] = None
        self._next_seq: Dict[str, int] = {}
        self._pending: Dict[Tuple[str, int], SendTicket] = {}
        #: next sequence number to *deliver* from each peer
        self._expected: Dict[str, int] = {}
        #: frames received ahead of a gap, keyed peer -> seq -> payload
        self._reorder: Dict[str, Dict[int, object]] = {}
        #: per-peer stall watchdog: (timer, expected-seq when scheduled)
        self._stall_watch: Dict[str, Tuple[object, int]] = {}
        #: sequence numbers this sender abandoned, per peer — their GAP
        #: frames ride along with every later transmit until the peer
        #: acknowledges them, so a receiver that was down when the
        #: original GAP was sent unstalls on the next contact instead of
        #: waiting out its stall timeout
        self._holes: Dict[str, set] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        # -- counters (always-on attributes, mirrored to repro.obs) -----
        self.sent = 0
        self.acked = 0
        self.failed = 0
        self.rejected = 0
        self.retries = 0
        self.dup_drops = 0
        self.delivered = 0
        self.reordered = 0
        self.gap_skips = 0
        self.stall_skips = 0
        self.passthrough = 0
        self.breaker_opens = 0

    @property
    def address(self) -> str:
        return self.node.address

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def set_handler(self, handler: MessageHandler) -> None:
        """Install the application receive callback ``handler(source,
        payload)`` — called exactly once per distinct reliable payload,
        and once per raw (non-reliable) message."""
        self._handler = handler

    def breaker(self, peer: str) -> CircuitBreaker:
        breaker = self._breakers.get(peer)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_threshold,
                                     self.breaker_cooldown)
            self._breakers[peer] = breaker
        return breaker

    def send(
        self,
        destination: str,
        payload: bytes,
        on_result: Optional[Callable[[SendTicket], None]] = None,
    ) -> SendTicket:
        """Send *payload* reliably; returns the :class:`SendTicket`.

        When the destination's circuit is open the ticket is finished as
        ``rejected`` immediately (fail fast — the caller decides whether
        to queue, fail over, or drop)."""
        if not isinstance(payload, bytes):
            # normalize memoryview/bytearray payloads (e.g. a batch-frame
            # slice forwarded raw by the fabric) so framing can prepend
            # the RLP1 header and retransmits own their bytes
            payload = bytes(payload)
        breaker = self.breaker(destination)
        if not breaker.allow(self.network.now):
            # Rejected before a sequence number is consumed: admitted
            # sends must stay gap-free or the peer's in-order delivery
            # would stall on a seq that was never transmitted.
            ticket = SendTicket(
                destination, self._next_seq.get(destination, 0), payload,
                on_result,
            )
            self.rejected += 1
            self._count("breaker_rejects", peer=destination)
            ticket._finish("rejected")
            return ticket
        seq = self._next_seq.get(destination, 0)
        self._next_seq[destination] = seq + 1
        ticket = SendTicket(destination, seq, payload, on_result)
        self.sent += 1
        self._count("sends", peer=destination)
        self._pending[(destination, seq)] = ticket
        self._gauge_in_flight()
        self._transmit(ticket)
        return ticket

    def _transmit(self, ticket: SendTicket) -> None:
        ticket.attempts += 1
        ticket.retry_times.append(self.network.now)
        for hole in sorted(self._holes.get(ticket.destination, ())):
            self.node.send(
                ticket.destination, _HEADER.pack(MAGIC, _FRAME_GAP, hole)
            )
        frame = _HEADER.pack(MAGIC, _FRAME_DATA, ticket.seq) + ticket.payload
        if OBS.enabled:
            # A traced payload makes every (re)transmission a span of its
            # trace, so the flight recorder can show loss recovery and
            # backoff as part of the message's journey.  A BATCH1 payload
            # carries one frame-level block covering all its messages.
            name = (
                "net.reliable.send" if ticket.attempts == 1
                else "net.reliable.retransmit"
            )
            with activate(_peek_any_trace(ticket.payload)), OBS.tracer.span(
                name,
                peer=ticket.destination,
                process=self.address,
                seq=ticket.seq,
                attempt=ticket.attempts,
                vtime=self.network.now,
            ):
                self.node.send(ticket.destination, frame)
        else:
            self.node.send(ticket.destination, frame)
        timeout = self.base_timeout * (
            self.backoff_factor ** (ticket.attempts - 1)
        )
        if self.retry_jitter:
            timeout += self._rng.uniform(0.0, self.retry_jitter)
        self.network.call_later(timeout, lambda: self._on_timeout(ticket))

    def abort_in_flight(self) -> int:
        """Finish every pending ticket as ``failed`` without any wire
        traffic — the process-kill model.  A crashed process sends no
        GAP farewell and schedules no retransmits; its already-armed
        retry timers become no-ops because the tickets are final when
        they fire.  Peers discover the holes through their own stall
        watchdogs, exactly as with a real dead process.  Returns the
        number of sends aborted."""
        aborted = 0
        for ticket in list(self._pending.values()):
            if ticket.final:
                continue
            aborted += 1
            self.failed += 1
            self._count("aborted", peer=ticket.destination)
            ticket._finish("failed")
        self._pending.clear()
        self._gauge_in_flight()
        return aborted

    def _on_timeout(self, ticket: SendTicket) -> None:
        if ticket.final:
            return  # acked (or failed) before this timer fired
        breaker = self.breaker(ticket.destination)
        if breaker.record_failure(self.network.now):
            self.breaker_opens += 1
            self._count("breaker_open", peer=ticket.destination)
        if ticket.attempts > self.max_retries:
            self._pending.pop((ticket.destination, ticket.seq), None)
            self._gauge_in_flight()
            self.failed += 1
            self._count("give_ups", peer=ticket.destination)
            # Tell the peer to deliver around this seq so its in-order
            # pipeline doesn't stall on the hole; the hole is remembered
            # and re-advertised with every later transmit until acked.
            self._holes.setdefault(ticket.destination, set()).add(ticket.seq)
            self.node.send(
                ticket.destination,
                _HEADER.pack(MAGIC, _FRAME_GAP, ticket.seq),
            )
            ticket._finish("failed")
            return
        self.retries += 1
        self._count("retries", peer=ticket.destination)
        self._transmit(ticket)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def _on_raw(self, source: str, data: bytes) -> None:
        if len(data) < HEADER_SIZE or bytes(data[:4]) != MAGIC:
            # raw traffic sharing the node: hand through untouched
            self.passthrough += 1
            if self._handler is not None:
                self._handler(source, data)
            return
        magic, frame_type, seq = _HEADER.unpack_from(data)
        payload = data[HEADER_SIZE:]
        if frame_type == _FRAME_ACK:
            self._on_ack(source, seq)
        elif frame_type == _FRAME_DATA:
            self._on_data(source, seq, payload)
        elif frame_type == _FRAME_GAP:
            self._on_gap(source, seq)
        # unknown frame types are dropped: forward compatibility

    def _on_data(self, source: str, seq: int, payload: bytes) -> None:
        # Always re-ack: the retransmit may mean our previous ack was lost.
        self.node.send(source, _HEADER.pack(MAGIC, _FRAME_ACK, seq))
        buffered = self._reorder.setdefault(source, {})
        if seq < self._expected.get(source, 0) or seq in buffered:
            self.dup_drops += 1
            self._count("dup_drops", peer=source)
            return
        if seq != self._expected.get(source, 0):
            self.reordered += 1
            self._count("reordered", peer=source)
        buffered[seq] = payload
        self._drain(source)

    def _on_gap(self, source: str, seq: int) -> None:
        """The sender abandoned *seq*: mark the hole deliverable-around."""
        # Ack the gap too, so the sender can stop re-advertising it.
        self.node.send(source, _HEADER.pack(MAGIC, _FRAME_ACK, seq))
        buffered = self._reorder.setdefault(source, {})
        if seq < self._expected.get(source, 0) or seq in buffered:
            return  # already delivered or already buffered (stale gap)
        self.gap_skips += 1
        self._count("gap_skips", peer=source)
        buffered[seq] = _SKIPPED
        self._drain(source)

    def _drain(self, source: str) -> None:
        """Deliver every consecutively-buffered frame, in seq order."""
        buffered = self._reorder.get(source)
        if buffered:
            while True:
                expected = self._expected.get(source, 0)
                if expected not in buffered:
                    break
                payload = buffered.pop(expected)
                self._expected[source] = expected + 1
                if payload is _SKIPPED:
                    continue
                self.delivered += 1
                if self._handler is not None:
                    # The handler may send (and even receive, via
                    # zero-delay deliveries) reentrantly; re-reading
                    # _expected each iteration keeps the drain
                    # consistent under that.
                    if OBS.enabled:
                        with activate(_peek_any_trace(payload)), OBS.tracer.span(
                            "net.reliable.deliver",
                            peer=source,
                            process=self.address,
                            seq=expected,
                            vtime=self.network.now,
                        ):
                            self._handler(source, payload)
                    else:
                        self._handler(source, payload)
        self._watch_stall(source)

    def _watch_stall(self, source: str) -> None:
        """Arm (or re-arm) the stall watchdog while frames sit behind an
        unfilled hole; disarm it once the buffer is clear."""
        buffered = self._reorder.get(source)
        watch = self._stall_watch.get(source)
        if not buffered:
            if watch is not None:
                watch[0].cancel()
                del self._stall_watch[source]
            return
        if watch is not None:
            return  # already armed; _on_stall re-arms after it fires
        timer = self.network.call_later(
            self.stall_timeout, lambda: self._on_stall(source)
        )
        self._stall_watch[source] = (timer, self._expected.get(source, 0))

    def _on_stall(self, source: str) -> None:
        _timer, marked_expected = self._stall_watch.pop(source)
        buffered = self._reorder.get(source)
        if not buffered:
            return
        expected = self._expected.get(source, 0)
        if expected == marked_expected:
            # No progress for a full stall_timeout: the hole can never
            # fill (every retransmission window has passed).  Skip to
            # the oldest buffered frame and deliver from there.
            target = min(buffered)
            self.stall_skips += target - expected
            self._count("stall_skips", peer=source)
            self._expected[source] = target
        self._drain(source)

    def _on_ack(self, source: str, seq: int) -> None:
        holes = self._holes.get(source)
        if holes is not None:
            # The peer saw this seq (as data or as a gap notice): the
            # hole can no longer stall it, stop re-advertising.
            holes.discard(seq)
            if not holes:
                del self._holes[source]
        ticket = self._pending.pop((source, seq), None)
        if ticket is None or ticket.final:
            return  # duplicate or stale ack
        self._gauge_in_flight()
        self.acked += 1
        self._count("acked", peer=source)
        self.breaker(source).record_success()
        ticket._finish("acked")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Sends still awaiting an ack."""
        return len(self._pending)

    def counters(self) -> Dict[str, int]:
        """Snapshot of the endpoint's reliability counters."""
        return {
            "sent": self.sent,
            "acked": self.acked,
            "failed": self.failed,
            "rejected": self.rejected,
            "retries": self.retries,
            "dup_drops": self.dup_drops,
            "delivered": self.delivered,
            "reordered": self.reordered,
            "gap_skips": self.gap_skips,
            "stall_skips": self.stall_skips,
            "passthrough": self.passthrough,
            "breaker_opens": self.breaker_opens,
        }

    def _count(self, name: str, **labels: str) -> None:
        if OBS.enabled:
            OBS.metrics.counter(
                f"net.reliable.{name}", endpoint=self.address, **labels
            ).inc()

    def _gauge_in_flight(self) -> None:
        if OBS.enabled:
            OBS.metrics.gauge(
                "net.reliable.in_flight", endpoint=self.address
            ).set(len(self._pending))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReliableEndpoint({self.address!r}, sent={self.sent}, "
                f"acked={self.acked}, in_flight={self.in_flight})")
