"""BATCH1 — the wire-level message batch frame.

Per-message Python overhead (header peeks, trace splices,
reliable-endpoint bookkeeping) dominates the hot path once the
specialized codecs have flattened marshalling cost.  A BATCH1 frame
amortizes all of it: K complete PBIO messages ride in **one** frame, so
the whole group costs one transport send, one trace splice, one reliable
sequence number and one header peek at every hop that only routes bytes.

Frame layout (all integers big-endian)::

    +----------- BATCH1 header (12 bytes) ---------------------+
    | magic "BATCH1" (6) | version u8 (=1) | flags u8 | count u32 |
    +----------------------------------------------------------+
    | trace-context block (26 bytes, iff flags bit 0)          |
    +----------------------------------------------------------+
    | count x ( length u32 | message bytes )                   |
    +----------------------------------------------------------+

The trace block is the same 26-byte :mod:`repro.obs.tracectx` block the
PBIO header carries for single messages — spliced once per *frame*.
Messages inside a batch are normally published without their own trace
flag; because :class:`repro.obs.tracectx.activate` treats ``None`` as a
passthrough, the frame-level context stays active across every contained
message's processing.

Decoding is strict: short or over-claiming frames, zero counts, counts
that cannot fit the remaining payload, a trace flag without its block,
unknown flag bits and trailing bytes are all clean
:class:`~repro.errors.DecodeError`\\ s — the same contract every other
wire surface honors under the mutation oracle.

:func:`unpack_batch` never copies message bytes: it returns
``(offset, length)`` segments into the caller's buffer, so receivers can
hand ``memoryview`` slices straight to the zero-copy decode path.

This module is a leaf (stdlib + :mod:`repro.errors` +
:mod:`repro.obs`), importable from the morph/echo layers without
creating a cycle through the transports.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import DecodeError
from repro.obs import OBS
from repro.obs.metrics import COUNT_BUCKETS
from repro.obs.tracectx import (
    TRACE_BLOCK_SIZE,
    TraceContext,
    decode_block,
    encode_block,
)

Buffer = Union[bytes, bytearray, memoryview]

#: Frame magic.  Distinct in its first byte from the PBIO header magic
#: and the RLP1 reliable framing, so one cheap prefix check routes a
#: datagram to the right decoder.
BATCH_MAGIC = b"BATCH1"
BATCH_VERSION = 1

#: Frame flag bit 0: a 26-byte trace-context block follows the header.
BATCH_FLAG_TRACE = 0x01
_KNOWN_FLAGS = BATCH_FLAG_TRACE

_HEADER = struct.Struct(">6sBBI")
#: Public alias of the frame-header Struct, referenced by the generated
#: vectorized batch encoders so their frames share this exact layout.
BATCH_HEADER = _HEADER
BATCH_HEADER_SIZE = _HEADER.size  # 12 bytes
_LEN = struct.Struct(">I")

#: Smallest wire footprint of one contained message: its u32 length
#: prefix.  The count guard budgets the declared count against this, so
#: a corrupted count field can never drive a long allocation loop.
_MIN_SEGMENT_SIZE = _LEN.size


@dataclass(frozen=True)
class BatchFrame:
    """The decoded shape of a BATCH1 frame: the frame-level trace (if
    any) and zero-copy ``(offset, length)`` segments into the original
    buffer — one per contained message, in wire order."""

    count: int
    trace: Optional[TraceContext]
    segments: Tuple[Tuple[int, int], ...]


def is_batch(data: Buffer, offset: int = 0) -> bool:
    """Whether *data* starts with the BATCH1 magic at *offset* (a cheap
    routing check; full validation happens in :func:`unpack_batch`)."""
    return bytes(data[offset:offset + len(BATCH_MAGIC)]) == BATCH_MAGIC


def pack_batch(
    messages: Sequence[Buffer], ctx: Optional[TraceContext] = None
) -> bytes:
    """Pack *messages* (complete single-message wires) into one BATCH1
    frame, splicing *ctx* as the frame-level trace block when given.

    Raises :class:`~repro.errors.DecodeError` for an empty batch — a
    zero-count frame is invalid on the wire, so it is never produced
    either."""
    if not messages:
        raise DecodeError("cannot pack an empty BATCH1 frame")
    flags = BATCH_FLAG_TRACE if ctx is not None else 0
    parts: List[bytes] = [
        _HEADER.pack(BATCH_MAGIC, BATCH_VERSION, flags, len(messages))
    ]
    if ctx is not None:
        parts.append(encode_block(ctx))
    for message in messages:
        parts.append(_LEN.pack(len(message)))
        parts.append(bytes(message))
    frame = b"".join(parts)
    record_batch_packed(len(messages))
    return frame


def record_batch_packed(count: int) -> None:
    """Record one packed frame of *count* messages in the obs counters.

    Shared by :func:`pack_batch` and the generated vectorized batch
    encoders (:func:`repro.pbio.codegen.make_batch_encoder`), so counter
    totals stay identical whichever path built the frame."""
    if OBS.enabled:
        OBS.metrics.counter("net.batch.packed_frames").inc()
        OBS.metrics.counter("net.batch.packed_messages").inc(count)
        OBS.metrics.histogram(
            "net.batch.size", bounds=COUNT_BUCKETS
        ).observe(count)


def unpack_batch(data: Buffer, offset: int = 0) -> BatchFrame:
    """Validate a BATCH1 frame and return its :class:`BatchFrame`.

    Every malformed shape — truncation anywhere (header, trace block,
    length prefix, mid-message), a zero or payload-exceeding count,
    unknown flag bits, a trace flag without its block, trailing bytes —
    raises a clean :class:`~repro.errors.DecodeError`."""
    end = len(data)
    if end - offset < BATCH_HEADER_SIZE:
        raise DecodeError(
            f"truncated BATCH1 header: need {BATCH_HEADER_SIZE} bytes, "
            f"have {end - offset}"
        )
    magic, version, flags, count = _HEADER.unpack_from(data, offset)
    if magic != BATCH_MAGIC:
        raise DecodeError(f"bad BATCH1 magic {magic!r}")
    if version != BATCH_VERSION:
        raise DecodeError(f"unsupported BATCH1 version {version}")
    if flags & ~_KNOWN_FLAGS:
        raise DecodeError(f"unknown BATCH1 flags {flags:#04x}")
    if count == 0:
        raise DecodeError("zero-count BATCH1 frame")
    off = offset + BATCH_HEADER_SIZE
    trace: Optional[TraceContext] = None
    if flags & BATCH_FLAG_TRACE:
        if end - off < TRACE_BLOCK_SIZE:
            raise DecodeError(
                "BATCH1 trace flag set but the trace-context block is "
                f"truncated: need {TRACE_BLOCK_SIZE} bytes, have {end - off}"
            )
        trace = decode_block(data, off)
        off += TRACE_BLOCK_SIZE
    if count > (end - off) // _MIN_SEGMENT_SIZE:
        raise DecodeError(
            f"BATCH1 count {count} exceeds the remaining payload "
            f"({end - off} bytes)"
        )
    segments: List[Tuple[int, int]] = []
    for index in range(count):
        if end - off < _LEN.size:
            raise DecodeError(
                f"truncated BATCH1 frame: length prefix of message "
                f"{index} cut short"
            )
        (length,) = _LEN.unpack_from(data, off)
        off += _LEN.size
        if length > end - off:
            raise DecodeError(
                f"truncated BATCH1 frame: message {index} claims {length} "
                f"bytes, {end - off} remain"
            )
        segments.append((off, length))
        off += length
    if off != end:
        raise DecodeError(
            f"{end - off} trailing bytes after BATCH1 frame"
        )
    if OBS.enabled:
        OBS.metrics.counter("net.batch.unpacked_frames").inc()
        OBS.metrics.counter("net.batch.unpacked_messages").inc(count)
    return BatchFrame(count=count, trace=trace, segments=tuple(segments))


def iter_batch(data: Buffer) -> Iterable[memoryview]:
    """Yield each contained message of a validated frame as a zero-copy
    ``memoryview`` slice of *data*."""
    frame = unpack_batch(data)
    view = data if isinstance(data, memoryview) else memoryview(data)
    for off, length in frame.segments:
        yield view[off:off + length]


def peek_batch_trace(data: Buffer, offset: int = 0) -> Optional[TraceContext]:
    """Best-effort read of a frame's trace block; ``None`` for non-batch
    or malformed data (transport-side sniffing must never raise)."""
    try:
        if not is_batch(data, offset):
            return None
        _magic, version, flags, _count = _HEADER.unpack_from(data, offset)
        if version != BATCH_VERSION or not flags & BATCH_FLAG_TRACE:
            return None
        return decode_block(data, offset + BATCH_HEADER_SIZE)
    except Exception:  # noqa: BLE001 - sniffing is best-effort by contract
        return None
