"""Simulated network substrate: nodes, links and a deterministic
discrete-event message fabric."""

from repro.net.link import (
    FAST_ETHERNET,
    GIGABIT_LAN,
    WAN,
    WIRELESS_11MBPS,
    LinkSpec,
)
from repro.net.transport import Delivery, Network, Node

__all__ = [
    "Delivery",
    "FAST_ETHERNET",
    "GIGABIT_LAN",
    "LinkSpec",
    "Network",
    "Node",
    "WAN",
    "WIRELESS_11MBPS",
]
