"""Simulated network substrate: nodes, links, a deterministic
discrete-event message fabric, and a reliable-delivery layer
(sequence/ack/retry with circuit breaking) on top of it."""

from repro.net.link import (
    FAST_ETHERNET,
    GIGABIT_LAN,
    WAN,
    WIRELESS_11MBPS,
    LinkSpec,
)
from repro.net.reliable import CircuitBreaker, ReliableEndpoint, SendTicket
from repro.net.transport import Delivery, Network, Node, Timer

__all__ = [
    "CircuitBreaker",
    "Delivery",
    "FAST_ETHERNET",
    "GIGABIT_LAN",
    "LinkSpec",
    "Network",
    "Node",
    "ReliableEndpoint",
    "SendTicket",
    "Timer",
    "WAN",
    "WIRELESS_11MBPS",
]
