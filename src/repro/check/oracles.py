"""Differential and fault-injection oracles.

Each oracle runs one randomized case and returns the findings it made
(empty list = the case upheld every invariant).  A finding carries a
ready-to-persist corpus entry so the runner can save it for replay.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.check import gen
from repro.check.corpus import entry_for_wire
from repro.check.mutate import mutate
from repro.ecode import compile_procedure, interpret_procedure
from repro.errors import ECodeError, ReproError
from repro.echo.protocol import (
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    V1_TO_V0_TRANSFORM,
    V2_TO_V1_TRANSFORM,
)
from repro.morph.receiver import MorphReceiver
from repro.morph.transform import Transformation
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.obs.metrics import Registry
from repro.pbio import codegen
from repro.pbio.decode import decode_record
from repro.pbio.encode import encode_record
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import Record, records_equal
from repro.pbio.registry import FormatRegistry, TransformSpec
from repro.pbio.serialization import format_to_dict


@dataclass
class Finding:
    """One invariant violation, with everything needed to reproduce it."""

    oracle: str
    detail: str
    entry: Optional[Dict[str, Any]] = None


def make_network(
    transport: str, net_seed: int, loss_rate: float, jitter: float
) -> Any:
    """Build the fault-injected fabric for a chaos scenario on the
    requested transport: ``"sim"`` (deterministic virtual clock) or
    ``"socket"`` (real UDP loopback, loss/jitter still injected in user
    space from the same seed).  Both honor the same node/timer contract,
    so the scenarios themselves do not branch."""
    link = LinkSpec(loss_rate=loss_rate, jitter=jitter)
    if transport == "sim":
        return Network(seed=net_seed, default_link=link)
    if transport == "socket":
        from repro.net.socket import SocketNetwork

        return SocketNetwork(seed=net_seed, default_link=link)
    raise ReproError(
        f"unknown transport {transport!r}; expected 'sim' or 'socket'"
    )


def _outcome(fn: Callable[[], Any]) -> "tuple[str, Any]":
    """Classify a decode attempt: ``("ok", record)``, ``("clean", exc)``
    for a ReproError, or ``("dirty", exc)`` for anything else — the
    contract violation the mutation oracle exists to catch."""
    try:
        return "ok", fn()
    except ReproError as exc:
        return "clean", exc
    except Exception as exc:  # noqa: BLE001 - the whole point
        return "dirty", exc


# ---------------------------------------------------------------------------
# Oracle 1: encode/decode round-trip, generic vs DCG-specialized
# ---------------------------------------------------------------------------


def check_roundtrip(rng: random.Random) -> List[Finding]:
    fmt = gen.random_format(rng)
    rec = gen.random_record(rng, fmt)
    order = rng.choice(["little", "big"])
    findings: List[Finding] = []

    wire = encode_record(fmt, rec, byte_order=order)
    wire_spec = codegen.make_encoder(fmt, byte_order=order)(rec)
    if wire != wire_spec:
        findings.append(Finding(
            oracle="roundtrip",
            detail=f"generic and specialized encoders disagree for {fmt.name!r}",
            entry=entry_for_wire(
                "roundtrip", "encoder byte divergence", wire,
                fmt_dict=format_to_dict(fmt),
                expectation="encoders_agree",
                wire_spec_hex=wire_spec.hex(),
            ),
        ))

    decoded_generic = decode_record(fmt, wire)
    decoded_spec = codegen.make_decoder(fmt)(wire)
    if not records_equal(decoded_generic, rec):
        findings.append(Finding(
            oracle="roundtrip",
            detail=f"generic decode(encode(rec)) != rec for {fmt.name!r}",
            entry=entry_for_wire(
                "roundtrip", "generic round-trip loss", wire,
                fmt_dict=format_to_dict(fmt), expectation="roundtrip_identity",
            ),
        ))
    if not records_equal(decoded_spec, decoded_generic):
        findings.append(Finding(
            oracle="roundtrip",
            detail=f"specialized decode diverges from generic for {fmt.name!r}",
            entry=entry_for_wire(
                "roundtrip", "decoder divergence", wire,
                fmt_dict=format_to_dict(fmt), expectation="decoders_agree",
            ),
        ))
    return findings


# ---------------------------------------------------------------------------
# Oracle 2: hostile-buffer mutation
# ---------------------------------------------------------------------------


def check_wire_hostility(
    fmt, wire: bytes, mutation: str = "direct"
) -> List[Finding]:
    """The core mutation invariant, shared with corpus replay: decoding
    *wire* against *fmt* must end cleanly on both paths, and both paths
    must agree on accept vs reject (and on the record when accepting)."""
    findings: List[Finding] = []
    generic_kind, generic_val = _outcome(lambda: decode_record(fmt, wire))
    spec_kind, spec_val = _outcome(lambda: codegen.make_decoder(fmt)(wire))

    for path, kind, val in (
        ("generic", generic_kind, generic_val),
        ("specialized", spec_kind, spec_val),
    ):
        if kind == "dirty":
            findings.append(Finding(
                oracle="mutation",
                detail=(
                    f"{path} decode of {mutation}-mutated {fmt.name!r} leaked "
                    f"{type(val).__name__}: {val!r}"
                ),
                entry=entry_for_wire(
                    "mutation", f"{path} leaked {type(val).__name__}", wire,
                    fmt_dict=format_to_dict(fmt), mutation=mutation,
                ),
            ))
    if "dirty" not in (generic_kind, spec_kind) and generic_kind != spec_kind:
        findings.append(Finding(
            oracle="mutation",
            detail=(
                f"decode paths disagree on {mutation}-mutated {fmt.name!r}: "
                f"generic={generic_kind} specialized={spec_kind}"
            ),
            entry=entry_for_wire(
                "mutation", "accept/reject divergence", wire,
                fmt_dict=format_to_dict(fmt), mutation=mutation,
                expectation="decoders_agree_on_reject",
            ),
        ))
    if generic_kind == spec_kind == "ok" and not records_equal(generic_val, spec_val):
        findings.append(Finding(
            oracle="mutation",
            detail=f"decode paths accept {mutation}-mutated {fmt.name!r} "
                   f"but produce different records",
            entry=entry_for_wire(
                "mutation", "accepted-record divergence", wire,
                fmt_dict=format_to_dict(fmt), mutation=mutation,
                expectation="decoders_agree",
            ),
        ))
    findings.extend(_check_batch_hostility(fmt, wire, mutation))
    return findings


def _check_batch_hostility(fmt, wire: bytes, mutation: str) -> List[Finding]:
    """Batch-frame half of the hostility contract: a buffer that leads
    with the BATCH1 magic must either unpack cleanly or raise a
    :class:`~repro.errors.ReproError` — and every message an accepted
    frame contains must itself survive both decode paths."""
    from repro.net.batch import is_batch, unpack_batch

    if not is_batch(wire):
        return []
    findings: List[Finding] = []
    kind, val = _outcome(lambda: unpack_batch(wire))
    if kind == "dirty":
        findings.append(Finding(
            oracle="mutation",
            detail=(
                f"batch unpack of {mutation}-mutated frame leaked "
                f"{type(val).__name__}: {val!r}"
            ),
            entry=entry_for_wire(
                "mutation", f"batch unpack leaked {type(val).__name__}",
                wire, fmt_dict=format_to_dict(fmt), mutation=mutation,
            ),
        ))
    elif kind == "ok":
        view = memoryview(wire)
        for off, length in val.segments:
            findings.extend(check_wire_hostility(
                fmt, bytes(view[off:off + length]),
                mutation=f"{mutation}/batch-inner",
            ))
    return findings


def check_mutation(rng: random.Random, rounds: int = 4) -> "tuple[int, List[Finding]]":
    """Generate one valid message and corrupt it *rounds* times.  Returns
    ``(mutations_applied, findings)``."""
    fmt = gen.random_format(rng)
    rec = gen.random_record(rng, fmt)
    wire = encode_record(fmt, rec, byte_order=rng.choice(["little", "big"]))
    findings: List[Finding] = []
    for _ in range(rounds):
        name, corrupted = mutate(wire, rng)
        findings.extend(check_wire_hostility(fmt, corrupted, mutation=name))
    return rounds, findings


# ---------------------------------------------------------------------------
# Oracle 3: ECode interpreter vs generated Python
# ---------------------------------------------------------------------------


def check_ecode(rng: random.Random) -> List[Finding]:
    source = gen.random_program(rng)

    def build(factory):
        try:
            return "ok", factory(source)
        except ECodeError as exc:
            return "clean", exc
        except Exception as exc:  # noqa: BLE001
            return "dirty", exc

    compiled_kind, compiled = build(compile_procedure)
    interp_kind, interp = build(interpret_procedure)
    if compiled_kind != interp_kind or compiled_kind == "dirty":
        return [Finding(
            oracle="ecode",
            detail=(
                f"front-end divergence: compile={compiled_kind} "
                f"interpret={interp_kind}"
            ),
            entry={"kind": "ecode", "program": source,
                   "expectation": "frontends_agree"},
        )]
    if compiled_kind == "clean":
        return []  # both rejected the program — agreement

    inputs = {
        "a": rng.choice(gen._EDGE_LITERALS + [rng.randint(-10**6, 10**6)]),
        "b": rng.choice([0, 1, -1, rng.randint(-10**4, 10**4)]),
        "c": rng.randint(-100, 100),
    }

    def run(proc):
        new = Record(copy.deepcopy(inputs))
        old = Record({"a": 0, "b": 0, "c": 0})
        try:
            return "ok", (proc(new, old), dict(old))
        except ECodeError as exc:
            return "clean", exc
        except Exception as exc:  # noqa: BLE001
            return "dirty", exc

    c_kind, c_val = run(compiled)
    i_kind, i_val = run(interp)
    entry = {"kind": "ecode", "program": source, "inputs": inputs,
             "expectation": "interp_matches_codegen"}
    if "dirty" in (c_kind, i_kind):
        return [Finding(
            oracle="ecode",
            detail=f"raw exception leaked: compiled={c_kind} interp={i_kind} "
                   f"({c_val!r} / {i_val!r})",
            entry=entry,
        )]
    if c_kind != i_kind:
        return [Finding(
            oracle="ecode",
            detail=f"outcome divergence: compiled={c_kind} interp={i_kind}",
            entry=entry,
        )]
    if c_kind == "ok" and c_val != i_val:
        return [Finding(
            oracle="ecode",
            detail=f"value divergence: compiled={c_val!r} interp={i_val!r}",
            entry=entry,
        )]
    return []


# ---------------------------------------------------------------------------
# Oracle 4: fused routes vs the staged pipeline
# ---------------------------------------------------------------------------


def check_fusion_wires(
    registry: FormatRegistry,
    handler_fmt,
    wires: List[bytes],
    entry_base: Optional[Dict[str, Any]] = None,
) -> List[Finding]:
    """The core fusion invariant, shared with corpus replay: every wire
    through a ``use_fusion=True`` receiver and a ``use_fusion=False``
    receiver must end in the same outcome class (same exception type when
    rejecting), deliver equal records, and leave equal stats snapshots."""
    fused_rx = MorphReceiver(registry, use_fusion=True)
    staged_rx = MorphReceiver(registry, use_fusion=False)
    fused_out: List[Record] = []
    staged_out: List[Record] = []
    fused_rx.register_handler(handler_fmt, fused_out.append)
    staged_rx.register_handler(handler_fmt, staged_out.append)

    findings: List[Finding] = []

    def flag(detail: str) -> None:
        entry = dict(entry_base) if entry_base is not None else None
        if entry is not None:
            entry.setdefault("kind", "fusion")
            entry["detail"] = detail
            entry["wires_hex"] = [w.hex() for w in wires]
            entry["expectation"] = "fused_matches_staged"
        findings.append(Finding(oracle="fusion", detail=detail, entry=entry))

    for index, wire in enumerate(wires):
        fused_kind, fused_val = _outcome(lambda: fused_rx.process(wire))
        staged_kind, staged_val = _outcome(lambda: staged_rx.process(wire))
        for path, kind, val in (
            ("fused", fused_kind, fused_val),
            ("staged", staged_kind, staged_val),
        ):
            if kind == "dirty":
                flag(f"{path} path leaked {type(val).__name__} on wire "
                     f"{index}: {val!r}")
        if "dirty" in (fused_kind, staged_kind):
            continue
        if fused_kind != staged_kind:
            flag(f"outcome divergence on wire {index}: "
                 f"fused={fused_kind} staged={staged_kind}")
        elif fused_kind == "clean" and type(fused_val) is not type(staged_val):
            flag(f"exception class divergence on wire {index}: "
                 f"fused={type(fused_val).__name__} "
                 f"staged={type(staged_val).__name__}")

    if len(fused_out) != len(staged_out):
        flag(f"delivery count divergence: fused={len(fused_out)} "
             f"staged={len(staged_out)}")
    else:
        for index, (fused_rec, staged_rec) in enumerate(
            zip(fused_out, staged_out)
        ):
            if not records_equal(fused_rec, staged_rec):
                flag(f"delivered record {index} diverges between fused "
                     f"and staged paths")
    if fused_rx.stats.snapshot() != staged_rx.stats.snapshot():
        flag(f"stats divergence: fused={fused_rx.stats.snapshot()} "
             f"staged={staged_rx.stats.snapshot()}")
    return findings


def check_fusion(rng: random.Random, messages: int = 5) -> List[Finding]:
    """Generate one evolving-format scenario (an ECho transform chain or
    a random coercion-only pair), push a mixed valid/mutated wire stream
    through fused and staged receivers, and demand exact agreement."""
    if rng.random() < 0.5:
        reader_version = rng.choice(["0.0", "1.0"])
        handler_fmt = RESPONSE_V0 if reader_version == "0.0" else RESPONSE_V1
        wire_fmt = RESPONSE_V2
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        registry.register_transform(V1_TO_V0_TRANSFORM)
        entry_base: Dict[str, Any] = {
            "kind": "fusion", "scenario": "echo",
            "reader_version": reader_version,
        }
    else:
        wire_fmt, handler_fmt = gen.evolved_format_pair(rng)
        registry = FormatRegistry()
        registry.register(wire_fmt)
        entry_base = {
            "kind": "fusion", "scenario": "coercion",
            "writer_format": format_to_dict(wire_fmt),
            "reader_format": format_to_dict(handler_fmt),
        }

    order = rng.choice(["little", "big"])
    wires: List[bytes] = []
    for _ in range(messages):
        rec = gen.random_record(rng, wire_fmt)
        wire = encode_record(wire_fmt, rec, byte_order=order)
        if rng.random() < 0.3:
            _mutation, wire = mutate(wire, rng)
        wires.append(wire)
    return check_fusion_wires(registry, handler_fmt, wires, entry_base)


# ---------------------------------------------------------------------------
# Oracle 5: morph chains over a lossy, reordering transport
# ---------------------------------------------------------------------------


def _reference_chain(reader_version: str) -> List[Transformation]:
    """The interpreted (ablation-arm) transform chain V2 -> reader."""
    chain = [Transformation(V2_TO_V1_TRANSFORM, use_codegen=False)]
    if reader_version == "0.0":
        chain.append(Transformation(V1_TO_V0_TRANSFORM, use_codegen=False))
    return chain


def check_morph(rng: random.Random, messages: int = 6) -> List[Finding]:
    """Drive V2 ChannelOpenResponse traffic through a lossy, jittery link
    to a V0/V1 reader; verify delivered records against the interpreted
    chain and reconcile every counter (receiver stats, transport tallies,
    repro.obs counters)."""
    reader_version = rng.choice(["0.0", "1.0"])
    reader_fmt = RESPONSE_V0 if reader_version == "0.0" else RESPONSE_V1

    registry = FormatRegistry()
    registry.register_transform(V2_TO_V1_TRANSFORM)
    registry.register_transform(V1_TO_V0_TRANSFORM)

    receiver = MorphReceiver(registry)
    delivered: List[Record] = []
    receiver.register_handler(reader_fmt, delivered.append)

    prior = (obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer)
    metrics = Registry()
    obs.enable(registry=metrics)
    try:
        net = Network(seed=rng.randrange(2**31), default_link=LinkSpec(
            loss_rate=rng.choice([0.0, 0.2, 0.5]),
            jitter=rng.choice([0.0, 0.01]),
        ))
        net.add_node("writer")
        reader_node = net.add_node("reader")
        reader_node.set_handler(lambda _src, data: receiver.process(data))

        originals: Dict[str, Record] = {}
        for index in range(messages):
            rec = gen.random_record(rng, RESPONSE_V2)
            rec["channel_id"] = f"ch{index}"
            originals[rec["channel_id"]] = rec
            net.node("writer").send("reader", encode_record(RESPONSE_V2, rec))
        net.run()
        lost_counter = metrics.counter(
            "net.transport.lost", source="writer", destination="reader"
        ).value
    finally:
        obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer = prior

    findings: List[Finding] = []

    def flag(detail: str) -> None:
        findings.append(Finding(
            oracle="morph", detail=detail,
            entry={"kind": "morph", "reader_version": reader_version,
                   "detail": detail, "expectation": "morph_invariants"},
        ))

    stats = receiver.stats
    if net.messages_sent != len(delivered) + net.lost + net.dropped:
        flag(f"conservation broken: sent={net.messages_sent} "
             f"delivered={len(delivered)} lost={net.lost} dropped={net.dropped}")
    if lost_counter != net.lost:
        flag(f"obs lost counter {lost_counter} != transport tally {net.lost}")
    if stats.messages != len(delivered):
        flag(f"receiver saw {stats.messages} messages, handler got {len(delivered)}")
    expected_misses = 1 if delivered else 0
    if stats.cache_misses != expected_misses:
        flag(f"route cache misses {stats.cache_misses} != {expected_misses} "
             f"for a single-format stream")
    if stats.cache_hits != stats.messages - expected_misses:
        flag(f"cache hits {stats.cache_hits} != messages-{expected_misses}")
    if stats.morphed != len(delivered):
        flag(f"morphed {stats.morphed} != delivered {len(delivered)}")

    chain = _reference_chain(reader_version)
    seen = set()
    for record in delivered:
        channel = record.get("channel_id")
        if channel not in originals:
            flag(f"delivered unknown channel_id {channel!r}")
            continue
        if channel in seen:
            flag(f"channel_id {channel!r} delivered twice")
            continue
        seen.add(channel)
        reference = originals[channel]
        for step in chain:
            reference = step.apply(reference)
        if not records_equal(record, reference):
            flag(f"morphed record for {channel!r} diverges from the "
                 f"interpreted reference chain")
    return findings


# ---------------------------------------------------------------------------
# Oracle 6: reliable delivery & format-server failover
# ---------------------------------------------------------------------------

#: A three-revision event format family with retro-transform chain
#: V2 -> V1 -> V0, mirroring the paper's Figure 1 evolution but small
#: enough for heavy fuzzing.
_EVT_V0 = IOFormat("ReliEvt", [IOField("n", "integer")], version="0.0")
_EVT_V1 = IOFormat(
    "ReliEvt",
    [IOField("n", "integer"), IOField("extra", "integer")],
    version="1.0",
)
_EVT_V2 = IOFormat(
    "ReliEvt",
    [IOField("n", "integer"), IOField("extra", "integer"),
     IOField("flag", "integer")],
    version="2.0",
)
_EVT_V2_TO_V1 = TransformSpec(
    source=_EVT_V2, target=_EVT_V1,
    code="old.n = new.n;\nold.extra = new.extra;",
    description="ReliEvt 2.0 -> 1.0",
)
_EVT_V1_TO_V0 = TransformSpec(
    source=_EVT_V1, target=_EVT_V0,
    code="old.n = new.n;",
    description="ReliEvt 1.0 -> 0.0",
)


def _assert_exactly_once(
    flag: Callable[[str], None],
    name: str,
    got: List[int],
    messages: int,
) -> None:
    expected = set(range(messages))
    if len(got) != len(set(got)):
        dups = sorted({n for n in got if got.count(n) > 1})
        flag(f"{name} saw duplicate events {dups[:5]}")
    missing = expected - set(got)
    if missing:
        flag(f"{name} has delivery gaps: missing {sorted(missing)[:5]} "
             f"({len(missing)} of {messages})")
    extra = set(got) - expected
    if extra:
        flag(f"{name} delivered unpublished events {sorted(extra)[:5]}")


def _reconcile_endpoint(flag: Callable[[str], None], proc) -> None:
    """Counters of a quiesced reliable endpoint must balance: every send
    acked, none failed or fail-fast rejected, nothing in flight."""
    counters = proc.reliable.counters()
    name = proc.address
    if counters["failed"]:
        flag(f"{name} endpoint gave up on {counters['failed']} sends")
    if counters["rejected"]:
        flag(f"{name} endpoint fail-fast rejected {counters['rejected']} sends")
    if proc.reliable.in_flight:
        flag(f"{name} endpoint still has {proc.reliable.in_flight} "
             f"unacked sends after quiesce")
    if counters["sent"] != counters["acked"]:
        flag(f"{name} endpoint sent {counters['sent']} but acked "
             f"{counters['acked']}")


def check_reliability_chain(
    net_seed: int, loss_rate: float, jitter: float, messages: int,
    transport: str = "sim",
) -> List[Finding]:
    """Exactly-once across a mixed-version ECho chain: a V2 writer
    publishes over a lossy/jittery/reordering fabric to V1 and V0 sinks,
    everything on reliable endpoints; every event must arrive exactly
    once at both sinks (morphed down their revision), and every
    endpoint's counters must reconcile."""
    from repro.echo.process import EChoProcess

    findings: List[Finding] = []
    base_entry = {
        "kind": "reliability", "scenario": "chain", "net_seed": net_seed,
        "loss_rate": loss_rate, "jitter": jitter, "messages": messages,
        "transport": transport, "expectation": "exactly_once",
    }

    def flag(detail: str) -> None:
        entry = dict(base_entry)
        entry["detail"] = detail
        findings.append(Finding(oracle="reliability", detail=detail,
                                entry=entry))

    prior = (obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer)
    obs.enable(registry=Registry())
    net = make_network(transport, net_seed, loss_rate, jitter)
    try:
        registry = FormatRegistry()
        registry.register_transform(_EVT_V2_TO_V1)
        registry.register_transform(_EVT_V1_TO_V0)
        creator = EChoProcess(net, "creator", registry, version="2.0",
                              reliable=True)
        source = EChoProcess(net, "source", registry, version="2.0",
                             reliable=True)
        sink1 = EChoProcess(net, "sink1", registry, version="1.0",
                            reliable=True)
        sink0 = EChoProcess(net, "sink0", registry, version="0.0",
                            reliable=True)
        creator.create_channel("ch")
        source.open_channel("ch", "creator", as_source=True)
        sink1.open_channel("ch", "creator", as_sink=True)
        sink0.open_channel("ch", "creator", as_sink=True)
        net.run()

        got1: List[int] = []
        got0: List[int] = []
        sink1.subscribe("ch", _EVT_V1, lambda r: got1.append(r["n"]))
        sink0.subscribe("ch", _EVT_V0, lambda r: got0.append(r["n"]))
        for n in range(messages):
            source.submit(
                "ch", _EVT_V2, _EVT_V2.make_record(n=n, extra=2 * n, flag=1)
            )
        net.run()
    finally:
        obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer = prior

    if not source.channel("ch").ready:
        flag("source membership never became ready")
    _assert_exactly_once(flag, "sink1", got1, messages)
    _assert_exactly_once(flag, "sink0", got0, messages)
    for proc in (creator, source, sink1, sink0):
        _reconcile_endpoint(flag, proc)
    for sink, got in ((sink1, got1), (sink0, got0)):
        stats = sink.event_receiver("ch").stats
        if stats.messages != len(got):
            flag(f"{sink.address} receiver saw {stats.messages} messages "
                 f"but its handler got {len(got)}")
    if net.pending:
        flag(f"network did not quiesce: {net.pending} events still queued")
    if net.handler_errors:
        flag(f"{net.handler_errors} handler exceptions were contained by "
             f"the transport during a healthy-path run")
    closer = getattr(net, "close", None)
    if closer is not None:
        closer()
    return findings


def check_reliability_failover(
    net_seed: int,
    loss_rate: float,
    jitter: float,
    messages: int,
    crash_primary: bool = True,
    transport: str = "sim",
) -> List[Finding]:
    """Format-server failover: processes resolve formats through a
    primary/standby fleet; the primary crashes after the writer's
    registrations are mirrored, and the chain must still deliver every
    event exactly once by failing over to the standby."""
    from repro.echo.process import EChoProcess
    from repro.pbio.server import FormatServer

    findings: List[Finding] = []
    base_entry = {
        "kind": "reliability", "scenario": "failover", "net_seed": net_seed,
        "loss_rate": loss_rate, "jitter": jitter, "messages": messages,
        "crash_primary": crash_primary, "transport": transport,
        "expectation": "exactly_once",
    }

    def flag(detail: str) -> None:
        entry = dict(base_entry)
        entry["detail"] = detail
        findings.append(Finding(oracle="reliability", detail=detail,
                                entry=entry))

    prior = (obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer)
    obs.enable(registry=Registry())
    net = make_network(transport, net_seed, loss_rate, jitter)
    try:
        big = 1_000_000  # lossy-link timeouts must not trip server breakers
        primary = FormatServer(net, "fs-a", peer="fs-b", seed=1,
                               breaker_threshold=big)
        FormatServer(net, "fs-b", seed=2, breaker_threshold=big)
        servers = ["fs-a", "fs-b"]
        options = {"request_timeout": 0.5}
        creator = EChoProcess(net, "creator", version="2.0", reliable=True,
                              format_servers=servers,
                              resolver_options=options)
        source = EChoProcess(net, "source", version="2.0", reliable=True,
                             format_servers=servers,
                             resolver_options=options)
        sink = EChoProcess(net, "sink", version="0.0", reliable=True,
                           format_servers=servers, resolver_options=options)
        # the writer uploads the event formats and the retro chain
        source.resolver.register(
            _EVT_V2, transforms=[_EVT_V2_TO_V1, _EVT_V1_TO_V0]
        )
        net.run()
        if crash_primary:
            primary.close()
        creator.create_channel("ch")
        source.open_channel("ch", "creator", as_source=True)
        sink.open_channel("ch", "creator", as_sink=True)
        net.run()

        got: List[int] = []
        sink.subscribe("ch", _EVT_V0, lambda r: got.append(r["n"]))
        for n in range(messages):
            source.submit(
                "ch", _EVT_V2, _EVT_V2.make_record(n=n, extra=2 * n, flag=1)
            )
        net.run()
    finally:
        obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer = prior

    _assert_exactly_once(flag, "sink", got, messages)
    for proc in (creator, source, sink):
        if proc.unresolved:
            flag(f"{proc.address} dropped {proc.unresolved} messages as "
                 f"unresolvable despite a live standby")
        if proc.resolver.degraded:
            flag(f"{proc.address} resolver is degraded despite a live "
                 f"standby")
    if crash_primary and sink.resolver.stats["failovers"] == 0 \
            and sink.resolver.stats["lookups_sent"] > 0:
        flag("primary crashed but the sink resolver never failed over")
    if net.pending:
        flag(f"network did not quiesce: {net.pending} events still queued")
    closer = getattr(net, "close", None)
    if closer is not None:
        closer()
    return findings


def check_reliability(
    rng: random.Random, messages: int = 5, transport: str = "sim"
) -> List[Finding]:
    """One randomized reliability case: exactly-once over a faulty
    fabric, either a pure transport-chain scenario or a format-server
    failover scenario.  *transport* picks the fabric the deployment runs
    on — the simulated network or real UDP loopback sockets."""
    loss_rate = rng.choice([0.05, 0.1, 0.2])
    jitter = rng.choice([0.0, 0.005, 0.01])
    net_seed = rng.randrange(2**31)
    if rng.random() < 0.5:
        return check_reliability_chain(
            net_seed, loss_rate, jitter, messages, transport=transport
        )
    return check_reliability_failover(
        net_seed, loss_rate, jitter, messages,
        crash_primary=rng.random() < 0.7, transport=transport,
    )


# ---------------------------------------------------------------------------
# Oracle 7: wire-level batching parity
# ---------------------------------------------------------------------------


def check_batching_parity(
    net_seed: int, loss_rate: float, jitter: float, messages: int,
    batch_size: int, transport: str = "sim",
) -> List[Finding]:
    """Batched vs one-at-a-time differential: two identical reliable
    ECho deployments (V2 writer, V1 and V0 sinks) publish the same event
    stream over an equally faulty fabric — one via :meth:`submit`, one
    via :meth:`submit_batch` in *batch_size* chunks.  Both arms must
    deliver every event exactly once **in order**, their receiver stats
    and push counters must agree, every endpoint must reconcile, and in
    the batched arm every frame-level trace must flow unbroken into the
    deliveries it covers."""
    from repro.echo.process import EChoProcess
    from repro.obs.tracing import find_spans

    findings: List[Finding] = []
    base_entry = {
        "kind": "batching", "scenario": "parity", "net_seed": net_seed,
        "loss_rate": loss_rate, "jitter": jitter, "messages": messages,
        "batch_size": batch_size, "transport": transport,
        "expectation": "batched_matches_single",
    }

    def flag(detail: str) -> None:
        entry = dict(base_entry)
        entry["detail"] = detail
        findings.append(Finding(oracle="batching", detail=detail,
                                entry=entry))

    def run_arm(batched: bool):
        """Stand up one deployment and push the stream; returns
        ``(source, sinks, got-lists, span-tree, network)``."""
        prior = (obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer)
        obs.enable(registry=Registry())
        net = make_network(transport, net_seed, loss_rate, jitter)
        try:
            registry = FormatRegistry()
            registry.register_transform(_EVT_V2_TO_V1)
            registry.register_transform(_EVT_V1_TO_V0)
            creator = EChoProcess(net, "creator", registry, version="2.0",
                                  reliable=True)
            source = EChoProcess(net, "source", registry, version="2.0",
                                 reliable=True)
            sink1 = EChoProcess(net, "sink1", registry, version="1.0",
                                reliable=True)
            sink0 = EChoProcess(net, "sink0", registry, version="0.0",
                                reliable=True)
            creator.create_channel("ch")
            source.open_channel("ch", "creator", as_source=True)
            sink1.open_channel("ch", "creator", as_sink=True)
            sink0.open_channel("ch", "creator", as_sink=True)
            net.run()

            got1: List[int] = []
            got0: List[int] = []
            sink1.subscribe("ch", _EVT_V1, lambda r: got1.append(r["n"]))
            sink0.subscribe("ch", _EVT_V0, lambda r: got0.append(r["n"]))
            stream = [
                _EVT_V2.make_record(n=n, extra=2 * n, flag=1)
                for n in range(messages)
            ]
            if batched:
                for start in range(0, messages, batch_size):
                    source.submit_batch(
                        "ch", _EVT_V2, stream[start:start + batch_size]
                    )
            else:
                for rec in stream:
                    source.submit("ch", _EVT_V2, rec)
            net.run()
            tree = obs.get_tracer().tree()
        finally:
            obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer = prior
        return (creator, source, sink1, sink0), (got1, got0), tree, net

    single_procs, single_got, _tree, single_net = run_arm(batched=False)
    batch_procs, batch_got, batch_tree, batch_net = run_arm(batched=True)

    expected = list(range(messages))
    for arm, (got1, got0) in (("single", single_got), ("batched", batch_got)):
        for name, got in ((f"{arm}/sink1", got1), (f"{arm}/sink0", got0)):
            _assert_exactly_once(flag, name, got, messages)
            if sorted(got) == expected and got != expected:
                flag(f"{name} delivered out of order: {got[:8]}...")
    for (sg, bg), sink in zip(zip(single_got, batch_got), ("sink1", "sink0")):
        if sg != bg:
            flag(f"{sink} arms diverge: single={sg[:8]} batched={bg[:8]}")

    for arm, procs in (("single", single_procs), ("batched", batch_procs)):
        for proc in procs:
            _reconcile_endpoint(
                lambda d: flag(f"{arm}: {d}"), proc  # noqa: B023
            )
    single_source, batch_source = single_procs[1], batch_procs[1]
    for sink_name in ("sink1", "sink0"):
        idx = 2 if sink_name == "sink1" else 3
        s_stats = single_procs[idx].event_receiver("ch").stats
        b_stats = batch_procs[idx].event_receiver("ch").stats
        if s_stats.messages != b_stats.messages:
            flag(f"{sink_name} receiver stats diverge: "
                 f"single={s_stats.messages} batched={b_stats.messages}")

    # Trace continuity: each batched delivery must ride its frame's
    # trace — every batch-receive span carries a trace id minted by some
    # publish_batch span.
    publishes = find_spans(batch_tree, "echo.publish_batch")
    receives = find_spans(batch_tree, "echo.batch.receive")
    pub_tids = {s.get("trace_id") for s in publishes}
    if not publishes:
        flag("batched arm recorded no echo.publish_batch spans")
    for span in receives:
        tid = span.get("trace_id")
        if tid is None:
            flag("a batch-receive span lost its frame trace context")
            break
        if tid not in pub_tids:
            flag("a batch-receive span carries a trace id no "
                 "publish_batch span minted")
            break

    for arm, net in (("single", single_net), ("batched", batch_net)):
        if net.pending:
            flag(f"{arm} network did not quiesce: {net.pending} queued")
        if net.handler_errors:
            flag(f"{arm}: {net.handler_errors} handler exceptions were "
                 f"contained during a healthy-path run")
        closer = getattr(net, "close", None)
        if closer is not None:
            closer()
    return findings


def check_batching(
    rng: random.Random, messages: int = 8, transport: str = "sim"
) -> List[Finding]:
    """One randomized batching-parity case over a faulty fabric."""
    loss_rate = rng.choice([0.0, 0.05, 0.1])
    jitter = rng.choice([0.0, 0.005, 0.01])
    batch_size = rng.choice([2, 3, 4, 8])
    net_seed = rng.randrange(2**31)
    return check_batching_parity(
        net_seed, loss_rate, jitter, messages, batch_size,
        transport=transport,
    )


# ---------------------------------------------------------------------------
# Oracle 8: projection push-down parity
# ---------------------------------------------------------------------------


def _check_projection_wires(rng: random.Random, rounds: int = 3) -> List[Finding]:
    """Local projection invariants plus hostile projected wires.

    A derived :class:`~repro.pbio.projection.ProjectionFormat` must
    behave exactly like a root format on every decode surface: its
    generic and specialized encoders must agree byte-for-byte, decoding
    a projected wire must equal the explicit project-then-compare
    reference (:func:`~repro.pbio.projection.project_record`), and
    corrupted projected wires must fail with clean errors on both decode
    paths — the same hostility contract the mutation oracle enforces for
    every other wire surface."""
    from repro.pbio.projection import project_format, project_record

    fmt = gen.random_format(rng)
    names = [field.name for field in fmt.fields]
    keep = rng.sample(names, rng.randrange(1, len(names) + 1))
    proj = project_format(fmt, keep, epoch=rng.randrange(1, 5))
    rec = gen.random_record(rng, fmt)
    order = rng.choice(["little", "big"])
    findings: List[Finding] = []

    wire = encode_record(proj, rec, byte_order=order)
    wire_spec = codegen.make_encoder(proj, byte_order=order)(rec)
    if wire != wire_spec:
        findings.append(Finding(
            oracle="projection",
            detail=(
                f"generic and specialized encoders disagree for projection "
                f"of {fmt.name!r} onto {sorted(keep)}"
            ),
            entry=entry_for_wire(
                "roundtrip", "projection encoder byte divergence", wire,
                fmt_dict=format_to_dict(proj), expectation="encoders_agree",
                wire_spec_hex=wire_spec.hex(),
            ),
        ))
    decoded = decode_record(proj, wire)
    reference = project_record(proj, rec)
    if not records_equal(decoded, reference):
        findings.append(Finding(
            oracle="projection",
            detail=(
                f"decode(project-encode(rec)) diverges from the explicit "
                f"project_record reference for {fmt.name!r}"
            ),
            entry=entry_for_wire(
                "roundtrip", "projection reference divergence", wire,
                fmt_dict=format_to_dict(proj),
                expectation="projection_reference",
            ),
        ))
    for _ in range(rounds):
        name, corrupted = mutate(wire, rng)
        findings.extend(check_wire_hostility(
            proj, corrupted, mutation=f"projection/{name}"
        ))
    return findings


def check_projection_pushdown(
    net_seed: int, loss_rate: float, jitter: float, messages: int,
    batch_size: int, transport: str = "sim",
) -> List[Finding]:
    """Projection-vs-full differential across subscriber churn: two
    reliable ECho deployments run the same three-phase script over an
    equally faulty fabric.  The baseline arm shares one registry (no
    format servers, so every send is full-format); the negotiated arm
    resolves through a format-server fleet, where the subscriber group's
    interest union drives selective field transmission.

    The script: a V0 sink (live set ``{n}``) subscribes alone and the
    group narrows; a V1 sink (needs ``extra``) joins mid-stream and the
    union widens; it leaves again and the union narrows back, with the
    final phase published as BATCH1 frames so the vectorized projected
    batch encoder is on the wire path.  Both arms must deliver identical
    event streams exactly once in order — morph-on-projection must equal
    morph-then-project — with one pinned, documented exception: the
    widening prime (the V1 sink's first event, which triggers its
    interest announcement) is still narrow on the wire, so its ``extra``
    arrives default-filled in the negotiated arm.  The negotiated arm
    must also actually project (every send after the first handshake)
    and every endpoint must reconcile."""
    from repro.echo.process import EChoProcess
    from repro.pbio.server import FormatServer

    findings: List[Finding] = []
    base_entry = {
        "kind": "projection", "scenario": "pushdown", "net_seed": net_seed,
        "loss_rate": loss_rate, "jitter": jitter, "messages": messages,
        "batch_size": batch_size, "transport": transport,
        "expectation": "projection_matches_full",
    }

    def flag(detail: str) -> None:
        entry = dict(base_entry)
        entry["detail"] = detail
        findings.append(Finding(oracle="projection", detail=detail,
                                entry=entry))

    def run_arm(negotiated: bool):
        """Stand up one deployment and run the churn script; returns
        ``(procs, got-lists, projection-counters, network)``."""
        prior = (obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer)
        obs.enable(registry=Registry())
        net = make_network(transport, net_seed, loss_rate, jitter)
        try:
            if negotiated:
                big = 1_000_000  # lossy links must not trip server breakers
                FormatServer(net, "fs-a", peer="fs-b", seed=1,
                             breaker_threshold=big)
                FormatServer(net, "fs-b", seed=2, breaker_threshold=big)
                kw: Dict[str, Any] = {
                    "format_servers": ["fs-a", "fs-b"],
                    "resolver_options": {"request_timeout": 0.5},
                }
                creator = EChoProcess(net, "creator", version="2.0",
                                      reliable=True, **kw)
                source = EChoProcess(net, "source", version="2.0",
                                     reliable=True, **kw)
                sink0 = EChoProcess(net, "sink0", version="0.0",
                                    reliable=True, **kw)
                sink1 = EChoProcess(net, "sink1", version="1.0",
                                    reliable=True, **kw)
                source.resolver.register(
                    _EVT_V2, transforms=[_EVT_V2_TO_V1, _EVT_V1_TO_V0]
                )
            else:
                registry = FormatRegistry()
                registry.register_transform(_EVT_V2_TO_V1)
                registry.register_transform(_EVT_V1_TO_V0)
                creator = EChoProcess(net, "creator", registry,
                                      version="2.0", reliable=True)
                source = EChoProcess(net, "source", registry,
                                     version="2.0", reliable=True)
                sink0 = EChoProcess(net, "sink0", registry,
                                    version="0.0", reliable=True)
                sink1 = EChoProcess(net, "sink1", registry,
                                    version="1.0", reliable=True)
            net.run()
            creator.create_channel("ch")
            source.open_channel("ch", "creator", as_source=True)
            sink0.open_channel("ch", "creator", as_sink=True)
            net.run()

            got0: List[int] = []
            got1: List[Any] = []
            sink0.subscribe("ch", _EVT_V0, lambda r: got0.append(r["n"]))

            def publish(n: int) -> None:
                source.submit(
                    "ch", _EVT_V2,
                    _EVT_V2.make_record(n=n, extra=2 * n, flag=1),
                )

            # Phase 1 — narrow group.  The first event primes sink0's
            # interest announcement; the fence lets the narrowing
            # negotiate, and the next publish boundary promotes it.
            publish(0)
            net.run()
            for n in range(1, messages):
                publish(n)
            net.run()

            # Phase 2 — widening join.  sink1's prime event reaches it
            # still narrow (its interest is announced on first
            # delivery); the fence widens the group union.
            sink1.open_channel("ch", "creator", as_sink=True)
            net.run()
            sink1.subscribe(
                "ch", _EVT_V1,
                lambda r: got1.append((r["n"], r["extra"])),
            )
            publish(messages)
            net.run()
            for n in range(messages + 1, 2 * messages):
                publish(n)
            net.run()

            # Phase 3 — narrowing leave, published as BATCH1 frames so
            # the vectorized projected batch encoder is on the path.
            sink1.leave_channel("ch")
            net.run()
            stream = [
                _EVT_V2.make_record(n=n, extra=2 * n, flag=1)
                for n in range(2 * messages, 3 * messages)
            ]
            for start in range(0, messages, batch_size):
                source.submit_batch(
                    "ch", _EVT_V2, stream[start:start + batch_size]
                )
            net.run()

            counters = {
                "projected_sends": obs.OBS.metrics.counter(
                    "net.projection.messages").value,
                "bytes_saved": obs.OBS.metrics.counter(
                    "net.projection.bytes_saved_est").value,
                "routes": obs.OBS.metrics.counter(
                    "morph.projection.routes").value,
            }
        finally:
            obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer = prior
        return (creator, source, sink0, sink1), (got0, got1), counters, net

    full_procs, full_got, full_counters, full_net = run_arm(negotiated=False)
    proj_procs, proj_got, proj_counters, proj_net = run_arm(negotiated=True)

    total = 3 * messages
    for arm, (got0, _got1) in (("full", full_got), ("negotiated", proj_got)):
        _assert_exactly_once(flag, f"{arm}/sink0", got0, total)
        if sorted(got0) == list(range(total)) and got0 != list(range(total)):
            flag(f"{arm}/sink0 delivered out of order: {got0[:8]}...")
    if full_got[0] != proj_got[0]:
        flag(f"sink0 arms diverge: full={full_got[0][:8]} "
             f"negotiated={proj_got[0][:8]}")

    expected1 = [(n, 2 * n) for n in range(messages, 2 * messages)]
    if full_got[1] != expected1:
        flag(f"full/sink1 stream wrong: {full_got[1][:8]}")
    # The negotiated arm's prime is the one pinned divergence: it left
    # the source before the union widened, so `extra` default-fills.
    expected1_proj = [(messages, 0)] + expected1[1:]
    if proj_got[1] != expected1_proj:
        flag(f"negotiated/sink1 stream wrong: got {proj_got[1][:8]}, "
             f"expected {expected1_proj[:8]}")

    # The negotiated arm must actually project: every event after the
    # full-format handshake prime rides a derived projection format.
    if proj_counters["projected_sends"] != total - 1:
        flag(f"negotiated arm projected {proj_counters['projected_sends']} "
             f"of {total - 1} expected sends")
    if proj_counters["projected_sends"] and not proj_counters["bytes_saved"]:
        flag("projection carried no estimated byte savings")
    if not proj_counters["routes"]:
        flag("no receiver ever planned a projection route")
    if full_counters["projected_sends"]:
        flag(f"full arm projected {full_counters['projected_sends']} sends "
             f"without a format-server fleet")

    for arm, procs in (("full", full_procs), ("negotiated", proj_procs)):
        for proc in procs:
            _reconcile_endpoint(
                lambda d: flag(f"{arm}: {d}"), proc  # noqa: B023
            )
    # sink1's receiver is discarded when it leaves the channel, so only
    # sink0's stats survive to compare (sink1's delivery list is already
    # pinned exactly above).
    f_stats = full_procs[2].event_receiver("ch").stats
    p_stats = proj_procs[2].event_receiver("ch").stats
    if f_stats.messages != p_stats.messages:
        flag(f"sink0 receiver stats diverge: full={f_stats.messages} "
             f"negotiated={p_stats.messages}")
    if p_stats.messages != total:
        flag(f"sink0 receiver saw {p_stats.messages} messages, "
             f"expected {total}")
    for proc in proj_procs:
        if proc.unresolved:
            flag(f"{proc.address} dropped {proc.unresolved} messages as "
                 f"unresolvable during projection churn")
        if proc.resolver.degraded:
            flag(f"{proc.address} resolver degraded during projection churn")

    for arm, net in (("full", full_net), ("negotiated", proj_net)):
        if net.pending:
            flag(f"{arm} network did not quiesce: {net.pending} queued")
        if net.handler_errors:
            flag(f"{arm}: {net.handler_errors} handler exceptions were "
                 f"contained during a healthy-path run")
        closer = getattr(net, "close", None)
        if closer is not None:
            closer()
    return findings


def check_projection(
    rng: random.Random, messages: int = 5, transport: str = "sim"
) -> List[Finding]:
    """One randomized projection case: hostile projected wires plus a
    full two-arm push-down parity scenario over a faulty fabric."""
    findings = _check_projection_wires(rng)
    loss_rate = rng.choice([0.0, 0.05, 0.1])
    jitter = rng.choice([0.0, 0.005, 0.01])
    batch_size = rng.choice([2, 3, 4])
    net_seed = rng.randrange(2**31)
    findings.extend(check_projection_pushdown(
        net_seed, loss_rate, jitter, messages, batch_size,
        transport=transport,
    ))
    return findings


# ---------------------------------------------------------------------------
# Oracle 9: crash-resilience chaos (process kill, partition, ablation)
# ---------------------------------------------------------------------------


def _noop() -> None:
    """Timer body used to force virtual-clock advancement in pump()."""


def check_crash_chaos(
    net_seed: int,
    loss_rate: float,
    jitter: float,
    messages: int,
    scenario: str = "kill",
    transport: str = "sim",
) -> List[Finding]:
    """Worker crashes mid-stream on a journaled, lease-guarded fabric.

    Three scenarios share one deployment (3 workers, V2 publisher, V1
    and V0 subscriber clients on 4 channels, everything reliable):

    * ``kill`` — SIGKILL the owner of a hot channel mid-stream, let the
      lease checker declare it dead, keep publishing through the outage
      (client-side buffering + redrive), then restart and rejoin it.
    * ``partition`` — the victim keeps serving but stops renewing its
      lease (a directory partition); after expiry it is a *resurrected
      stale owner* and must be epoch-fenced out of admitting publishes.
    * ``ablation`` — the ``kill`` schedule with journaling disabled:
      the control arm.  Only weak invariants are asserted (no invented
      or double-delivered events, quiescence); event *loss* is expected
      and is the measured difference — see ``BENCH_recovery``.

    Journaled scenarios assert the tentpole contract: exactly-once
    delivery at every sink across the crash (journal-tail re-deliveries
    are suppressed and counted by subscriber ledgers), zero client-side
    drops, full shard coverage after recovery, and quiescence."""
    from repro.fabric import EventFabric, JournalStore

    if scenario not in ("kill", "partition", "ablation"):
        raise ReproError(f"unknown crash scenario {scenario!r}")
    findings: List[Finding] = []
    base_entry = {
        "kind": "crash", "scenario": scenario, "net_seed": net_seed,
        "loss_rate": loss_rate, "jitter": jitter, "messages": messages,
        "transport": transport, "expectation": "crash_exactly_once",
    }

    def flag(detail: str) -> None:
        entry = dict(base_entry)
        entry["detail"] = detail
        findings.append(Finding(oracle="crash", detail=detail, entry=entry))

    prior = (obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer)
    obs.enable(registry=Registry())
    net = make_network(transport, net_seed, loss_rate, jitter)
    try:
        registry = FormatRegistry()
        registry.register_transform(_EVT_V2_TO_V1)
        registry.register_transform(_EVT_V1_TO_V0)
        journal = None if scenario == "ablation" else JournalStore()
        # Short timeouts keep the crash-detection span (send-failure
        # discovery, stall skip) inside the scenario's virtual/real
        # time budget on both transports.
        reliable_options = {"base_timeout": 0.02, "max_retries": 5}
        fabric = EventFabric(
            net, registry=registry, reliable=True, journal=journal,
            lease_timeout=0.6,
        )
        workers = {
            address: fabric.add_worker(
                address, reliable_options=dict(reliable_options)
            )
            for address in ("w1", "w2", "w3")
        }
        pub = fabric.client("pub", reliable_options=dict(reliable_options))
        sub1 = fabric.client("sub-v1", reliable_options=dict(reliable_options))
        sub0 = fabric.client("sub-v0", reliable_options=dict(reliable_options))
        channels = [f"crash/{i}" for i in range(4)]
        got1: List[int] = []
        got0: List[int] = []
        for channel_id in channels:
            sub1.subscribe(channel_id, _EVT_V1,
                           lambda c, p, s, r: got1.append(r["n"]))
            sub0.subscribe(channel_id, _EVT_V0,
                           lambda c, p, s, r: got0.append(r["n"]))

        def pump(steps: int, step: float = 0.05) -> None:
            """Advance the deployment *steps* beats: every live worker
            heartbeats, the directory sweeps leases, and the network
            runs one *step* of (virtual or real) time.  Heartbeats are
            driven here rather than by recurring timers so the
            simulated network can still fully quiesce at the end."""
            for _ in range(steps):
                for worker in workers.values():
                    worker.heartbeat()
                fabric.directory.check_leases()
                if transport == "sim":
                    net.call_later(step, _noop)
                    net.run(max_time=net.now + step)
                else:
                    net.run_for(step)

        sent = 0

        def publish_round(count: int, only: "Optional[str]" = None) -> None:
            nonlocal sent
            for _ in range(count):
                channel_id = (
                    only if only is not None
                    else channels[sent % len(channels)]
                )
                pub.publish(channel_id, _EVT_V2, _EVT_V2.make_record(
                    n=sent, extra=2 * sent, flag=1
                ))
                sent += 1

        pump(4)  # let subscriptions install fleet-wide
        victim_channel = channels[0]
        victim_address = fabric.directory.owner(victim_channel)
        victim = workers[victim_address]

        publish_round(messages)          # healthy traffic
        pump(2)                          # partial drain: leave in-flight work
        if scenario == "partition":
            victim.heartbeats_suspended = True
        else:
            fabric.crash_worker(victim_address)
        publish_round(messages, only=victim_channel)  # outage traffic
        pump(18)                         # past the lease deadline + recovery
        if victim_address in fabric.directory.workers:
            flag("lease checker never declared the victim dead")
        publish_round(messages)          # post-recovery traffic
        pump(6)
        if scenario == "partition":
            victim.heartbeats_suspended = False
        else:
            victim.restart()
        if victim_address not in fabric.directory.workers:
            fabric.directory.join(victim)  # resurrection rejoins explicitly
        pump(10)
        publish_round(messages)          # post-rejoin traffic
        pump(10)
        net.run()                        # full drain (redrives, stalls)
    finally:
        obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer = prior

    expected = set(range(sent))
    if scenario == "ablation":
        # Control arm: loss is expected (that is the measured point),
        # but the fabric must never invent or double-deliver events.
        for name, got in (("sub-v1", got1), ("sub-v0", got0)):
            if len(got) != len(set(got)):
                dups = sorted({n for n in got if got.count(n) > 1})
                flag(f"{name} saw duplicate events {dups[:5]} "
                     f"without journaling")
            extra = set(got) - expected
            if extra:
                flag(f"{name} delivered unpublished events "
                     f"{sorted(extra)[:5]}")
    else:
        _assert_exactly_once(flag, "sub-v1", got1, sent)
        _assert_exactly_once(flag, "sub-v0", got0, sent)
        if pub.dropped:
            flag(f"publisher dropped {pub.dropped} buffered events "
                 f"despite a recovered fleet")
        for shard, owner_address in sorted(
            fabric.directory.assignment.items()
        ):
            owner = workers.get(owner_address)
            if owner is None:
                flag(f"shard {shard} assigned to unknown worker "
                     f"{owner_address!r}")
            elif shard not in owner.owned_shards():
                flag(f"shard {shard} assigned to {owner_address} but not "
                     f"owned after recovery settled")
        if scenario == "partition" and victim.fenced == 0:
            flag("partitioned stale owner was never epoch-fenced "
                 "despite post-expiry traffic on its channel")
    if net.pending:
        flag(f"network did not quiesce: {net.pending} events still queued")
    if net.handler_errors:
        flag(f"{net.handler_errors} handler exceptions were contained by "
             f"the transport during the crash scenario")
    closer = getattr(net, "close", None)
    if closer is not None:
        closer()
    return findings


def check_crash(
    rng: random.Random, messages: int = 6, transport: str = "sim"
) -> List[Finding]:
    """One randomized crash-chaos case.  Loss stays ≤ 0.1 so reliable
    sends to *live* peers never exhaust their retry budget — every
    failure in the scenario must come from the crash itself."""
    loss_rate = rng.choice([0.0, 0.05, 0.1])
    jitter = rng.choice([0.0, 0.005])
    net_seed = rng.randrange(2**31)
    roll = rng.random()
    if roll < 0.5:
        scenario = "kill"
    elif roll < 0.75:
        scenario = "partition"
    else:
        scenario = "ablation"
    return check_crash_chaos(
        net_seed, loss_rate, jitter, messages,
        scenario=scenario, transport=transport,
    )
