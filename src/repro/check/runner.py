"""The budgeted fuzzing loop and corpus replay.

A *budget* is a case count, split across the oracles roughly by where
historical bugs hide: round-trip differentials and hostile-buffer
mutations get the bulk; ECode differentials, fusion/morph scenarios,
whole-deployment reliability chaos and batched-vs-single parity share
the rest.  Every case is
reproducible from ``(seed, oracle, index)`` alone, and ``only`` focuses
the entire budget on one oracle (the CI chaos smoke runs
``only="reliability"``).
"""

from __future__ import annotations

import json
import random
from typing import Any, Dict, List, Optional

from repro.check import oracles
from repro.check.corpus import Corpus, minimize_wire
from repro.check.oracles import Finding
from repro.errors import ReproError
from repro.pbio.serialization import format_from_dict

#: Fraction of the budget each oracle consumes.
BUDGET_SPLIT = {
    "roundtrip": 0.24,
    "mutation": 0.22,
    "ecode": 0.10,
    "fusion": 0.10,
    "morph": 0.08,
    "reliability": 0.08,
    "batching": 0.07,
    "projection": 0.05,
    "crash": 0.06,
}

#: Each morph case already simulates several messages over the network;
#: weigh it so `--budget` approximates total work, not loop iterations.
_MORPH_CASE_WEIGHT = 10

#: Each fusion case pushes a multi-message stream through two receivers
#: (one of which compiles a route); same weighting rationale.
_FUSION_CASE_WEIGHT = 5

#: Each reliability case stands up a whole middleware deployment (format
#: servers, three or four ECho processes on reliable endpoints) and runs
#: membership plus an event stream through a faulty fabric.
_RELIABILITY_CASE_WEIGHT = 25

#: Each batching case runs TWO full reliable deployments (the single-
#: submit arm and the batched arm) over the same faulty fabric.
_BATCHING_CASE_WEIGHT = 40

#: Each projection case runs two full deployments (full-format vs
#: negotiated push-down) through a three-phase subscriber-churn script,
#: plus a hostile-projected-wire round.
_PROJECTION_CASE_WEIGHT = 40

#: Each crash case stands up a three-worker journaled fabric, kills (or
#: partitions) the shard owner mid-stream, and drives lease expiry,
#: fenced recovery and client redrive to quiescence.
_CRASH_CASE_WEIGHT = 50


class CheckRunner:
    """Run the oracles under a case budget, collecting findings."""

    def __init__(
        self,
        seed: int = 0,
        budget: int = 2000,
        corpus: Optional[Corpus] = None,
        only: Optional[str] = None,
        transport: str = "sim",
    ) -> None:
        if only is not None and only not in BUDGET_SPLIT:
            raise ReproError(
                f"unknown oracle {only!r}; expected one of "
                f"{sorted(BUDGET_SPLIT)}"
            )
        if transport not in ("sim", "socket"):
            raise ReproError(
                f"unknown transport {transport!r}; expected 'sim' or "
                "'socket'"
            )
        self.seed = seed
        self.budget = budget
        self.corpus = corpus
        #: restrict the run to a single oracle (the whole budget goes to
        #: it); None runs the full split
        self.only = only
        #: fabric the deployment oracles run on: "sim" or "socket"
        self.transport = transport
        self.findings: List[Finding] = []
        self.cases: Dict[str, int] = {name: 0 for name in BUDGET_SPLIT}
        self.mutations_applied = 0

    # -- internals -----------------------------------------------------

    def _record(self, findings: List[Finding]) -> None:
        for finding in findings:
            self.findings.append(finding)
            if self.corpus is not None and finding.entry is not None:
                entry = dict(finding.entry)
                wire_hex = entry.get("wire_hex")
                fmt_dict = entry.get("format")
                if wire_hex and fmt_dict and entry.get("kind") == "mutation":
                    fmt = format_from_dict(fmt_dict)
                    wire = bytes.fromhex(wire_hex)
                    shrunk = minimize_wire(
                        wire,
                        lambda data: bool(
                            oracles.check_wire_hostility(fmt, data)
                        ),
                    )
                    entry["wire_hex"] = shrunk.hex()
                    entry["original_wire_hex"] = wire_hex
                self.corpus.add(entry)

    def _rng(self, oracle: str, index: int) -> random.Random:
        # One independent stream per (seed, oracle, case): findings name
        # their case, and reordering oracle phases never shifts streams.
        return random.Random(f"{self.seed}:{oracle}:{index}")

    # -- the loop ------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        if self.only is not None:
            plan = {name: 0 for name in BUDGET_SPLIT}
            plan[self.only] = self.budget
        else:
            plan = {
                name: max(1, int(self.budget * fraction))
                for name, fraction in BUDGET_SPLIT.items()
            }
        plan["morph"] = (
            max(1, plan["morph"] // _MORPH_CASE_WEIGHT)
            if plan["morph"] else 0
        )
        plan["fusion"] = (
            max(1, plan["fusion"] // _FUSION_CASE_WEIGHT)
            if plan["fusion"] else 0
        )
        plan["reliability"] = (
            max(1, plan["reliability"] // _RELIABILITY_CASE_WEIGHT)
            if plan["reliability"] else 0
        )
        plan["batching"] = (
            max(1, plan["batching"] // _BATCHING_CASE_WEIGHT)
            if plan["batching"] else 0
        )
        plan["projection"] = (
            max(1, plan["projection"] // _PROJECTION_CASE_WEIGHT)
            if plan["projection"] else 0
        )
        plan["crash"] = (
            max(1, plan["crash"] // _CRASH_CASE_WEIGHT)
            if plan["crash"] else 0
        )

        for index in range(plan["roundtrip"]):
            self.cases["roundtrip"] += 1
            self._record(oracles.check_roundtrip(self._rng("roundtrip", index)))
        for index in range(plan["mutation"]):
            self.cases["mutation"] += 1
            applied, found = oracles.check_mutation(self._rng("mutation", index))
            self.mutations_applied += applied
            self._record(found)
        for index in range(plan["ecode"]):
            self.cases["ecode"] += 1
            self._record(oracles.check_ecode(self._rng("ecode", index)))
        for index in range(plan["fusion"]):
            self.cases["fusion"] += 1
            self._record(oracles.check_fusion(self._rng("fusion", index)))
        for index in range(plan["morph"]):
            self.cases["morph"] += 1
            self._record(oracles.check_morph(self._rng("morph", index)))
        for index in range(plan["reliability"]):
            self.cases["reliability"] += 1
            self._record(
                oracles.check_reliability(
                    self._rng("reliability", index),
                    transport=self.transport,
                )
            )
        for index in range(plan["batching"]):
            self.cases["batching"] += 1
            self._record(
                oracles.check_batching(
                    self._rng("batching", index),
                    transport=self.transport,
                )
            )
        for index in range(plan["projection"]):
            self.cases["projection"] += 1
            self._record(
                oracles.check_projection(
                    self._rng("projection", index),
                    transport=self.transport,
                )
            )
        for index in range(plan["crash"]):
            self.cases["crash"] += 1
            self._record(
                oracles.check_crash(
                    self._rng("crash", index),
                    transport=self.transport,
                )
            )
        return self.summary()

    def summary(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "transport": self.transport,
            "cases": dict(self.cases),
            "cases_total": sum(self.cases.values()),
            "mutations_applied": self.mutations_applied,
            "findings": [
                {"oracle": f.oracle, "detail": f.detail} for f in self.findings
            ],
            "finding_count": len(self.findings),
            "corpus_size": len(self.corpus) if self.corpus is not None else 0,
            "ok": not self.findings,
        }


def run_check(
    seed: int = 0,
    budget: int = 2000,
    corpus_dir: Optional[str] = None,
    only: Optional[str] = None,
    transport: str = "sim",
) -> Dict[str, Any]:
    """Convenience entry point: run the harness, return the summary."""
    corpus = Corpus(corpus_dir) if corpus_dir else None
    return CheckRunner(
        seed=seed, budget=budget, corpus=corpus, only=only,
        transport=transport,
    ).run()


# ---------------------------------------------------------------------------
# Corpus replay
# ---------------------------------------------------------------------------


def replay_entry(entry: Dict[str, Any]) -> List[Finding]:
    """Re-run the invariant a corpus *entry* captured.  Returns the
    findings the entry still provokes (empty = regression fixed/held)."""
    kind = entry.get("kind")
    if kind in ("mutation", "roundtrip"):
        fmt = format_from_dict(entry["format"])
        wire = bytes.fromhex(entry["wire_hex"])
        return oracles.check_wire_hostility(
            fmt, wire, mutation=entry.get("mutation", "replay")
        )
    if kind == "ecode":
        return _replay_ecode(entry["program"], entry.get("inputs"))
    if kind == "fusion":
        return _replay_fusion(entry)
    if kind == "reliability":
        return _replay_reliability(entry)
    if kind == "batching":
        return _replay_batching(entry)
    if kind == "projection":
        return _replay_projection(entry)
    if kind == "crash":
        return _replay_crash(entry)
    raise ReproError(f"cannot replay corpus entry of kind {kind!r}")


def _replay_crash(entry: Dict[str, Any]) -> List[Finding]:
    """Crash chaos cases are fully determined by their scenario
    parameters; replay re-runs the kill/partition/ablation script."""
    return oracles.check_crash_chaos(
        entry["net_seed"], entry["loss_rate"], entry["jitter"],
        entry["messages"], scenario=entry.get("scenario", "kill"),
        transport=entry.get("transport", "sim"),
    )


def _replay_projection(entry: Dict[str, Any]) -> List[Finding]:
    """Projection parity cases are fully determined by their scenario
    parameters; replay re-runs both arms of the churn script."""
    return oracles.check_projection_pushdown(
        entry["net_seed"], entry["loss_rate"], entry["jitter"],
        entry["messages"], entry["batch_size"],
        transport=entry.get("transport", "sim"),
    )


def _replay_batching(entry: Dict[str, Any]) -> List[Finding]:
    """Batching parity cases are fully determined by their scenario
    parameters, like reliability cases: replay re-runs both arms."""
    return oracles.check_batching_parity(
        entry["net_seed"], entry["loss_rate"], entry["jitter"],
        entry["messages"], entry["batch_size"],
        transport=entry.get("transport", "sim"),
    )


def _replay_reliability(entry: Dict[str, Any]) -> List[Finding]:
    """Reliability cases are fully determined by their scenario
    parameters (the virtual network is seeded), so replay re-runs the
    scenario rather than re-injecting bytes."""
    scenario = entry.get("scenario")
    transport = entry.get("transport", "sim")
    if scenario == "chain":
        return oracles.check_reliability_chain(
            entry["net_seed"], entry["loss_rate"], entry["jitter"],
            entry["messages"], transport=transport,
        )
    if scenario == "failover":
        return oracles.check_reliability_failover(
            entry["net_seed"], entry["loss_rate"], entry["jitter"],
            entry["messages"], entry.get("crash_primary", True),
            transport=transport,
        )
    raise ReproError(f"cannot replay reliability scenario {scenario!r}")


def _replay_fusion(entry: Dict[str, Any]) -> List[Finding]:
    from repro.echo.protocol import (
        RESPONSE_V0,
        RESPONSE_V1,
        V1_TO_V0_TRANSFORM,
        V2_TO_V1_TRANSFORM,
    )
    from repro.pbio.registry import FormatRegistry

    registry = FormatRegistry()
    if entry.get("scenario") == "echo":
        registry.register_transform(V2_TO_V1_TRANSFORM)
        registry.register_transform(V1_TO_V0_TRANSFORM)
        handler_fmt = (
            RESPONSE_V0 if entry["reader_version"] == "0.0" else RESPONSE_V1
        )
    else:
        registry.register(format_from_dict(entry["writer_format"]))
        handler_fmt = format_from_dict(entry["reader_format"])
    wires = [bytes.fromhex(h) for h in entry["wires_hex"]]
    return oracles.check_fusion_wires(registry, handler_fmt, wires)


def _replay_ecode(program: str, inputs: Optional[Dict[str, int]]) -> List[Finding]:
    import copy

    from repro.check.oracles import Finding as _Finding
    from repro.ecode import compile_procedure, interpret_procedure
    from repro.errors import ECodeError
    from repro.pbio.record import Record

    def build(factory):
        try:
            return "ok", factory(program)
        except ECodeError as exc:
            return "clean", exc
        except Exception as exc:  # noqa: BLE001
            return "dirty", exc

    c_kind, compiled = build(compile_procedure)
    i_kind, interp = build(interpret_procedure)
    if c_kind != i_kind or "dirty" in (c_kind, i_kind):
        return [_Finding("ecode", f"front-end divergence on replay: "
                                  f"compile={c_kind} interpret={i_kind}")]
    if c_kind == "clean":
        return []
    values = inputs or {"a": 0, "b": 0, "c": 0}

    def run(proc):
        new = Record(copy.deepcopy(values))
        old = Record({"a": 0, "b": 0, "c": 0})
        try:
            return "ok", (proc(new, old), dict(old))
        except ECodeError as exc:
            return "clean", type(exc).__name__
        except Exception as exc:  # noqa: BLE001
            return "dirty", exc

    ck, cv = run(compiled)
    ik, iv = run(interp)
    if "dirty" in (ck, ik) or ck != ik or (ck == "ok" and cv != iv):
        return [_Finding("ecode", f"replay divergence: compiled=({ck}, {cv!r}) "
                                  f"interp=({ik}, {iv!r})")]
    return []


def replay_corpus(corpus: Corpus) -> Dict[str, Any]:
    """Replay every corpus entry; summarize which still fire."""
    results = []
    for path, entry in zip(corpus.paths(), corpus.entries()):
        found = replay_entry(entry)
        results.append({
            "path": path,
            "kind": entry.get("kind"),
            "still_failing": [f.detail for f in found],
        })
    failing = [r for r in results if r["still_failing"]]
    return {
        "entries": len(results),
        "still_failing": len(failing),
        "results": results,
        "ok": not failing,
    }


def to_json(summary: Dict[str, Any]) -> str:
    return json.dumps(summary, indent=2, sort_keys=True)
