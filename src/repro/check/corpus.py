"""Crash corpus: persist failing inputs, minimize them, replay them.

Entries are small JSON documents — the format meta-data (via
:mod:`repro.pbio.serialization`), the offending wire bytes as hex, or the
offending ECode source — plus the *expectation* that failed, so a later
session (or CI) can re-run exactly the same check as a regression test
without re-fuzzing.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Callable, Dict, List, Optional


class Corpus:
    """A directory of JSON crash entries.

    Entry names are content hashes, so re-finding the same crash is
    idempotent and corpora merge by file copy.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def _ensure_dir(self) -> None:
        os.makedirs(self.directory, exist_ok=True)

    def add(self, entry: Dict[str, Any]) -> str:
        """Persist *entry*; returns the file path."""
        self._ensure_dir()
        text = json.dumps(entry, indent=2, sort_keys=True)
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        path = os.path.join(self.directory, f"crash_{digest}.json")
        if not os.path.exists(path):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return path

    def paths(self) -> List[str]:
        if not os.path.isdir(self.directory):
            return []
        return sorted(
            os.path.join(self.directory, name)
            for name in os.listdir(self.directory)
            if name.endswith(".json")
        )

    def entries(self) -> List[Dict[str, Any]]:
        loaded = []
        for path in self.paths():
            with open(path, "r", encoding="utf-8") as handle:
                loaded.append(json.load(handle))
        return loaded

    def __len__(self) -> int:
        return len(self.paths())


def minimize_wire(
    data: bytes,
    still_fails: Callable[[bytes], bool],
    max_probes: int = 400,
) -> bytes:
    """Shrink *data* while ``still_fails`` holds (ddmin-flavored).

    Alternates chunk deletion (halving granularity) with byte zeroing, so
    the surviving witness is short *and* mostly zeros — easy to eyeball.
    The predicate is probed at most *max_probes* times; minimization is
    best-effort, never required for corpus validity.
    """
    probes = 0

    def fails(candidate: bytes) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False
        probes += 1
        try:
            return still_fails(candidate)
        except Exception:
            # A predicate that itself blows up is a harness bug; treat the
            # candidate as not reproducing rather than crash minimization.
            return False

    # Phase 1: delete chunks, coarse to fine.
    chunk = max(len(data) // 2, 1)
    while chunk >= 1 and probes < max_probes:
        shrunk = False
        start = 0
        while start < len(data) and probes < max_probes:
            candidate = data[:start] + data[start + chunk:]
            if len(candidate) < len(data) and fails(candidate):
                data = candidate
                shrunk = True
            else:
                start += chunk
        if not shrunk:
            if chunk == 1:
                break
            chunk = max(chunk // 2, 1)

    # Phase 2: zero individual bytes.
    position = 0
    while position < len(data) and probes < max_probes:
        if data[position] != 0:
            candidate = data[:position] + b"\x00" + data[position + 1:]
            if fails(candidate):
                data = candidate
        position += 1
    return data


def entry_for_wire(
    kind: str,
    detail: str,
    wire: bytes,
    fmt_dict: Optional[Dict[str, Any]] = None,
    expectation: str = "decode_raises_clean",
    **extra: Any,
) -> Dict[str, Any]:
    """Build the canonical corpus entry for a hostile wire buffer."""
    entry: Dict[str, Any] = {
        "kind": kind,
        "detail": detail,
        "expectation": expectation,
        "wire_hex": wire.hex(),
    }
    if fmt_dict is not None:
        entry["format"] = fmt_dict
    entry.update(extra)
    return entry
