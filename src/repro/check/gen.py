"""Seedable random generators for formats, records and ECode programs.

The shared vocabulary (scalar kinds, legal sizes, value bounds, name
alphabet) lives here; the Hypothesis strategies in ``tests/strategies.py``
import these tables so the property suite and the ``python -m repro.check``
harness fuzz exactly the same format space.

Everything draws from a caller-supplied :class:`random.Random`, so a seed
fully determines the generated stream — a failing case can be named by
``(seed, case index)`` alone.
"""

from __future__ import annotations

import random
import struct
from typing import List, Optional

from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import Record
from repro.pbio.types import TypeKind

#: Scalar kinds a generated field may use (COMPLEX is drawn structurally).
SCALAR_KINDS = [
    TypeKind.INTEGER,
    TypeKind.UNSIGNED,
    TypeKind.FLOAT,
    TypeKind.BOOLEAN,
    TypeKind.ENUMERATION,
    TypeKind.STRING,
    TypeKind.CHAR,
]

#: Legal wire sizes per kind.
SIZES = {
    TypeKind.INTEGER: [1, 2, 4, 8],
    TypeKind.UNSIGNED: [1, 2, 4, 8],
    TypeKind.ENUMERATION: [1, 2, 4],
    TypeKind.FLOAT: [4, 8],
    TypeKind.BOOLEAN: [1],
    TypeKind.CHAR: [1],
    TypeKind.STRING: [0],
}

SIGNED_BOUNDS = {1: 2**7 - 1, 2: 2**15 - 1, 4: 2**31 - 1, 8: 2**63 - 1}
UNSIGNED_BOUNDS = {1: 2**8 - 1, 2: 2**16 - 1, 4: 2**32 - 1, 8: 2**64 - 1}

#: Field/format name suffix alphabet — XML-safe, collision-free with the
#: structural prefixes below.
NAME_ALPHABET = "abcdefghij"

#: Printable ASCII for string/char payloads.
_PRINTABLE = "".join(chr(c) for c in range(0x20, 0x7F))

_F32 = struct.Struct("<f")


def canonical_f32(value: float) -> float:
    """Round *value* to the nearest exactly-representable binary32, so a
    4-byte float survives the wire bit-for-bit and differential record
    comparisons can demand exact equality."""
    return _F32.unpack(_F32.pack(value))[0]


def _name(rng: random.Random, prefix: str) -> str:
    length = rng.randint(1, 4)
    return prefix + "".join(rng.choice(NAME_ALPHABET) for _ in range(length))


def random_format(
    rng: random.Random, depth: int = 2, name: Optional[str] = None
) -> IOFormat:
    """A random IOFormat mirroring ``tests/strategies.py``: nested complex
    fields, both array flavors, variable arrays counted by a preceding
    integer field."""
    field_count = rng.randint(1, 5)
    fields: List[IOField] = []
    for index in range(field_count):
        field_name = f"f{index}_{_name(rng, '')}"
        shapes = ["scalar", "scalar", "fixed_array", "var_array"]
        if depth > 0:
            shapes += ["complex", "complex_var_array"]
        shape = rng.choice(shapes)
        if shape == "scalar":
            kind = rng.choice(SCALAR_KINDS)
            fields.append(IOField(field_name, kind, rng.choice(SIZES[kind])))
        elif shape == "fixed_array":
            kind = rng.choice(SCALAR_KINDS)
            fields.append(
                IOField(
                    field_name,
                    kind,
                    rng.choice(SIZES[kind]),
                    array=ArraySpec(fixed_length=rng.randint(0, 3)),
                )
            )
        elif shape == "var_array":
            kind = rng.choice(SCALAR_KINDS)
            count_name = f"n{index}"
            fields.append(IOField(count_name, TypeKind.INTEGER, 4))
            fields.append(
                IOField(
                    field_name,
                    kind,
                    rng.choice(SIZES[kind]),
                    array=ArraySpec(length_field=count_name),
                )
            )
        elif shape == "complex":
            sub = random_format(rng, depth=depth - 1, name=f"Sub_{field_name}")
            fields.append(IOField(field_name, TypeKind.COMPLEX, subformat=sub))
        else:  # complex_var_array
            sub = random_format(rng, depth=depth - 1, name=f"Sub_{field_name}")
            count_name = f"n{index}"
            fields.append(IOField(count_name, TypeKind.INTEGER, 4))
            fields.append(
                IOField(
                    field_name,
                    TypeKind.COMPLEX,
                    subformat=sub,
                    array=ArraySpec(length_field=count_name),
                )
            )
    format_name = name if name is not None else "Fmt_" + _name(rng, "")
    version = rng.choice([None, "1.0", "2.0"])
    return IOFormat(format_name, fields, version=version)


def _scalar_value(rng: random.Random, field: IOField):
    kind = field.kind
    if kind is TypeKind.INTEGER:
        bound = SIGNED_BOUNDS[field.size]
        return rng.randint(-bound - 1, bound)
    if kind in (TypeKind.UNSIGNED, TypeKind.ENUMERATION):
        return rng.randint(0, UNSIGNED_BOUNDS[field.size])
    if kind is TypeKind.FLOAT:
        value = rng.choice(
            [0.0, -1.5, rng.uniform(-1e6, 1e6), rng.uniform(-1.0, 1.0)]
        )
        return canonical_f32(value) if field.size == 4 else value
    if kind is TypeKind.BOOLEAN:
        return rng.random() < 0.5
    if kind is TypeKind.CHAR:
        return rng.choice(_PRINTABLE)
    # STRING
    length = rng.randint(0, 12)
    return "".join(rng.choice(_PRINTABLE) for _ in range(length))


def random_record(rng: random.Random, fmt: IOFormat) -> Record:
    """A random record conforming to *fmt*; variable-array count fields
    are forced consistent after drawing."""
    rec = Record()
    for field in fmt.fields:
        if field.is_complex:
            element = lambda f=field: random_record(rng, f.subformat)
        else:
            element = lambda f=field: _scalar_value(rng, f)
        if field.is_array:
            spec = field.array
            assert spec is not None
            if spec.fixed_length is not None:
                rec[field.name] = [element() for _ in range(spec.fixed_length)]
            else:
                rec[field.name] = [element() for _ in range(rng.randint(0, 3))]
        else:
            rec[field.name] = element()
    for field in fmt.fields:
        spec = field.array
        if spec is not None and spec.length_field is not None:
            rec[spec.length_field] = len(rec[field.name])
    return rec


def evolved_format_pair(
    rng: random.Random, name: str = "Evo"
) -> "tuple[IOFormat, IOFormat]":
    """``(writer, reader)``: two same-name formats one evolution step
    apart — the reader drops some of the writer's scalar fields and grows
    fresh ones, so a morph route between them exercises field matching,
    default fill and drop (the reconcile walker / fused coercion stage)."""
    writer = random_format(rng, depth=1, name=name)
    writer = IOFormat(name, list(writer.fields), version="2.0")
    count_names = {
        f.array.length_field
        for f in writer.fields
        if f.array is not None and f.array.length_field is not None
    }
    reader_fields: List[IOField] = []
    for field in writer.fields:
        droppable = field.name not in count_names and not field.is_array
        if droppable and rng.random() < 0.3:
            continue  # evolution removed this field
        reader_fields.append(field)
    for index in range(rng.randint(0, 2)):
        kind = rng.choice(SCALAR_KINDS)
        reader_fields.append(
            IOField(f"g{index}_new", kind, rng.choice(SIZES[kind]))
        )
    if not reader_fields:
        reader_fields.append(IOField("g_pad", TypeKind.INTEGER, 4))
    reader = IOFormat(name, reader_fields, version="1.0")
    return writer, reader


# ---------------------------------------------------------------------------
# ECode program generation
# ---------------------------------------------------------------------------

#: Operators whose integer semantics the interpreter and the generated
#: Python must agree on exactly (division/modulo truncate toward zero).
_BINARY_OPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
               "==", "!=", "<", ">", "<=", ">=", "&&", "||"]
_UNARY_OPS = ["-", "!", "~"]

#: Literals biased toward the edge cases that distinguish C semantics
#: from Python's: negative dividends, zero divisors, narrow-type bounds.
_EDGE_LITERALS = [0, 1, 2, 3, 5, 7, 127, 128, 255, 256, 32767, 65535]


def _literal(rng: random.Random) -> str:
    value = rng.choice(_EDGE_LITERALS + [rng.randint(0, 10**6)])
    if rng.random() < 0.4:
        return f"(0 - {value})"  # negative operand without unary-minus literals
    return str(value)


def _expr(rng: random.Random, names: List[str], depth: int = 3) -> str:
    roll = rng.random()
    if depth <= 0 or roll < 0.3:
        if names and roll < 0.15:
            return rng.choice(names)
        return _literal(rng)
    if roll < 0.4:
        op = rng.choice(_UNARY_OPS)
        return f"({op}{_expr(rng, names, depth - 1)})"
    op = rng.choice(_BINARY_OPS)
    left = _expr(rng, names, depth - 1)
    if op in ("<<", ">>"):
        # Keep shift counts small and non-negative; the differential suite
        # probes hostile shifts separately with both arms expected to raise.
        right = str(rng.randint(0, 8))
    else:
        right = _expr(rng, names, depth - 1)
    return f"({left} {op} {right})"


def random_program(rng: random.Random) -> str:
    """A random int-only ECode procedure body over parameters ``new`` and
    ``old`` (both records with integer fields ``a``/``b``/``c``).

    Straight-line with optional if/else — loop-free by construction so
    every program terminates and divergence is attributable to operator
    semantics, not control flow."""
    names: List[str] = []
    lines: List[str] = []
    for index in range(rng.randint(1, 4)):
        name = f"v{index}"
        lines.append(f"int {name};")
        lines.append(f"{name} = {_expr(rng, names)};")
        names.append(name)
    sources = names + ["new.a", "new.b", "new.c"]
    if rng.random() < 0.5:
        then_expr = _expr(rng, sources, depth=2)
        else_expr = _expr(rng, sources, depth=2)
        lines.append(
            f"if ({_expr(rng, sources, depth=2)}) "
            f"{{ old.a = {then_expr}; }} else {{ old.a = {else_expr}; }}"
        )
    else:
        lines.append(f"old.a = {_expr(rng, sources)};")
    lines.append(f"old.b = {_expr(rng, sources)};")
    lines.append(f"return old.a {rng.choice(['+', '-', '^'])} old.b;")
    return "\n".join(lines)
