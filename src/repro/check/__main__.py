"""``python -m repro.check`` — run the differential fuzzing harness.

Examples::

    python -m repro.check --seed 0 --budget 2000
    python -m repro.check --seed 7 --budget 500 --corpus .crashes
    python -m repro.check --oracle reliability --seed 0
    python -m repro.check --replay tests/check/corpus

Exit status 0 iff every case upheld every invariant (or, with
``--replay``, no corpus entry still reproduces).
"""

from __future__ import annotations

import argparse
import sys

from repro.check.corpus import Corpus
from repro.check.runner import (
    BUDGET_SPLIT,
    CheckRunner,
    replay_corpus,
    to_json,
)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Differential fuzzing & fault injection for the "
                    "morphing pipeline.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed; a seed fully determines the run")
    parser.add_argument("--budget", type=int, default=2000,
                        help="total fuzz cases across all oracles")
    parser.add_argument("--corpus", default=None, metavar="DIR",
                        help="directory to persist (minimized) failing "
                             "inputs into")
    parser.add_argument("--replay", default=None, metavar="DIR",
                        help="replay a crash corpus instead of fuzzing")
    parser.add_argument("--oracle", default=None, choices=sorted(BUDGET_SPLIT),
                        help="focus the whole budget on one oracle "
                             "(e.g. the reliability chaos smoke)")
    parser.add_argument("--transport", default="sim",
                        choices=("sim", "socket"),
                        help="fabric the deployment oracles run on: the "
                             "deterministic simulated network, or real "
                             "UDP loopback sockets with the same seeded "
                             "fault injection")
    args = parser.parse_args(argv)

    if args.replay is not None:
        summary = replay_corpus(Corpus(args.replay))
    else:
        corpus = Corpus(args.corpus) if args.corpus else None
        summary = CheckRunner(
            seed=args.seed, budget=args.budget, corpus=corpus,
            only=args.oracle, transport=args.transport,
        ).run()
    print(to_json(summary))
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
