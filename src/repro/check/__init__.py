"""repro.check — differential fuzzing & fault injection for the morphing pipeline.

The paper's pitch is that evolution support can ride on the *existing*
binary meta-data with no extra runtime machinery; the implied contract is
that every layer below morphing stays honest under hostile inputs.  This
package checks that contract mechanically, with four seeded oracles:

* **roundtrip** — random formats/records: generic encode/decode
  (:mod:`repro.pbio.encode` / :mod:`repro.pbio.decode`) must agree
  byte-for-byte and value-for-value with the DCG-specialized routines of
  :mod:`repro.pbio.codegen`.
* **mutation** — valid wire buffers are corrupted (bit flips, truncation,
  length-field lies, endianness-flag lies...); every outcome must be a
  clean :class:`repro.errors.ReproError` subclass on *both* decode paths
  — never a bare ``struct.error``/``MemoryError``/hang.
* **ecode** — random straight-line ECode programs: the tree-walking
  interpreter and the generated-Python procedure must return identical
  values (or both raise :class:`repro.errors.ECodeError`).
* **morph** — ECho ChannelOpenResponse traffic (V2 writers, V0/V1
  readers) pushed through a lossy, reordering :class:`repro.net.transport
  .Network`; delivered records must equal the interpreted transform chain
  applied to the originals, and the receiver/transport counters must
  reconcile exactly.

Failing inputs are persisted to a JSON crash corpus
(:mod:`repro.check.corpus`), minimized, and replayable as regression
tests.  Drive it with ``python -m repro.check --seed 0 --budget 2000``.
"""

from repro.check.corpus import Corpus, minimize_wire
from repro.check.gen import random_format, random_program, random_record
from repro.check.mutate import MUTATIONS, mutate
from repro.check.oracles import Finding
from repro.check.runner import CheckRunner, run_check

__all__ = [
    "CheckRunner",
    "Corpus",
    "Finding",
    "MUTATIONS",
    "minimize_wire",
    "mutate",
    "random_format",
    "random_program",
    "random_record",
    "run_check",
]
