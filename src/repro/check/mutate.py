"""Wire-buffer mutations for fault injection.

Each mutation takes a valid wire message and a seeded RNG and returns a
corrupted variant.  The contract under test: decoding any of these —
through the generic interpreter *or* a DCG-specialized decoder — either
succeeds (a benign flip) or raises a :class:`repro.errors.ReproError`
subclass.  Raw ``struct.error``, ``MemoryError``, ``UnicodeDecodeError``
or an unbounded allocation are findings.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Dict

from repro.pbio.buffer import FLAG_BIG_ENDIAN, HEADER_SIZE

Mutation = Callable[[bytes, random.Random], bytes]


def bit_flip(data: bytes, rng: random.Random) -> bytes:
    buf = bytearray(data)
    pos = rng.randrange(len(buf))
    buf[pos] ^= 1 << rng.randrange(8)
    return bytes(buf)


def byte_smash(data: bytes, rng: random.Random) -> bytes:
    """Overwrite a short run of bytes with random garbage."""
    buf = bytearray(data)
    start = rng.randrange(len(buf))
    run = min(rng.randint(1, 4), len(buf) - start)
    for i in range(start, start + run):
        buf[i] = rng.randrange(256)
    return bytes(buf)


def truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut the message short (possibly into the header)."""
    return data[: rng.randrange(len(data))]


def extend(data: bytes, rng: random.Random) -> bytes:
    """Append trailing garbage the header does not account for."""
    return data + bytes(rng.randrange(256) for _ in range(rng.randint(1, 16)))


def header_length_lie(data: bytes, rng: random.Random) -> bytes:
    """Rewrite the header's payload_length to a wrong value — smaller
    (spurious trailing bytes) or absurdly larger (truncation claim)."""
    buf = bytearray(data)
    payload = len(data) - HEADER_SIZE
    if rng.random() < 0.5 and payload > 0:
        lied = rng.randrange(payload)
    else:
        lied = payload + rng.choice([1, 16, 2**16, 2**31])
    struct.pack_into("<I", buf, HEADER_SIZE - 4, lied & 0xFFFFFFFF)
    return bytes(buf)


def endian_flag_lie(data: bytes, rng: random.Random) -> bytes:
    """Flip the big-endian header flag without byte-swapping the payload,
    so every multi-byte scalar (and string length) reads scrambled."""
    buf = bytearray(data)
    buf[5] ^= FLAG_BIG_ENDIAN
    return bytes(buf)


def payload_length_field_lie(data: bytes, rng: random.Random) -> bytes:
    """Overwrite a 4-byte aligned word inside the payload with a huge
    value — when it lands on a string length or an array count field,
    this is the classic over-read / over-allocation probe."""
    buf = bytearray(data)
    if len(buf) < HEADER_SIZE + 4:
        return bytes(buf) + b"\xff\xff\xff\xff"
    pos = HEADER_SIZE + rng.randrange(len(buf) - HEADER_SIZE - 3)
    struct.pack_into(
        "<I", buf, pos, rng.choice([2**31 - 1, 2**32 - 1, 2**24, len(buf) + 1])
    )
    return bytes(buf)


def zero_fill(data: bytes, rng: random.Random) -> bytes:
    """Zero a run of payload bytes (cleared counts, empty strings)."""
    buf = bytearray(data)
    start = rng.randrange(len(buf))
    run = min(rng.randint(1, 8), len(buf) - start)
    buf[start : start + run] = bytes(run)
    return bytes(buf)


def _framed(data: bytes, rng: random.Random) -> bytearray:
    """Wrap *data* in a valid one-or-more-message BATCH1 frame so batch
    mutations corrupt realistic frames rather than synthetic headers."""
    from repro.net.batch import pack_batch

    copies = rng.randint(1, 3)
    return bytearray(pack_batch([data] * copies))


def batch_splice(data: bytes, rng: random.Random) -> bytes:
    """Corrupt a random byte *inside* a BATCH1 frame — the header, a
    length prefix, or a contained message."""
    buf = _framed(data, rng)
    pos = rng.randrange(len(buf))
    buf[pos] ^= 1 << rng.randrange(8)
    return bytes(buf)


def batch_count_lie(data: bytes, rng: random.Random) -> bytes:
    """Rewrite the frame's message count to exceed the payload (the
    over-allocation probe for the batch header)."""
    buf = _framed(data, rng)
    lied = rng.choice([len(buf), 2**16, 2**31 - 1, 2**32 - 1])
    struct.pack_into(">I", buf, 8, lied & 0xFFFFFFFF)
    return bytes(buf)


def batch_truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut a BATCH1 frame short — mid-message, mid-length-prefix, or
    mid-header."""
    buf = _framed(data, rng)
    return bytes(buf[: rng.randrange(len(buf))])


#: Registry of named mutations, applied round-robin-ish by the runner.
MUTATIONS: Dict[str, Mutation] = {
    "bit_flip": bit_flip,
    "byte_smash": byte_smash,
    "truncate": truncate,
    "extend": extend,
    "header_length_lie": header_length_lie,
    "endian_flag_lie": endian_flag_lie,
    "payload_length_field_lie": payload_length_field_lie,
    "zero_fill": zero_fill,
    "batch_splice": batch_splice,
    "batch_count_lie": batch_count_lie,
    "batch_truncate": batch_truncate,
}


def mutate(data: bytes, rng: random.Random) -> "tuple[str, bytes]":
    """Apply one randomly chosen mutation; returns ``(name, corrupted)``."""
    name = rng.choice(sorted(MUTATIONS))
    return name, MUTATIONS[name](data, rng)
