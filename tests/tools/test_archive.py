"""Tests for the capture/replay message archive."""

import io

import pytest

from repro.bench.workloads import response_v1_from_v2, response_v2
from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2, V2_TO_V1_TRANSFORM
from repro.errors import NoMatchError
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import records_equal
from repro.pbio.registry import FormatRegistry
from repro.tools.archive import (
    ArchiveError,
    ArchiveReader,
    ArchiveWriter,
    capture,
    open_archive,
)


def build_traffic(count=3):
    registry = FormatRegistry()
    registry.register_transform(V2_TO_V1_TRANSFORM)
    ctx = PBIOContext(registry)
    records = [response_v2(i + 1) for i in range(count)]
    wires = [ctx.encode(RESPONSE_V2, rec) for rec in records]
    return registry, records, wires


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        registry, _records, wires = build_traffic()
        path = str(tmp_path / "traffic.pbar")
        with ArchiveWriter(path, registry) as writer:
            for wire in wires:
                writer.append(wire)
        assert writer.messages_written == 3
        with ArchiveReader(path) as reader:
            assert reader.messages() == wires
            assert RESPONSE_V2 in reader.registry
            assert reader.registry.transforms_from(RESPONSE_V2)

    def test_blob_roundtrip(self):
        registry, _records, wires = build_traffic()
        blob = capture(registry, wires)
        assert open_archive(blob).messages() == wires

    def test_empty_archive(self):
        registry = FormatRegistry()
        blob = capture(registry, [])
        assert open_archive(blob).messages() == []


class TestReplay:
    def test_replay_into_old_reader_morphs(self):
        """Traffic captured from a v2.0 writer replays into a reader that
        only understands v1.0 — built from an EMPTY registry."""
        registry, records, wires = build_traffic()
        blob = capture(registry, wires)
        receiver = MorphReceiver()  # knows nothing about the archive
        got = []
        receiver.register_handler(RESPONSE_V1, got.append)
        report = open_archive(blob).replay_into(receiver)
        assert report.delivered == 3 and report.failed == 0
        for record, original in zip(got, records):
            assert records_equal(record, response_v1_from_v2(original))

    def test_replay_stop_on_error(self):
        registry, _records, wires = build_traffic(1)
        alien = IOFormat("Alien", [IOField("x", "integer")])
        registry.register(alien)
        alien_wire = PBIOContext(registry).encode(alien, {"x": 1})
        blob = capture(registry, [alien_wire] + wires)
        receiver = MorphReceiver()
        receiver.register_handler(RESPONSE_V1, lambda rec: rec)
        with pytest.raises(NoMatchError):
            open_archive(blob).replay_into(receiver)

    def test_replay_collects_errors_when_not_stopping(self):
        registry, _records, wires = build_traffic(2)
        alien = IOFormat("Alien", [IOField("x", "integer")])
        registry.register(alien)
        alien_wire = PBIOContext(registry).encode(alien, {"x": 1})
        blob = capture(registry, [wires[0], alien_wire, wires[1]])
        receiver = MorphReceiver()
        receiver.register_handler(RESPONSE_V1, lambda rec: rec)
        report = open_archive(blob).replay_into(receiver, stop_on_error=False)
        assert report.delivered == 2
        assert report.failed == 1
        assert isinstance(report.errors[0], NoMatchError)


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(ArchiveError, match="magic"):
            ArchiveReader(io.BytesIO(b"NOPE" + b"\x00" * 16))

    def test_truncated_header(self):
        with pytest.raises(ArchiveError, match="too short"):
            ArchiveReader(io.BytesIO(b"PB"))

    def test_truncated_snapshot(self):
        registry, _r, wires = build_traffic(1)
        blob = capture(registry, wires)
        with pytest.raises(ArchiveError, match="snapshot"):
            ArchiveReader(io.BytesIO(blob[:20]))

    def test_truncated_message(self):
        registry, _r, wires = build_traffic(1)
        blob = capture(registry, wires)
        with pytest.raises(ArchiveError, match="truncated inside a message"):
            open_archive(blob[:-5]).messages()

    def test_unsupported_version(self):
        registry = FormatRegistry()
        blob = bytearray(capture(registry, []))
        blob[4] = 99  # version u16 low byte
        with pytest.raises(ArchiveError, match="version"):
            open_archive(bytes(blob))
