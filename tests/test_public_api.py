"""The public API surface: everything advertised in __all__ exists,
imports cleanly, and the package version is sane."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.pbio",
    "repro.ecode",
    "repro.morph",
    "repro.echo",
    "repro.fabric",
    "repro.net",
    "repro.xmlrep",
    "repro.b2b",
    "repro.bench",
    "repro.check",
    "repro.tools",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} has no module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_exist(name):
    module = importlib.import_module(name)
    for entry in getattr(module, "__all__", ()):
        assert hasattr(module, entry), f"{name}.__all__ lists missing {entry!r}"


def test_version():
    import repro

    assert repro.__version__.count(".") == 2


def test_public_classes_have_docstrings():
    import repro

    for entry in repro.__all__:
        obj = getattr(repro, entry)
        if isinstance(obj, type) or callable(obj):
            assert getattr(obj, "__doc__", None), f"repro.{entry} lacks a docstring"


def test_errors_form_one_hierarchy():
    from repro import errors

    roots = [
        getattr(errors, name)
        for name in dir(errors)
        if isinstance(getattr(errors, name), type)
        and issubclass(getattr(errors, name), Exception)
    ]
    for exc_type in roots:
        if exc_type is errors.ReproError:
            continue
        assert issubclass(exc_type, errors.ReproError), exc_type
