"""Integration tests: multi-version ECho processes over the simulated
network — the paper's headline interoperability scenario."""

import pytest

from repro.echo.process import EChoProcess
from repro.errors import ChannelError
from repro.net.transport import Network
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry

pytestmark = pytest.mark.integration

EVT_V1 = IOFormat(
    "Telemetry",
    [IOField("t", "float"), IOField("load", "integer")],
    version="1.0",
)

EVT_V2 = IOFormat(
    "Telemetry",
    [IOField("t", "float"), IOField("load", "integer"),
     IOField("host", "string")],
    version="2.0",
)


def build(creator_version="2.0", subscriber_versions=("1.0",)):
    net = Network()
    registry = FormatRegistry()
    creator = EChoProcess(net, "creator", registry, version=creator_version)
    subscribers = [
        EChoProcess(net, f"sub-{i}", registry, version=version)
        for i, version in enumerate(subscriber_versions)
    ]
    return net, registry, creator, subscribers


class TestChannelLifecycle:
    def test_same_version_join(self):
        net, _reg, creator, (sub,) = build("2.0", ("2.0",))
        creator.create_channel("c")
        sub.open_channel("c", "creator", as_sink=True)
        net.run()
        assert sub.channel("c").ready
        assert [m.contact for m in creator.channel("c").sinks()] == ["sub-0"]

    def test_duplicate_create_rejected(self):
        _net, _reg, creator, _subs = build()
        creator.create_channel("c")
        with pytest.raises(ChannelError, match="already exists"):
            creator.create_channel("c")

    def test_unknown_channel_lookup(self):
        _net, _reg, creator, _subs = build()
        with pytest.raises(ChannelError, match="not joined"):
            creator.channel("ghost")

    def test_unknown_version_rejected(self):
        net = Network()
        with pytest.raises(ChannelError, match="version"):
            EChoProcess(net, "x", FormatRegistry(), version="9.9")

    def test_misrouted_open_request_dropped(self):
        net, _reg, creator, (sub,) = build()
        # 'creator' never created the channel: request silently dropped
        sub.open_channel("c", "creator", as_sink=True)
        net.run()
        assert not sub.channel("c").ready


class TestCrossVersionControlPlane:
    def test_old_subscriber_understands_new_creator(self):
        net, _reg, creator, (old_sub,) = build("2.0", ("1.0",))
        creator.create_channel("c")
        old_sub.open_channel("c", "creator", as_sink=True)
        net.run()
        channel = old_sub.channel("c")
        assert channel.ready
        roles = {(m.contact, m.is_source, m.is_sink) for m in channel.member_list()}
        assert ("sub-0", False, True) in roles
        assert old_sub.control.stats.morphed >= 1

    def test_ancient_subscriber_uses_chain(self):
        net, _reg, creator, (ancient,) = build("2.0", ("0.0",))
        creator.create_channel("c")
        ancient.open_channel("c", "creator", as_sink=True)
        net.run()
        assert ancient.channel("c").ready
        from repro.echo.protocol import RESPONSE_V2

        route = ancient.control.route_for(RESPONSE_V2)
        assert route is not None and route.chain is not None
        assert len(route.chain) == 2

    def test_new_subscriber_understands_old_creator(self):
        net, _reg, creator, (new_sub,) = build("1.0", ("2.0",))
        creator.create_channel("c")
        new_sub.open_channel("c", "creator", as_sink=True)
        net.run()
        channel = new_sub.channel("c")
        assert channel.ready
        assert any(m.is_sink for m in channel.member_list())

    def test_mixed_cohort_converges(self):
        net, _reg, creator, subs = build("2.0", ("0.0", "1.0", "2.0"))
        creator.create_channel("c")
        for i, sub in enumerate(subs):
            sub.open_channel("c", "creator", as_sink=True, as_source=(i == 2))
        net.run()
        member_sets = [
            {m.contact for m in sub.channel("c").member_list()} for sub in subs
        ]
        assert member_sets[0] == member_sets[1] == member_sets[2]
        assert len(member_sets[0]) == 3


class TestDataPlane:
    def test_event_delivery_to_all_sinks(self):
        net, _reg, creator, subs = build("2.0", ("1.0", "2.0"))
        creator.create_channel("c")
        got = {0: [], 1: []}
        for i, sub in enumerate(subs):
            sub.open_channel("c", "creator", as_sink=True)
        publisher = EChoProcess(net, "pub", _reg, version="2.0")
        publisher.open_channel("c", "creator", as_source=True)
        net.run()
        for i, sub in enumerate(subs):
            sub.subscribe("c", EVT_V1, got[i].append)
        pushed = publisher.submit("c", EVT_V1, EVT_V1.make_record(t=1.0, load=5))
        net.run()
        assert pushed == 2
        assert got[0][0]["load"] == 5
        assert got[1][0]["load"] == 5

    def test_event_format_evolution_on_data_plane(self):
        net, registry, creator, (old_sub,) = build("2.0", ("1.0",))
        registry.add_transform(
            EVT_V2, EVT_V1,
            "old.t = new.t; old.load = new.load;",
        )
        creator.create_channel("c")
        old_sub.open_channel("c", "creator", as_sink=True)
        pub = EChoProcess(net, "pub", registry, version="2.0")
        pub.open_channel("c", "creator", as_source=True)
        net.run()
        got = []
        old_sub.subscribe("c", EVT_V1, got.append)
        pub.submit("c", EVT_V2, EVT_V2.make_record(t=2.0, load=9, host="n1"))
        net.run()
        assert got == [{"t": 2.0, "load": 9}]

    def test_submit_requires_source_role(self):
        net, _reg, creator, (sub,) = build()
        creator.create_channel("c")
        sub.open_channel("c", "creator", as_sink=True)
        net.run()
        with pytest.raises(ChannelError, match="source"):
            sub.submit("c", EVT_V1, EVT_V1.make_record(t=0.0, load=0))

    def test_subscribe_requires_sink_role(self):
        net, _reg, creator, (sub,) = build()
        creator.create_channel("c")
        sub.open_channel("c", "creator", as_source=True)
        net.run()
        with pytest.raises(ChannelError, match="sink"):
            sub.subscribe("c", EVT_V1, lambda rec: rec)

    def test_local_delivery_when_source_is_also_sink(self):
        net, _reg, creator, _subs = build("2.0", ())
        creator.create_channel("c")
        both = EChoProcess(net, "both", _reg, version="2.0")
        both.open_channel("c", "creator", as_source=True, as_sink=True)
        net.run()
        got = []
        both.subscribe("c", EVT_V1, got.append)
        pushed = both.submit("c", EVT_V1, EVT_V1.make_record(t=1.0, load=1))
        assert pushed == 0  # no remote sinks
        assert len(got) == 1  # but local delivery happened

    def test_events_only_reach_subscribed_channels(self):
        net, _reg, creator, (sub,) = build("2.0", ("2.0",))
        creator.create_channel("c1")
        creator.create_channel("c2")
        sub.open_channel("c1", "creator", as_sink=True)
        pub = EChoProcess(net, "pub", _reg, version="2.0")
        pub.open_channel("c1", "creator", as_source=True)
        pub.open_channel("c2", "creator", as_source=True)
        net.run()
        got = []
        sub.subscribe("c1", EVT_V1, got.append)
        pub.submit("c1", EVT_V1, EVT_V1.make_record(t=1.0, load=1))
        pub.submit("c2", EVT_V1, EVT_V1.make_record(t=2.0, load=2))
        net.run()
        assert len(got) == 1
        assert got[0]["load"] == 1


class TestLeave:
    def test_leaving_sink_stops_receiving(self):
        net, registry, creator, (sub,) = build("2.0", ("2.0",))
        creator.create_channel("c")
        sub.open_channel("c", "creator", as_sink=True)
        stay = EChoProcess(net, "stay", registry, version="2.0")
        stay.open_channel("c", "creator", as_sink=True)
        pub = EChoProcess(net, "pub", registry, version="2.0")
        pub.open_channel("c", "creator", as_source=True)
        net.run()
        got_sub, got_stay = [], []
        sub.subscribe("c", EVT_V1, got_sub.append)
        stay.subscribe("c", EVT_V1, got_stay.append)
        pub.submit("c", EVT_V1, EVT_V1.make_record(t=1.0, load=1))
        net.run()
        assert len(got_sub) == len(got_stay) == 1
        sub.leave_channel("c")
        net.run()  # leave + membership refresh propagate
        pub.submit("c", EVT_V1, EVT_V1.make_record(t=2.0, load=2))
        net.run()
        assert len(got_sub) == 1  # no more deliveries
        assert len(got_stay) == 2
        assert [m.contact for m in creator.channel("c").sinks()] == ["stay"]

    def test_creator_cannot_leave(self):
        _net, _reg, creator, _subs = build()
        creator.create_channel("c")
        with pytest.raises(ChannelError, match="creator"):
            creator.leave_channel("c")

    def test_leave_unknown_member_is_noop(self):
        net, registry, creator, (sub,) = build("2.0", ("2.0",))
        creator.create_channel("c")
        sub.open_channel("c", "creator", as_sink=True)
        net.run()
        stranger = EChoProcess(net, "stranger", registry, version="2.0")
        stranger.channels["c"] = type(sub.channel("c"))("c", "creator")
        stranger.leave_channel("c")
        net.run()
        assert [m.contact for m in creator.channel("c").member_list()] == ["sub-0"]

    def test_remaining_members_see_updated_replica(self):
        net, registry, creator, (sub,) = build("2.0", ("1.0",))
        creator.create_channel("c")
        sub.open_channel("c", "creator", as_sink=True)
        other = EChoProcess(net, "other", registry, version="2.0")
        other.open_channel("c", "creator", as_sink=True)
        net.run()
        assert len(other.channel("c").member_list()) == 2
        sub.leave_channel("c")
        net.run()
        assert [m.contact for m in other.channel("c").member_list()] == ["other"]
