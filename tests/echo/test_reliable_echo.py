"""End-to-end acceptance for the reliability subsystem (ISSUE 4).

A mixed-version ECho event chain runs over a lossy, jittery fabric:

* on :class:`~repro.net.reliable.ReliableEndpoint` transports every
  event arrives **exactly once**, in order, morphed down to each sink's
  revision;
* on raw transports the same fabric (same seed) demonstrably loses
  events — the A/B pair is what justifies the reliable layer's cost;
* a poison subscription (handler that always throws) is quarantined by
  the receiver's containment layer without disturbing healthy traffic
  on the same channel.
"""

from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry, TransformSpec

from repro.echo.process import EChoProcess

EVT_V0 = IOFormat("RelEvt", [IOField("n", "integer")], version="0.0")
EVT_V1 = IOFormat(
    "RelEvt",
    [IOField("n", "integer"), IOField("extra", "integer")],
    version="1.0",
)
EVT_V2 = IOFormat(
    "RelEvt",
    [IOField("n", "integer"), IOField("extra", "integer"),
     IOField("flag", "integer")],
    version="2.0",
)
V2_TO_V1 = TransformSpec(
    source=EVT_V2, target=EVT_V1,
    code="old.n = new.n;\nold.extra = new.extra;",
    description="RelEvt 2.0 -> 1.0",
)
V1_TO_V0 = TransformSpec(
    source=EVT_V1, target=EVT_V0,
    code="old.n = new.n;",
    description="RelEvt 1.0 -> 0.0",
)

POISON = IOFormat("PoisonEvt", [IOField("n", "integer")], version="1.0")

LOSS_RATE = 0.1
JITTER = 0.005


def run_chain(reliable, messages=40, net_seed=0):
    """V2 writer -> V1 + V0 sinks over a faulty fabric; returns what
    each sink's handler saw."""
    net = Network(
        seed=net_seed,
        default_link=LinkSpec(loss_rate=LOSS_RATE, jitter=JITTER),
    )
    registry = FormatRegistry()
    registry.register_transform(V2_TO_V1)
    registry.register_transform(V1_TO_V0)
    creator = EChoProcess(net, "creator", registry, version="2.0",
                          reliable=reliable)
    source = EChoProcess(net, "source", registry, version="2.0",
                         reliable=reliable)
    sink1 = EChoProcess(net, "sink1", registry, version="1.0",
                        reliable=reliable)
    sink0 = EChoProcess(net, "sink0", registry, version="0.0",
                        reliable=reliable)
    creator.create_channel("ch")
    source.open_channel("ch", "creator", as_source=True)
    sink1.open_channel("ch", "creator", as_sink=True)
    sink0.open_channel("ch", "creator", as_sink=True)
    net.run()

    got1, got0 = [], []
    sink1.subscribe("ch", EVT_V1, lambda r: got1.append(r["n"]))
    sink0.subscribe("ch", EVT_V0, lambda r: got0.append(r["n"]))
    for n in range(messages):
        source.submit("ch", EVT_V2, EVT_V2.make_record(n=n, extra=2 * n,
                                                       flag=1))
    net.run()
    return net, got1, got0, (creator, source, sink1, sink0)


class TestLossyChainAcceptance:
    def test_reliable_chain_is_exactly_once_and_in_order(self):
        net, got1, got0, _procs = run_chain(reliable=True)
        # exactly once, in submission order, morphed down per revision
        assert got1 == list(range(40))
        assert got0 == list(range(40))
        assert net.pending == 0
        assert net.handler_errors == 0

    def test_raw_chain_demonstrably_loses_events(self):
        # the control arm of the A/B experiment: the same fabric and
        # seed without the reliable layer drops traffic on the floor
        _net, got1, got0, _procs = run_chain(reliable=False)
        lost1 = 40 - len(set(got1))
        lost0 = 40 - len(set(got0))
        assert lost1 + lost0 > 0, (
            "a 10% lossy fabric should defeat raw transports"
        )
        # and nothing was duplicated or invented, just lost
        assert len(got1) == len(set(got1)) <= 40
        assert len(got0) == len(set(got0)) <= 40

    def test_reliable_chain_paid_with_retries(self):
        _net, _got1, _got0, procs = run_chain(reliable=True)
        # sanity: the loss rate actually bit; delivery was not luck
        assert sum(proc.reliable.retries for proc in procs) > 0
        # and every endpoint's ledger balances after quiesce
        for proc in procs:
            counters = proc.reliable.counters()
            assert counters["sent"] == counters["acked"]
            assert counters["failed"] == counters["rejected"] == 0
            assert proc.reliable.in_flight == 0


class TestPoisonQuarantine:
    def test_poison_handler_is_quarantined_healthy_traffic_flows(self):
        net = Network(seed=3, default_link=LinkSpec(latency=0.001))
        registry = FormatRegistry()
        creator = EChoProcess(net, "creator", registry, version="1.0",
                              reliable=True)
        source = EChoProcess(net, "source", registry, version="1.0",
                             reliable=True)
        sink = EChoProcess(net, "sink", registry, version="1.0",
                           reliable=True, contain_failures=True)
        creator.create_channel("ch")
        source.open_channel("ch", "creator", as_source=True)
        sink.open_channel("ch", "creator", as_sink=True)
        net.run()

        healthy = []

        def poison_handler(record):
            raise RuntimeError("poison pill")

        sink.subscribe("ch", EVT_V1, lambda r: healthy.append(r["n"]))
        sink.subscribe("ch", POISON, poison_handler)
        for n in range(10):
            source.submit("ch", EVT_V1,
                          EVT_V1.make_record(n=n, extra=0))
            source.submit("ch", POISON, POISON.make_record(n=n))
        net.run()

        receiver = sink.event_receiver("ch")
        # the poison format was quarantined after the threshold...
        assert receiver.is_quarantined(POISON.format_id)
        assert receiver.containment["quarantined_formats"] == 1
        assert receiver.containment["quarantine_drops"] > 0
        # ...its failures are parked for forensics, stage attributed
        assert all(l.stage == "dispatch" for l in receiver.dead_letters)
        # ...and healthy traffic on the same channel never noticed
        assert healthy == list(range(10))
        # nothing escaped into the transport layer
        assert net.handler_errors == 0
