"""Unit tests for channel state bookkeeping."""

import pytest

from repro.echo.channel import ChannelState, Member
from repro.echo.protocol import RESPONSE_V0, RESPONSE_V1, RESPONSE_V2
from repro.errors import ChannelError


def populated():
    channel = ChannelState("telemetry", creator_contact="creator")
    channel.add_member("src-1", is_source=True, is_sink=False)
    channel.add_member("sink-1", is_source=False, is_sink=True)
    channel.add_member("both-1", is_source=True, is_sink=True)
    return channel


class TestMembership:
    def test_member_ids_are_sequential(self):
        channel = populated()
        assert [m.member_id for m in channel.member_list()] == [1, 2, 3]

    def test_rejoin_merges_roles(self):
        channel = ChannelState("c", "creator")
        channel.add_member("x", is_source=True, is_sink=False)
        member = channel.add_member("x", is_source=False, is_sink=True)
        assert member.is_source and member.is_sink
        assert len(channel.member_list()) == 1

    def test_role_views(self):
        channel = populated()
        assert [m.contact for m in channel.sources()] == ["src-1", "both-1"]
        assert [m.contact for m in channel.sinks()] == ["sink-1", "both-1"]

    def test_seq_monotonic(self):
        channel = populated()
        assert [channel.next_seq() for _ in range(3)] == [1, 2, 3]


class TestResponseConstruction:
    def test_v2_record(self):
        rec = populated().to_response_record(RESPONSE_V2)
        RESPONSE_V2.validate_record(rec)
        assert rec["member_count"] == 3
        assert rec["member_list"][0]["is_Source"] is True

    def test_v1_record(self):
        rec = populated().to_response_record(RESPONSE_V1)
        RESPONSE_V1.validate_record(rec)
        assert rec["src_count"] == 2
        assert rec["sink_count"] == 2
        assert {m["info"] for m in rec["src_list"]} == {"src-1", "both-1"}

    def test_v0_record(self):
        rec = populated().to_response_record(RESPONSE_V0)
        RESPONSE_V0.validate_record(rec)
        assert rec["member_count"] == 3

    def test_unknown_version_raises(self):
        from repro.pbio.field import IOField
        from repro.pbio.format import IOFormat

        bogus = IOFormat("ChannelOpenResponse", [IOField("x", "integer")],
                         version="7.7")
        with pytest.raises(ChannelError):
            populated().to_response_record(bogus)


class TestResponseIngestion:
    def test_v2_roundtrip(self):
        src = populated()
        rec = src.to_response_record(RESPONSE_V2)
        replica = ChannelState("telemetry", "creator")
        replica.update_from_response(rec)
        assert replica.ready
        assert [(m.contact, m.is_source, m.is_sink) for m in replica.member_list()] == [
            (m.contact, m.is_source, m.is_sink) for m in src.member_list()
        ]

    def test_v1_roundtrip_derives_roles_from_lists(self):
        src = populated()
        rec = src.to_response_record(RESPONSE_V1)
        replica = ChannelState("telemetry", "creator")
        replica.update_from_response(rec)
        roles = {m.contact: (m.is_source, m.is_sink) for m in replica.member_list()}
        assert roles["src-1"] == (True, False)
        assert roles["both-1"] == (True, True)

    def test_v0_roles_unknown(self):
        rec = populated().to_response_record(RESPONSE_V0)
        replica = ChannelState("telemetry", "creator")
        replica.update_from_response(rec)
        assert all(not m.is_source and not m.is_sink
                   for m in replica.member_list())

    def test_replacement_not_merge(self):
        replica = ChannelState("c", "creator")
        replica.add_member("stale", True, True)
        fresh = ChannelState("c", "creator")
        fresh.add_member("current", False, True)
        replica.update_from_response(fresh.to_response_record(RESPONSE_V2))
        assert [m.contact for m in replica.member_list()] == ["current"]

    def test_next_member_id_tracks_max(self):
        replica = ChannelState("c", "creator")
        replica.update_from_response(populated().to_response_record(RESPONSE_V2))
        assert replica.next_member_id == 4
