"""End-to-end projection push-down over ECho channels.

The full negotiated loop: sinks announce their fused interest sets on
first delivery, the format-server fleet unions them per channel and
derives a :class:`ProjectionFormat`, sources encode only the live
fields (vectorized on the batch path), and subscriber churn widens
immediately / narrows behind the publish-boundary epoch fence.
"""

import pytest

from repro import obs
from repro.echo.process import EChoProcess
from repro.echo.protocol import EVENT_ENVELOPE
from repro.net.batch import pack_batch
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.obs.metrics import Registry
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import TransformSpec
from repro.pbio.server import FormatServer

pytestmark = pytest.mark.integration

EVT_V0 = IOFormat("Evt", [IOField("n", "integer")], version="0.0")
EVT_V1 = IOFormat(
    "Evt",
    [IOField("n", "integer"), IOField("extra", "integer")],
    version="1.0",
)
EVT_V2 = IOFormat(
    "Evt",
    [IOField("n", "integer"), IOField("extra", "integer"),
     IOField("flag", "integer")],
    version="2.0",
)
V2_TO_V1 = TransformSpec(
    source=EVT_V2, target=EVT_V1,
    code="old.n = new.n;\nold.extra = new.extra;",
)
V1_TO_V0 = TransformSpec(
    source=EVT_V1, target=EVT_V0, code="old.n = new.n;",
)


def event(n):
    return EVT_V2.make_record(n=n, extra=2 * n, flag=1)


@pytest.fixture
def metrics():
    registry = Registry()
    obs.enable(registry=registry)
    yield registry
    obs.disable(reset=True)


def build_fleet():
    net = Network(default_link=LinkSpec(latency=0.001))
    big = 1_000_000
    FormatServer(net, "fs-a", peer="fs-b", seed=1, breaker_threshold=big)
    FormatServer(net, "fs-b", seed=2, breaker_threshold=big)
    servers = ["fs-a", "fs-b"]
    options = {"request_timeout": 0.5}

    def process(address, version):
        return EChoProcess(
            net, address, version=version, reliable=True,
            format_servers=servers, resolver_options=options,
        )

    creator = process("creator", "2.0")
    source = process("source", "2.0")
    sink0 = process("sink0", "0.0")
    source.resolver.register(EVT_V2, transforms=[V2_TO_V1, V1_TO_V0])
    net.run()
    creator.create_channel("ch")
    source.open_channel("ch", "creator", as_source=True)
    sink0.open_channel("ch", "creator", as_sink=True)
    net.run()
    got0 = []
    sink0.subscribe("ch", EVT_V0, lambda r: got0.append(r["n"]))
    return net, creator, source, sink0, got0


def send_range(net, source, start, stop):
    for n in range(start, stop):
        source.submit("ch", EVT_V2, event(n))
    net.run()


class TestNegotiatedNarrowing:
    def test_interest_announced_on_first_delivery_then_projected(
        self, metrics
    ):
        net, _creator, source, _sink0, got0 = build_fleet()
        send_range(net, source, 0, 3)
        assert got0 == [0, 1, 2]
        state = source._projection_send[("ch", EVT_V2.format_id)]
        # narrowing is epoch-fenced: parked until the next publish
        assert state["format"] is None and state["pending"] is not None
        assert state["pending"]["format"].field_names() == ["n"]

        send_range(net, source, 3, 6)  # first submit promotes the fence
        assert got0 == list(range(6))
        assert state["format"].field_names() == ["n"]
        assert state["pending"] is None
        assert metrics.counter("net.projection.messages").value == 3
        assert metrics.counter("net.projection.bytes_saved_est").value > 0

    def test_projected_wire_is_narrower(self, metrics):
        net, _creator, source, _sink0, _got0 = build_fleet()
        send_range(net, source, 0, 2)
        send_range(net, source, 2, 3)
        proj = source._projection_send[("ch", EVT_V2.format_id)]["format"]
        rec = event(9)
        assert len(source.pbio.encode(proj, rec)) < len(
            source.pbio.encode(EVT_V2, rec)
        )

    def test_delivery_unchanged_without_format_servers(self):
        from repro.pbio.registry import FormatRegistry

        net = Network(default_link=LinkSpec(latency=0.001))
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1)
        registry.register_transform(V1_TO_V0)
        creator = EChoProcess(net, "creator", registry, version="2.0",
                              reliable=True)
        source = EChoProcess(net, "source", registry, version="2.0",
                             reliable=True)
        sink = EChoProcess(net, "sink", registry, version="0.0",
                           reliable=True)
        creator.create_channel("ch")
        source.open_channel("ch", "creator", as_source=True)
        sink.open_channel("ch", "creator", as_sink=True)
        net.run()
        got = []
        sink.subscribe("ch", EVT_V0, lambda r: got.append(r["n"]))
        for n in range(4):
            source.submit("ch", EVT_V2, event(n))
        net.run()
        assert got == [0, 1, 2, 3]
        assert not source._projection_send


class TestBatchFastPath:
    def test_projected_batches_deliver_and_stay_byte_identical(self):
        net, _creator, source, _sink0, got0 = build_fleet()
        send_range(net, source, 0, 2)   # negotiate
        send_range(net, source, 2, 3)   # promote the fence
        proj = source._projection_send[("ch", EVT_V2.format_id)]["format"]
        source.submit_batch("ch", EVT_V2, [event(n) for n in range(3, 9)])
        net.run()
        assert got0 == list(range(9))

        rows = [
            (EVENT_ENVELOPE.make_record(channel_id="ch", seq=100 + i),
             event(50 + i))
            for i in range(4)
        ]
        fast = source._batch_encoder(proj)(rows, None)
        slow = pack_batch([
            source.pbio.encode(EVENT_ENVELOPE, env)
            + source.pbio.encode(proj, rec)
            for env, rec in rows
        ])
        assert fast == slow


class TestChurn:
    def test_join_widens_immediately_leave_narrows_behind_the_fence(
        self, metrics
    ):
        net, _creator, source, _sink0, got0 = build_fleet()
        send_range(net, source, 0, 3)   # negotiate {n}
        send_range(net, source, 3, 5)   # promote
        state = source._projection_send[("ch", EVT_V2.format_id)]
        assert state["format"].field_names() == ["n"]

        sink1 = EChoProcess(
            net, "sink1", version="1.0", reliable=True,
            format_servers=["fs-a", "fs-b"],
            resolver_options={"request_timeout": 0.5},
        )
        sink1.open_channel("ch", "creator", as_sink=True)
        net.run()
        got1 = []
        sink1.subscribe("ch", EVT_V1, lambda r: got1.append((r["n"], r["extra"])))
        net.run()
        # the widening prime: sink1's first event is still narrow, its
        # announce rides back during net.run
        send_range(net, source, 5, 6)
        send_range(net, source, 6, 9)
        assert set(state["format"].field_names()) >= {"n", "extra"}
        tail = [pair for pair in got1 if pair[0] >= 6]
        assert tail == [(n, 2 * n) for n in range(6, 9)]

        sink1.leave_channel("ch")
        net.run()
        send_range(net, source, 9, 10)   # promotes the narrowing
        send_range(net, source, 10, 11)
        assert state["format"].field_names() == ["n"]
        assert got0 == list(range(11))
        widened = metrics.counter(
            "net.projection.renegotiations", kind="widened"
        ).value
        narrowed = metrics.counter(
            "net.projection.renegotiations", kind="narrowed"
        ).value
        assert widened >= 1 and narrowed >= 1

    def test_leave_retracts_the_interest_on_the_server(self):
        net, _creator, source, sink0, _got0 = build_fleet()
        send_range(net, source, 0, 2)
        assert sink0._interest_parents
        sink0.leave_channel("ch")
        net.run()
        assert not sink0._interest_parents
        assert not sink0._announced


class TestDerivedChannels:
    def test_derived_sinks_receive_full_format_events(self):
        # Derived-channel sinks negotiate per *derived* channel; the
        # parent's projection must never starve their filters.
        net, creator, source, _sink0, got0 = build_fleet()
        creator.create_derived_channel("ch", "ch.hot", "return input.extra > 6;")
        hot = EChoProcess(
            net, "hot", version="1.0", reliable=True,
            format_servers=["fs-a", "fs-b"],
            resolver_options={"request_timeout": 0.5},
        )
        hot.open_channel("ch.hot", "creator", as_sink=True)
        net.run()
        got_hot = []
        hot.subscribe("ch.hot", EVT_V1, lambda r: got_hot.append((r["n"], r["extra"])))
        send_range(net, source, 0, 3)   # negotiate parent narrowing
        send_range(net, source, 3, 8)   # projected on "ch", full on "ch.hot"
        assert got0 == list(range(8))
        # the filter reads `extra`, a field dead on the parent channel —
        # derived delivery still sees real values, not defaults
        assert got_hot == [(n, 2 * n) for n in range(4, 8)]
