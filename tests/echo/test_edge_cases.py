"""ECho edge cases: stray traffic, unknown channels, version quirks."""

import pytest

from repro.echo.process import EChoProcess
from repro.echo.protocol import EVENT_ENVELOPE
from repro.net.transport import Network
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry

pytestmark = pytest.mark.integration

EVT = IOFormat("Evt", [IOField("x", "integer")], version="1")


def build():
    net = Network()
    registry = FormatRegistry()
    process = EChoProcess(net, "p", registry, version="2.0")
    return net, registry, process


class TestStrayTraffic:
    def test_event_for_unknown_channel_is_dropped(self):
        net, registry, process = build()
        sender = PBIOContext(registry)
        registry.register(EVT)
        envelope = EVENT_ENVELOPE.make_record(channel_id="ghost", seq=1)
        datagram = sender.encode(EVENT_ENVELOPE, envelope) + sender.encode(
            EVT, {"x": 1}
        )
        net.add_node("outsider")
        net.send("outsider", "p", datagram)
        net.run()  # no exception, message silently dropped

    def test_event_for_channel_without_subscription_is_dropped(self):
        net, registry, process = build()
        process.create_channel("c")
        sender = PBIOContext(registry)
        registry.register(EVT)
        envelope = EVENT_ENVELOPE.make_record(channel_id="c", seq=1)
        datagram = sender.encode(EVENT_ENVELOPE, envelope) + sender.encode(
            EVT, {"x": 1}
        )
        net.add_node("outsider")
        net.send("outsider", "p", datagram)
        net.run()

    def test_open_response_for_unknown_channel_ignored(self):
        net, registry, process = build()
        other = EChoProcess(net, "creator", registry, version="2.0")
        channel = other.create_channel("x")
        channel.add_member("p", is_source=False, is_sink=True)
        from repro.echo.protocol import RESPONSE_V2

        wire = PBIOContext(registry).encode(
            RESPONSE_V2, channel.to_response_record(RESPONSE_V2)
        )
        net.send("creator", "p", wire)
        net.run()
        assert "x" not in process.channels  # never joined; ignored

    def test_double_open_merges_roles(self):
        net, registry, process = build()
        creator = EChoProcess(net, "creator", registry, version="2.0")
        creator.create_channel("c")
        process.open_channel("c", "creator", as_sink=True)
        process.open_channel("c", "creator", as_source=True)
        net.run()
        channel = process.channel("c")
        assert channel.is_source and channel.is_sink
        member = next(
            m for m in creator.channel("c").member_list() if m.contact == "p"
        )
        assert member.is_source and member.is_sink

    def test_rejoining_after_leave(self):
        net, registry, process = build()
        creator = EChoProcess(net, "creator", registry, version="2.0")
        creator.create_channel("c")
        process.open_channel("c", "creator", as_sink=True)
        net.run()
        process.leave_channel("c")
        net.run()
        assert creator.channel("c").member_list() == []
        process.open_channel("c", "creator", as_sink=True)
        net.run()
        assert process.channel("c").ready
        assert [m.contact for m in creator.channel("c").sinks()] == ["p"]


class TestVersionQuirks:
    def test_v0_creator_serves_v0_responses(self):
        net = Network()
        registry = FormatRegistry()
        creator = EChoProcess(net, "creator", registry, version="0.0")
        sub = EChoProcess(net, "sub", registry, version="0.0")
        creator.create_channel("c")
        sub.open_channel("c", "creator", as_sink=True)
        net.run()
        assert sub.channel("c").ready
        # v0 responses carry no role data; the replica has none
        assert all(
            not m.is_source and not m.is_sink
            for m in sub.channel("c").member_list()
        )

    def test_event_seq_numbers_increase(self):
        net, registry, process = build()
        process.create_channel("c")
        channel = process.channel("c")
        assert [channel.next_seq() for _ in range(3)] == [1, 2, 3]
