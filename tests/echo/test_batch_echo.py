"""ECho ``submit_batch`` — wire-level batching through the event layer.

The batched publish path must be observationally identical to the
per-event path: exactly-once, in-order, morphed-per-revision delivery
over a lossy reliable fabric — including when whole BATCH1 frames are
retransmitted — plus one frame-level trace context threading every
contained event's delivery spans.
"""

from repro import obs
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.obs.tracing import find_spans
from repro.pbio.registry import FormatRegistry

from repro.echo.process import EChoProcess

from tests.echo.test_reliable_echo import (
    EVT_V0,
    EVT_V1,
    EVT_V2,
    V1_TO_V0,
    V2_TO_V1,
)


def run_batch_chain(
    messages=40, batch_size=8, net_seed=0, loss_rate=0.1, jitter=0.005
):
    """The reliable-echo acceptance chain, publishing in BATCH1 frames:
    V2 writer -> V1 + V0 sinks over a lossy fabric."""
    net = Network(
        seed=net_seed,
        default_link=LinkSpec(loss_rate=loss_rate, jitter=jitter),
    )
    registry = FormatRegistry()
    registry.register_transform(V2_TO_V1)
    registry.register_transform(V1_TO_V0)
    procs = [
        EChoProcess(net, name, registry, version=version, reliable=True)
        for name, version in (
            ("creator", "2.0"), ("source", "2.0"),
            ("sink1", "1.0"), ("sink0", "0.0"),
        )
    ]
    creator, source, sink1, sink0 = procs
    creator.create_channel("ch")
    source.open_channel("ch", "creator", as_source=True)
    sink1.open_channel("ch", "creator", as_sink=True)
    sink0.open_channel("ch", "creator", as_sink=True)
    net.run()
    got1, got0 = [], []
    sink1.subscribe("ch", EVT_V1, lambda r: got1.append(r["n"]))
    sink0.subscribe("ch", EVT_V0, lambda r: got0.append(r["n"]))
    for start in range(0, messages, batch_size):
        source.submit_batch(
            "ch", EVT_V2,
            [
                EVT_V2.make_record(n=n, extra=2 * n, flag=1)
                for n in range(start, min(start + batch_size, messages))
            ],
        )
    net.run()
    return net, got1, got0, procs


class TestBatchedLossyChain:
    def test_batched_chain_is_exactly_once_and_in_order(self):
        net, got1, got0, _procs = run_batch_chain()
        assert got1 == list(range(40))
        assert got0 == list(range(40))
        assert net.pending == 0
        assert net.handler_errors == 0

    def test_retransmitted_frames_deliver_each_message_exactly_once(self):
        """The loss rate forces whole-frame retransmits; duplicate
        suppression at the reliable layer must keep every *contained*
        message exactly-once."""
        _net, got1, got0, procs = run_batch_chain(net_seed=5)
        assert sum(proc.reliable.retries for proc in procs) > 0
        assert got1 == sorted(set(got1)) == list(range(40))
        assert got0 == sorted(set(got0)) == list(range(40))
        for proc in procs:
            counters = proc.reliable.counters()
            assert counters["sent"] == counters["acked"]
            assert counters["failed"] == counters["rejected"] == 0
            assert proc.reliable.in_flight == 0

    def test_batch_sends_fewer_reliable_frames_than_single(self):
        """The point of batching: 40 events in frames of 8 cost the
        source 5 reliable sequence numbers per sink, not 40."""
        _net, _got1, _got0, procs = run_batch_chain(
            loss_rate=0.0, jitter=0.0
        )
        source = procs[1]
        # 2 remote sinks x 5 frames (plus channel-control traffic,
        # which is single-digit)
        assert source.reliable.sent < 40

    def test_empty_submit_batch_is_a_no_op(self):
        net = Network(seed=0)
        registry = FormatRegistry()
        creator = EChoProcess(net, "creator", registry, version="2.0",
                              reliable=True)
        source = EChoProcess(net, "source", registry, version="2.0",
                             reliable=True)
        creator.create_channel("ch")
        source.open_channel("ch", "creator", as_source=True)
        net.run()
        assert source.submit_batch("ch", EVT_V2, []) == 0


class TestBatchTraceContinuity:
    def test_one_frame_level_trace_covers_every_delivery(self):
        obs.enable(registry=obs.Registry())
        try:
            run_batch_chain(
                messages=8, batch_size=4, loss_rate=0.0, jitter=0.0
            )
            tree = obs.get_tracer().tree()
            publishes = find_spans(tree, "echo.publish_batch")
            receives = find_spans(tree, "echo.batch.receive")
            assert len(publishes) == 2  # 8 events / batch_size 4
            assert receives, "sinks recorded no batch receive spans"
            minted = {span.get("trace_id") for span in publishes}
            assert None not in minted
            assert {span.get("trace_id") for span in receives} <= minted
        finally:
            obs.disable(reset=True)
