"""Tests for derived event channels: source-side ECode filters."""

import pytest

from repro.echo.process import EChoProcess
from repro.errors import ChannelError
from repro.net.transport import Network
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry

pytestmark = pytest.mark.integration

EVT = IOFormat(
    "Telemetry",
    [IOField("t", "float"), IOField("load", "integer")],
    version="1.0",
)

HIGH_LOAD_FILTER = "return input.load > 50;"


def build():
    net = Network()
    registry = FormatRegistry()
    creator = EChoProcess(net, "creator", registry, version="2.0")
    source = EChoProcess(net, "source", registry, version="2.0")
    all_sink = EChoProcess(net, "all-sink", registry, version="2.0")
    hot_sink = EChoProcess(net, "hot-sink", registry, version="2.0")
    creator.create_channel("raw")
    source.open_channel("raw", "creator", as_source=True)
    all_sink.open_channel("raw", "creator", as_sink=True)
    net.run()
    creator.create_derived_channel("raw", "raw.hot", HIGH_LOAD_FILTER)
    hot_sink.open_channel("raw.hot", "creator", as_sink=True)
    net.run()
    return net, creator, source, all_sink, hot_sink


def publish(net, source, sink_pairs, loads):
    got = {}
    for process, channel in sink_pairs:
        got[process.address] = []
        process.subscribe(channel, EVT, got[process.address].append)
    for i, load in enumerate(loads):
        source.submit("raw", EVT, EVT.make_record(t=float(i), load=load))
    net.run()
    return got


class TestFiltering:
    def test_filter_selects_matching_events(self):
        net, _creator, source, all_sink, hot_sink = build()
        got = publish(
            net, source,
            [(all_sink, "raw"), (hot_sink, "raw.hot")],
            loads=[10, 80, 45, 99, 50],
        )
        assert [e.load for e in got["all-sink"]] == [10, 80, 45, 99, 50]
        assert [e.load for e in got["hot-sink"]] == [80, 99]
        assert source.filtered_out == 3

    def test_filtered_events_never_touch_the_wire(self):
        net, _creator, source, _all_sink, hot_sink = build()
        # disconnect the unfiltered sink so only derived traffic flows
        before = net.messages_sent
        publish(net, source, [(hot_sink, "raw.hot")], loads=[1, 2, 3, 100])
        # 4 submits to 'all-sink' (raw member) + exactly 1 derived push
        derived_pushes = net.messages_sent - before - 4
        assert derived_pushes == 1

    def test_source_compiled_the_filter_via_dcg(self):
        _net, _creator, source, _a, _h = build()
        assert "raw.hot" in source._filters
        assert "input" in source._filters["raw.hot"].params

    def test_late_joining_source_learns_filters(self):
        net, creator, _source, _all_sink, hot_sink = build()
        late = EChoProcess(net, "late-source", creator.registry, version="2.0")
        late.open_channel("raw", "creator", as_source=True)
        net.run()
        got = publish(net, late, [(hot_sink, "raw.hot")], loads=[60, 10])
        assert [e.load for e in got["hot-sink"]] == [60]

    def test_new_derived_sink_refreshes_sources(self):
        net, creator, source, _all_sink, hot_sink = build()
        another = EChoProcess(net, "another-hot", creator.registry, version="2.0")
        another.open_channel("raw.hot", "creator", as_sink=True)
        net.run()
        got = publish(
            net, source,
            [(hot_sink, "raw.hot"), (another, "raw.hot")],
            loads=[70],
        )
        assert [e.load for e in got["hot-sink"]] == [70]
        assert [e.load for e in got["another-hot"]] == [70]


class TestLifecycleErrors:
    def test_only_creator_may_derive(self):
        net, _creator, source, _a, _h = build()
        with pytest.raises(ChannelError, match="creator"):
            source.create_derived_channel("raw", "raw.x", HIGH_LOAD_FILTER)

    def test_filter_must_compile(self):
        net, creator, _s, _a, _h = build()
        with pytest.raises(ChannelError, match="compile"):
            creator.create_derived_channel("raw", "raw.bad", "$$$")

    def test_duplicate_derived_id(self):
        net, creator, _s, _a, _h = build()
        with pytest.raises(ChannelError, match="exists"):
            creator.create_derived_channel("raw", "raw.hot", HIGH_LOAD_FILTER)

    def test_runtime_filter_fault_drops_event_not_process(self):
        net = Network()
        registry = FormatRegistry()
        creator = EChoProcess(net, "creator", registry, version="2.0")
        source = EChoProcess(net, "source", registry, version="2.0")
        sink = EChoProcess(net, "sink", registry, version="2.0")
        creator.create_channel("raw")
        source.open_channel("raw", "creator", as_source=True)
        net.run()
        creator.create_derived_channel("raw", "raw.x", "return input.missing;")
        sink.open_channel("raw.x", "creator", as_sink=True)
        net.run()
        got = []
        sink.subscribe("raw.x", EVT, got.append)
        source.submit("raw", EVT, EVT.make_record(t=0.0, load=1))
        net.run()
        assert got == []
        assert source.filter_errors == 1
