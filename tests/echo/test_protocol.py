"""Unit tests for the ECho protocol formats and transforms."""

import pytest

from repro.bench.workloads import response_v1_from_v2, response_v2
from repro.echo.protocol import (
    EVENT_ENVELOPE,
    OPEN_REQUEST,
    RESPONSE_BY_VERSION,
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    V1_TO_V0_TRANSFORM,
    V1_TO_V2_TRANSFORM,
    V2_TO_V1_TRANSFORM,
    register_protocol,
)
from repro.morph.transform import Transformation
from repro.pbio.encode import native_size
from repro.pbio.record import records_equal
from repro.pbio.registry import FormatRegistry


class TestFormats:
    def test_all_revisions_share_the_name(self):
        assert RESPONSE_V0.name == RESPONSE_V1.name == RESPONSE_V2.name

    def test_distinct_fingerprints(self):
        ids = {RESPONSE_V0.format_id, RESPONSE_V1.format_id, RESPONSE_V2.format_id}
        assert len(ids) == 3

    def test_v1_weight_exceeds_v2(self):
        # the paper: v1.0 lists contact info up to three times
        assert RESPONSE_V1.weight > RESPONSE_V2.weight

    def test_response_by_version_complete(self):
        assert set(RESPONSE_BY_VERSION) == {"0.0", "1.0", "2.0"}

    def test_v2_message_smaller_than_v1(self):
        v2_rec = response_v2(50)
        v1_rec = response_v1_from_v2(v2_rec)
        v2_size = native_size(RESPONSE_V2, v2_rec)
        v1_size = native_size(RESPONSE_V1, v1_rec)
        # "reduced the size of the response message by more than half"
        assert v1_size > 2 * v2_size


class TestTransforms:
    def test_v2_to_v1_rebuilds_role_lists(self):
        incoming = response_v2(6)
        out = Transformation(V2_TO_V1_TRANSFORM).apply(incoming)
        assert records_equal(out, response_v1_from_v2(incoming))

    def test_v1_to_v0_drops_roles(self):
        v1_rec = response_v1_from_v2(response_v2(3))
        out = Transformation(V1_TO_V0_TRANSFORM).apply(v1_rec)
        assert set(out.keys()) == {"channel_id", "member_count", "member_list"}
        assert out["member_count"] == 3

    def test_v1_to_v2_derives_flags(self):
        original = response_v2(5)
        v1_rec = response_v1_from_v2(original)
        out = Transformation(V1_TO_V2_TRANSFORM).apply(v1_rec)
        assert records_equal(out, original)

    def test_full_cycle_v2_v1_v2(self):
        original = response_v2(4)
        down = Transformation(V2_TO_V1_TRANSFORM).apply(original)
        up = Transformation(V1_TO_V2_TRANSFORM).apply(down)
        assert records_equal(up, original)


class TestRegisterProtocol:
    @pytest.mark.parametrize("version", ["0.0", "1.0", "2.0"])
    def test_registers_control_formats(self, version):
        registry = FormatRegistry()
        register_protocol(registry, version)
        assert OPEN_REQUEST in registry
        assert EVENT_ENVELOPE in registry
        assert RESPONSE_BY_VERSION[version] in registry

    def test_v2_writer_attaches_retro_chain(self):
        registry = FormatRegistry()
        register_protocol(registry, "2.0")
        chains = registry.transform_closure(RESPONSE_V2)
        targets = {c[-1].target.version for c in chains}
        assert targets == {"1.0", "0.0"}

    def test_v1_writer_attaches_both_directions(self):
        registry = FormatRegistry()
        register_protocol(registry, "1.0")
        targets = {c[-1].target.version
                   for c in registry.transform_closure(RESPONSE_V1)}
        assert targets == {"0.0", "2.0"}

    def test_unknown_version_raises(self):
        with pytest.raises(KeyError):
            register_protocol(FormatRegistry(), "9.9")
