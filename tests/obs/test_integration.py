"""Integration: instrumentation wired through PBIO, morph, ECho and net.

The acceptance scenario from the subsystem's design: with observability
enabled, a single morphed delivery yields a span tree covering decode ->
MaxMatch -> transform -> dispatch plus nonzero conversion-cache
counters, all exportable as JSON and Prometheus text.  With it disabled
(the default), the global registry stays untouched.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.morph.receiver import MorphReceiver
from repro.obs.export import build_snapshot, to_prometheus
from repro.obs.tracing import find_spans
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry


@pytest.fixture
def evolving_reading():
    """Reading v2 writer / v1 reader with a retro-transform between."""
    v1 = IOFormat(
        "Reading",
        [IOField("celsius", "float"), IOField("station", "string")],
        version="1",
    )
    v2 = IOFormat(
        "Reading",
        [
            IOField("kelvin", "float"),
            IOField("station", "string"),
            IOField("sensor_id", "integer"),
        ],
        version="2",
    )
    registry = FormatRegistry()
    registry.add_transform(
        v2, v1,
        "old.celsius = new.kelvin - 273.15;\nold.station = new.station;",
    )
    return registry, v1, v2


def _morphed_wire_delivery(registry, v1, v2, messages=2, **receiver_kwargs):
    """Encode v2 records and push them through a v1-only receiver."""
    received = []
    receiver = MorphReceiver(registry, **receiver_kwargs)
    receiver.register_handler(v1, received.append)
    sender = PBIOContext(registry)
    for i in range(messages):
        data = sender.encode(
            v2, v2.make_record(kelvin=290.0 + i, station="st", sensor_id=i)
        )
        receiver.process(data)
    return receiver, received


def test_single_morphed_delivery_produces_full_span_tree(evolving_reading):
    # the staged pipeline's span shape: pin fusion off (the fused fast
    # path collapses decode+transform into one morph.fused span, asserted
    # separately below)
    registry, v1, v2 = evolving_reading
    obs.enable()
    receiver, received = _morphed_wire_delivery(
        registry, v1, v2, messages=1, use_fusion=False
    )

    assert len(received) == 1
    assert received[0]["celsius"] == pytest.approx(16.85)

    tree = obs.get_tracer().tree()
    (process,) = find_spans(tree, "morph.process")
    # the stages nest under the per-message span, in pipeline order
    stages = [c["name"] for c in process["children"]]
    # no morph.reconcile here: the transform lands exactly on the
    # reader's registered v1, so the match is perfect after morphing
    assert stages == [
        "morph.maxmatch", "pbio.decode", "morph.transform", "morph.dispatch",
    ]
    # the chain compilation traces as codegen work inside route planning
    assert find_spans([process], "ecode.codegen")
    (maxmatch,) = find_spans(tree, "morph.maxmatch")
    assert maxmatch["attrs"]["format"] == "Reading"
    assert maxmatch["attrs"]["rejected"] is False
    (transform,) = find_spans(tree, "morph.transform")
    assert transform["attrs"] == {"source": "2", "target": "1", "steps": 1}
    (decode,) = find_spans(tree, "pbio.decode")
    assert decode["attrs"]["format"] == "Reading"


def test_fused_delivery_produces_collapsed_span_tree(evolving_reading):
    registry, v1, v2 = evolving_reading
    obs.enable()
    receiver, received = _morphed_wire_delivery(registry, v1, v2, messages=1)

    assert len(received) == 1
    assert received[0]["celsius"] == pytest.approx(16.85)

    tree = obs.get_tracer().tree()
    (process,) = find_spans(tree, "morph.process")
    # decode + transform collapse into one specialized routine
    stages = [c["name"] for c in process["children"]]
    assert stages == ["morph.maxmatch", "morph.fused", "morph.dispatch"]
    metrics = obs.get_registry()
    assert metrics.counter("morph.receiver.fused_messages").value == 1
    assert metrics.histogram("morph.fused.seconds").count == 1
    assert metrics.counter("morph.fusion.compiles").value == 1


def test_cache_counters_and_exporters(evolving_reading):
    # counter assertions below (morph.transform.seconds) are staged-path
    # specific; the fused equivalents are asserted in the fused span test
    registry, v1, v2 = evolving_reading
    obs.enable()
    receiver, _ = _morphed_wire_delivery(
        registry, v1, v2, messages=3, use_fusion=False
    )

    metrics = obs.get_registry()
    assert metrics.counter("morph.receiver.cache_misses").value == 1
    assert metrics.counter("morph.receiver.cache_hits").value == 2
    assert metrics.counter("morph.receiver.morphed").value == 3
    assert metrics.counter("morph.receiver.compiled_chains").value == 1
    assert metrics.histogram("morph.transform.seconds").count == 3

    snap = build_snapshot(metrics, obs.get_tracer())
    json.dumps(snap)  # JSON-serializable end to end
    assert snap["metrics"]["morph.receiver.cache_hits"]["value"] == 2
    # one morph.process root per message (plus the sender's encode spans)
    assert len(find_spans(snap["spans"]["tree"], "morph.process")) == 3

    prom = to_prometheus(metrics)
    assert "morph_receiver_cache_hits 2" in prom
    assert "morph_receiver_cache_misses 1" in prom
    assert "morph_transform_seconds_count 3" in prom


def test_echo_channel_delivery_spans_and_counters(evolving_reading):
    from repro.echo.process import EChoProcess
    from repro.net.transport import Network

    registry, v1, v2 = evolving_reading
    obs.enable()

    network = Network()
    producer = EChoProcess(network, "producer", registry, version="2.0")
    consumer = EChoProcess(network, "consumer", registry, version="1.0")
    producer.create_channel("readings")
    consumer.open_channel("readings", "producer", as_sink=True)
    network.run()
    received = []
    consumer.subscribe("readings", v1, received.append)
    for i in range(4):
        producer.submit(
            "readings", v2,
            v2.make_record(kelvin=290.0 + i, station="st", sensor_id=i),
        )
    network.run()

    assert len(received) == 4
    metrics = obs.get_registry()
    assert metrics.counter(
        "echo.channel.events_delivered", channel="readings"
    ).value == 4
    assert metrics.counter(
        "net.transport.messages", source="producer", destination="consumer"
    ).value >= 4

    tree = obs.get_tracer().tree()
    deliveries = find_spans(tree, "echo.deliver")
    assert len(deliveries) == 4
    assert deliveries[0]["attrs"] == {
        "channel": "readings", "process": "consumer",
    }
    # morph.process nests inside the channel delivery span
    assert find_spans(deliveries[0]["children"], "morph.process")


def test_disabled_observability_records_nothing_globally(evolving_reading):
    registry, v1, v2 = evolving_reading
    assert not obs.is_enabled()
    receiver, received = _morphed_wire_delivery(registry, v1, v2, messages=2)

    assert len(received) == 2
    assert len(obs.get_registry()) == 0
    assert obs.get_tracer().spans() == []
    # per-receiver stats still count (they are always on)
    assert receiver.stats.messages == 2
    assert receiver.stats.cache_hits == 1


def test_receiver_stats_mirror_and_legacy_attributes(evolving_reading):
    registry, v1, v2 = evolving_reading
    obs.enable()
    receiver, _ = _morphed_wire_delivery(registry, v1, v2, messages=2)

    stats = receiver.stats
    assert stats.messages == 2
    assert stats.cache_misses == 1
    assert stats.snapshot()["morphed"] == 2
    # mismatch ratio of the chosen (transformed) match is recorded
    assert stats.mismatch_ratios.count == 1
    global_hist = obs.get_registry().histogram("morph.maxmatch.mismatch_ratio")
    assert global_hist.count == 1
