"""docs/OBSERVABILITY.md metric catalog ⇄ instrumented code, both ways.

The catalog is a contract: every metric the code can emit is
documented, and every documented metric exists in the code.  This test
extracts both sides and diffs them, so a new ``counter("x.y")`` without
a catalog row — or a catalog row whose metric was renamed away — fails
CI with the exact missing names.

Code-side extraction handles the three emission styles in the tree:

* literal calls — ``counter("pbio.encode.bytes")``,
  ``bounded_counter(f"morph.transform.applied", ...)``, plus the
  registry-internal ``_get_or_create(Counter, "obs.labels.overflow")``;
* dynamic families — ``self._count("sends")`` routed through a helper
  that prepends an f-string prefix (``f"net.reliable.{name}"``).
  Prefix and call sites are associated *per class chunk* because
  ``pbio/server.py`` hosts two such families with different prefixes;
* indirection — names passed as plain string arguments to a helper
  (``_cache_codec(..., "pbio.context.encoder_cache_size")``), pinned
  by the explicit ``INDIRECT_SITES`` list below, which also asserts
  the literal still lives in the named file so the list cannot rot.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.morph.receiver import STAT_COUNTERS

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
DOC = REPO / "docs" / "OBSERVABILITY.md"

#: literal instrument constructions — the first string argument is the
#: metric name (dotted names only; single-word names are test-local)
CALL_RE = re.compile(
    r'(?:counter|gauge|histogram|bounded_counter)'
    r'\(\s*f?["\']([a-z0-9_.]+)["\']'
)
#: the registry's internal create path (used for its own meta-metrics)
GET_OR_CREATE_RE = re.compile(
    r'_get_or_create\(\s*[A-Za-z]+,\s*["\']([a-z0-9_.]+)["\']'
)
#: a dynamic family's prefix: ``f"net.reliable.{name}"``
DYNAMIC_PREFIX_RE = re.compile(r'f["\']([a-z0-9_.]+)\.\{name\}["\']')
#: ...and the names fed into it: ``self._count("sends", ...)``
DYNAMIC_ARG_RE = re.compile(r'self\._count\(\s*["\']([a-z0-9_]+)["\']')

#: (path under src/repro, metric name) for names that reach their
#: instrument call through a helper argument the regexes cannot see
INDIRECT_SITES = [
    ("pbio/context.py", "pbio.context.encoder_cache_size"),
    ("pbio/context.py", "pbio.context.decoder_cache_size"),
]


def code_metric_names():
    names = set()
    for path in sorted(SRC.rglob("*.py")):
        # The bench harness synthesizes app-side workload registries
        # ("app.events" and friends) to measure the plane — those are
        # measurement props, not part of the library's metric contract.
        if (SRC / "bench") in path.parents:
            continue
        text = path.read_text()
        for regex in (CALL_RE, GET_OR_CREATE_RE):
            for match in regex.finditer(text):
                if "." in match.group(1):
                    names.add(match.group(1))
        # Dynamic families: associate prefixes with _count() arguments
        # within the same class body, never across classes.
        for chunk in re.split(r"\nclass ", text):
            prefixes = DYNAMIC_PREFIX_RE.findall(chunk)
            if not prefixes:
                continue
            arguments = DYNAMIC_ARG_RE.findall(chunk)
            for prefix in prefixes:
                for argument in arguments:
                    names.add(f"{prefix}.{argument}")
    # morph.receiver.* flows through Stats.inc(name) — the authoritative
    # name list is importable rather than greppable.
    names.update(f"morph.receiver.{name}" for name in STAT_COUNTERS)
    for relative, name in INDIRECT_SITES:
        source = (SRC / relative).read_text()
        assert name in source, (
            f"INDIRECT_SITES is stale: {name!r} no longer appears in "
            f"src/repro/{relative}"
        )
        names.add(name)
    return names


def documented_metric_names():
    """Metric names from every ``| `...` |`` table row in the doc.

    Only the row's first cell is read.  A token starting with ``.`` is
    shorthand expanded against the previous full name with its last
    segment stripped (``net.transport.messages`` / ``.bytes``); tokens
    without a dot (wire-field tables) are not metric names.
    """
    names = set()
    base = None
    for line in DOC.read_text().splitlines():
        if not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        for token in re.findall(r"`([^`]+)`", first_cell):
            token = token.strip()
            if token.startswith("."):
                assert base is not None and "." in base, (
                    f"suffix token {token!r} has no expandable base "
                    f"in doc row: {line!r}"
                )
                names.add(base.rsplit(".", 1)[0] + token)
            else:
                base = token
                if "." in token:
                    names.add(token)
    return names


class TestMetricCatalogDrift:
    def test_every_emitted_metric_is_documented(self):
        undocumented = code_metric_names() - documented_metric_names()
        assert not undocumented, (
            "metrics emitted in src/repro/ but missing from the "
            "docs/OBSERVABILITY.md catalog tables:\n  "
            + "\n  ".join(sorted(undocumented))
        )

    def test_every_documented_metric_is_emitted(self):
        phantom = documented_metric_names() - code_metric_names()
        assert not phantom, (
            "metrics documented in docs/OBSERVABILITY.md but never "
            "emitted anywhere in src/repro/:\n  "
            + "\n  ".join(sorted(phantom))
        )

    def test_extraction_is_not_trivially_broken(self):
        """Guard the guards: both extractors must see a healthy
        population, and the known-tricky names must be present."""
        code = code_metric_names()
        documented = documented_metric_names()
        assert len(code) > 100
        assert len(documented) > 100
        for tricky in (
            "net.reliable.retries",          # dynamic family
            "fabric.journal.fenced_appends",  # dynamic family
            "pbio.format_server.registers",   # dynamic, file w/ 2 prefixes
            "pbio.resolver.failovers",        # ...the other prefix
            "morph.receiver.cache_hits",      # STAT_COUNTERS import
            "obs.labels.overflow",            # _get_or_create path
            "pbio.context.encoder_cache_size",  # INDIRECT_SITES
            "obs.telemetry.collector.deltas",   # literal
        ):
            assert tricky in code, f"extractor lost {tricky!r}"
            assert tricky in documented, f"doc parser lost {tricky!r}"
