"""Unit tests for spans: nesting, ring-buffer bounds, null recorder."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.tracing import (
    NullRecorder,
    SpanRecorder,
    _NULL_SPAN,
    find_spans,
)


class TestSpanNesting:
    def test_parent_ids_follow_with_blocks(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
            with recorder.span("sibling"):
                pass
        spans = {s.name: s for s in recorder.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["sibling"].parent_id == spans["outer"].span_id

    def test_spans_record_duration_and_attrs(self):
        recorder = SpanRecorder()
        with recorder.span("work", stage="decode") as active:
            active.set_attr("bytes", 128)
        (span,) = recorder.spans()
        assert span.duration >= 0.0
        assert span.attrs == {"stage": "decode", "bytes": 128}

    def test_exception_marks_span_and_propagates(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            with recorder.span("will-fail"):
                raise ValueError("boom")
        (span,) = recorder.spans()
        assert span.attrs["error"] == "ValueError"

    def test_tree_nests_and_orders_children_by_start(self):
        recorder = SpanRecorder()
        with recorder.span("root"):
            with recorder.span("first"):
                with recorder.span("leaf"):
                    pass
            with recorder.span("second"):
                pass
        tree = recorder.tree()
        assert len(tree) == 1
        root = tree[0]
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == ["first", "second"]
        assert root["children"][0]["children"][0]["name"] == "leaf"

    def test_find_spans_searches_all_depths(self):
        recorder = SpanRecorder()
        with recorder.span("a"):
            with recorder.span("b"):
                pass
        with recorder.span("b"):
            pass
        tree = recorder.tree()
        assert len(find_spans(tree, "b")) == 2
        assert find_spans(tree, "zzz") == []


class TestRingBuffer:
    def test_capacity_bounds_buffer_but_not_total(self):
        recorder = SpanRecorder(capacity=4)
        for i in range(10):
            with recorder.span(f"s{i}"):
                pass
        spans = recorder.spans()
        assert len(spans) == 4
        assert [s.name for s in spans] == ["s6", "s7", "s8", "s9"]
        assert recorder.recorded_total == 10

    def test_eviction_drops_oldest_completed_spans(self):
        # Inner spans complete (and are recorded) before their parent, so
        # the oldest child is the one the ring evicts first.
        recorder = SpanRecorder(capacity=2)
        with recorder.span("parent"):
            with recorder.span("child1"):
                pass
            with recorder.span("child2"):
                pass
        names = [s.name for s in recorder.spans()]
        assert names == ["child2", "parent"]
        tree = recorder.tree()
        assert [c["name"] for c in tree[0]["children"]] == ["child2"]

    def test_children_of_open_parent_surface_as_roots(self):
        # A snapshot taken while the parent span is still open must not
        # lose the completed children — they show up as roots.
        recorder = SpanRecorder()
        with recorder.span("open-parent"):
            with recorder.span("child"):
                pass
            tree_mid = recorder.tree()
        assert [n["name"] for n in tree_mid] == ["child"]

    def test_clear_empties_buffer(self):
        recorder = SpanRecorder()
        with recorder.span("s"):
            pass
        recorder.clear()
        assert recorder.spans() == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)


class TestNullRecorder:
    def test_span_is_shared_noop(self):
        recorder = NullRecorder()
        span = recorder.span("anything", k="v")
        assert span is _NULL_SPAN
        with span as active:
            active.set_attr("ignored", 1)
        assert recorder.spans() == []

    def test_module_level_span_helper_respects_enable(self):
        assert not obs.is_enabled()
        assert obs.span("x") is _NULL_SPAN
        obs.enable()
        try:
            with obs.span("x"):
                pass
            assert [s.name for s in obs.get_tracer().spans()] == ["x"]
        finally:
            obs.disable(reset=True)
        assert obs.span("x") is _NULL_SPAN
