"""The ``python -m repro.obs`` CLI and the bench JSON record helpers."""

from __future__ import annotations

import json

from repro import obs
from repro.bench.__main__ import _rows_record, _stage_breakdown
from repro.bench.timing import Measurement
from repro.obs.__main__ import main as obs_main


class _Row:
    """Duck-typed ComparisonRow for the record builder."""

    def __init__(self):
        self.label = "1KB"
        self.unencoded_bytes = 1000
        self.pbio = Measurement(best=0.001, mean=0.002, rounds=2, number=10)
        self.xml = Measurement(best=0.010, mean=0.012, rounds=2, number=10)

    @property
    def ratio(self):
        return self.xml.best / self.pbio.best


def test_rows_record_shape():
    record = _rows_record("fig9_decoding", [_Row()])
    assert record["figure"] == "fig9_decoding"
    (workload,) = record["workloads"]
    assert workload["label"] == "1KB"
    assert workload["unencoded_bytes"] == 1000
    timings = workload["timings"]
    assert timings["pbio_seconds"] == 0.001
    assert timings["xml_seconds"] == 0.010
    assert timings["ratio"] == 10.0


def test_stage_breakdown_splits_timings_counters_distributions():
    registry = obs.Registry()
    registry.counter("morph.receiver.cache_hits").inc(5)
    registry.counter("never.incremented")
    registry.histogram("pbio.decode.seconds").observe(0.002)
    registry.histogram("empty.seconds")
    registry.histogram(
        "morph.maxmatch.mismatch_ratio", bounds=obs.RATIO_BUCKETS
    ).observe(0.25)
    stages = _stage_breakdown(registry)
    assert stages["counters"] == {"morph.receiver.cache_hits": 5}
    assert list(stages["timings"]) == ["pbio.decode.seconds"]
    assert stages["timings"]["pbio.decode.seconds"]["count"] == 1
    # ratio histograms are distributions, not (milli)second timings
    assert list(stages["distributions"]) == ["morph.maxmatch.mismatch_ratio"]


def test_obs_cli_demo_snapshot(tmp_path, capsys):
    out = tmp_path / "snap.json"
    assert obs_main(["--json", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "== metrics ==" in stdout
    assert "== spans ==" in stdout

    snap = json.loads(out.read_text())
    metrics = snap["metrics"]
    # 25 events plus the channel-protocol control messages
    assert metrics["morph.receiver.messages"]["value"] >= 25
    assert metrics["morph.receiver.cache_hits"]["value"] >= 24
    assert metrics['echo.channel.events_delivered{channel="readings"}'][
        "value"
    ] == 25
    assert snap["spans"]["buffered"] > 0
    # the CLI leaves the process-wide state disabled and clean
    assert not obs.is_enabled()
    assert len(obs.get_registry()) == 0

    # --load pretty-prints a saved snapshot
    assert obs_main(["--load", str(out)]) == 0
    loaded = capsys.readouterr().out
    assert "morph.receiver.messages" in loaded
    assert "spans:" in loaded


def test_obs_cli_prometheus(capsys):
    assert obs_main(["--prometheus"]) == 0
    stdout = capsys.readouterr().out
    assert "# TYPE morph_receiver_cache_hits counter" in stdout
    assert "# TYPE pbio_decode_seconds histogram" in stdout
    assert 'echo_channel_events_delivered{channel="readings"} 25' in stdout
