"""Unit tests for counters, gauges, histograms and the registry."""

from __future__ import annotations

import pytest

from repro.errors import ObsError
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    RATIO_BUCKETS,
    Registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increments(self):
        counter = Counter("c")
        with pytest.raises(ObsError):
            counter.inc(-1)
        assert counter.value == 0

    def test_reset(self):
        counter = Counter("c")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(3)
        assert counter.snapshot() == {"value": 3}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(11.5)

    def test_reset(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_count_sum_mean(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 10.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(15.0)
        assert hist.mean == pytest.approx(3.75)

    def test_empty_histogram(self):
        hist = Histogram("h", bounds=(1.0,))
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.p50 == 0.0

    def test_bucket_assignment_inclusive_upper_edge(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(1.0)  # lands in the le=1.0 bucket, not le=2.0
        snap = hist.snapshot()
        assert snap["buckets"][0] == {"le": 1.0, "count": 1}
        assert snap["buckets"][1] == {"le": 2.0, "count": 0}

    def test_overflow_bucket(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(99.0)
        snap = hist.snapshot()
        assert snap["buckets"][-1] == {"le": None, "count": 1}
        assert snap["max"] == 99.0

    def test_percentiles_interpolate_within_bucket(self):
        hist = Histogram("h", bounds=(0.0, 10.0))
        # 100 observations uniform in (0, 10]: p50 ~ 5, p95 ~ 9.5
        for i in range(1, 101):
            hist.observe(i / 10)
        assert hist.p50 == pytest.approx(5.0, abs=0.5)
        assert hist.p95 == pytest.approx(9.5, abs=0.5)
        assert hist.p99 == pytest.approx(9.9, abs=0.5)

    def test_identical_observations_give_exact_percentiles(self):
        # Regression: interpolation must not invent spread when every
        # observation is the same value (e.g. all-zero mismatch ratios).
        hist = Histogram("h", bounds=RATIO_BUCKETS)
        for _ in range(50):
            hist.observe(0.0)
        assert hist.p50 == 0.0
        assert hist.p99 == 0.0

    def test_percentile_validates_quantile(self):
        hist = Histogram("h", bounds=(1.0,))
        with pytest.raises(ObsError):
            hist.percentile(0.0)
        with pytest.raises(ObsError):
            hist.percentile(1.5)

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ObsError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ObsError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ObsError):
            Histogram("h", bounds=())

    def test_reset(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        hist.reset()
        assert hist.count == 0
        assert hist.sum == 0.0
        assert hist.snapshot()["min"] is None

    def test_default_bucket_constants_are_sane(self):
        for bounds in (LATENCY_BUCKETS, RATIO_BUCKETS, COUNT_BUCKETS):
            assert list(bounds) == sorted(set(bounds))
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert RATIO_BUCKETS[-1] == 1.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = Registry()
        first = registry.counter("hits")
        second = registry.counter("hits")
        assert first is second

    def test_labels_distinguish_instruments(self):
        registry = Registry()
        a = registry.counter("msgs", node="a")
        b = registry.counter("msgs", node="b")
        assert a is not b
        # label order is irrelevant to identity
        x = registry.counter("link", src="p", dst="q")
        y = registry.counter("link", dst="q", src="p")
        assert x is y

    def test_kind_clash_raises(self):
        registry = Registry()
        registry.counter("thing")
        with pytest.raises(ObsError):
            registry.gauge("thing")
        with pytest.raises(ObsError):
            registry.histogram("thing")

    def test_histogram_custom_bounds_only_apply_on_creation(self):
        registry = Registry()
        hist = registry.histogram("h", bounds=(1.0, 2.0))
        again = registry.histogram("h")
        assert again is hist
        assert again.bounds == (1.0, 2.0)

    def test_get_and_len(self):
        registry = Registry()
        assert registry.get("missing") is None
        counter = registry.counter("c", node="n")
        assert registry.get("c", node="n") is counter
        assert len(registry) == 1

    def test_snapshot_keys_include_label_suffix(self):
        registry = Registry()
        registry.counter("msgs", node="a").inc(2)
        snap = registry.snapshot()
        assert snap['msgs{node="a"}'] == {
            "value": 2, "kind": "counter", "labels": {"node": "a"},
        }

    def test_reset_keeps_instruments_clear_drops_them(self):
        registry = Registry()
        counter = registry.counter("c")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("c") is counter
        registry.clear()
        assert len(registry) == 0
        assert registry.counter("c") is not counter
