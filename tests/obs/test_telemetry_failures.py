"""Telemetry plane under failure: lossy datagrams, crashed workers,
and SLO alerts riding injected loss.

Three scenarios the unit tests cannot cover:

* the agent's deltas stay exactly-once when the socket transport drops
  (and the reliable layer retransmits) real UDP datagrams;
* a crashed fabric worker's source goes stale the moment the lease
  machinery declares it dead — long before the silence horizon — and
  recovers when the worker rejoins with a fresh boot;
* the retransmit-ratio SLO fires during an injected loss window on the
  sim fabric and resolves after the link heals.
"""

from __future__ import annotations

from repro import obs
from repro.fabric import EventFabric, JournalStore
from repro.net.link import LinkSpec
from repro.net.socket import SocketNetwork
from repro.net.transport import Network
from repro.obs.agent import TelemetryAgent
from repro.obs.collector import TelemetryCollector
from repro.obs.metrics import Registry
from repro.obs.protocol import (
    TELEMETRY_CHANNEL,
    TELEMETRY_V2,
    register_telemetry_protocol,
)
from repro.pbio.registry import FormatRegistry


class TestLossySocketTransport:
    def test_deltas_exactly_once_and_idempotent_on_replay(self):
        """Agent → collector over 30% lossy UDP with reliable
        endpoints: totals converge exactly, and replaying every
        delivered record back into the collector changes nothing —
        retransmitted deltas are idempotent by construction."""
        from repro.echo.process import EChoProcess

        registry = FormatRegistry()
        register_telemetry_protocol(registry)
        with SocketNetwork(
            seed=9, default_link=LinkSpec(loss_rate=0.3)
        ) as net:
            agent_proc = EChoProcess(net, "agent", registry,
                                     reliable=True)
            sink_proc = EChoProcess(net, "sink", registry,
                                    reliable=True)
            agent_proc.create_channel(TELEMETRY_CHANNEL)
            sink_proc.open_channel(TELEMETRY_CHANNEL, "agent",
                                   as_sink=True)
            net.run(max_time=10.0)

            collector = TelemetryCollector()
            delivered = []

            def tee(record):
                delivered.append(record)
                collector.ingest(record)

            sink_proc.subscribe(TELEMETRY_CHANNEL, TELEMETRY_V2, tee)

            local = Registry()
            agent = TelemetryAgent.over_echo(
                agent_proc, registry=local, worker="w0", boot=1,
            )
            for round_index in range(5):
                local.counter("app.events", channel="c").inc(3)
                agent.scrape(now=float(round_index))
            net.run(max_time=20.0)

            assert net.lost > 0  # loss actually happened
            assert len(delivered) == 5
            assert collector.total("app.events") == 15
            assert collector.sources["agent"].last_seq == 5
            assert collector.duplicates == 0

            # Replay every delivered record — a retransmission storm at
            # the telemetry layer.  Nothing may change.
            for record in delivered:
                assert collector.ingest(record) is False
            assert collector.total("app.events") == 15
            assert collector.duplicates == len(delivered)
            assert collector.sources["agent"].deltas == 5


def _noop():
    pass


class _TelemetryDeployment:
    """Three journaled workers, each with a local app registry and a
    heartbeat-piggybacked telemetry agent, plus a monitor client whose
    collector rides the lease machinery."""

    RELIABLE = {"base_timeout": 0.02, "max_retries": 5}

    def __init__(self, seed=7, lease_timeout=0.6):
        self.net = Network(
            seed=seed,
            default_link=LinkSpec(
                latency=0.002, loss_rate=0.05, jitter=0.005
            ),
        )
        self.fabric = EventFabric(
            self.net, registry=FormatRegistry(), reliable=True,
            journal=JournalStore(), lease_timeout=lease_timeout,
        )
        self.workers = {
            address: self.fabric.add_worker(
                address, reliable_options=dict(self.RELIABLE)
            )
            for address in ("w1", "w2", "w3")
        }
        self.monitor = self.fabric.client(
            "monitor", reliable_options=dict(self.RELIABLE)
        )
        self.collector = TelemetryCollector(clock=self.net)
        self.collector.subscribe_fabric(self.monitor)
        self.collector.attach_directory(self.fabric.directory)
        self.registries = {}
        self.clients = {}
        for address, worker in self.workers.items():
            self.attach_agent(address, worker, boot=None)
        self.pump(4)  # settle the telemetry subscription fleet-wide

    def attach_agent(self, address, worker, boot, fresh_registry=False):
        if fresh_registry or address not in self.registries:
            # a restarted process comes back with an empty registry —
            # its old in-memory counters died with it
            self.registries[address] = Registry()
        client = self.clients.get(address)
        if client is None:
            client = self.clients[address] = self.fabric.client(
                f"app-{address}", reliable_options=dict(self.RELIABLE)
            )
        agent = TelemetryAgent.over_fabric(
            client,
            process=f"app-{address}",
            worker=address,
            registry=self.registries[address],
            interval=0.0,  # scrape on every heartbeat
            boot=boot,
        )
        worker.attach_telemetry(agent)
        return agent

    def pump(self, steps, step=0.05, tick=None):
        for _ in range(steps):
            if tick is not None:
                tick()
            for worker in self.workers.values():
                worker.heartbeat()
            self.fabric.directory.check_leases()
            self.collector.check_stale(self.net.now)
            self.net.call_later(step, _noop)
            self.net.run(max_time=self.net.now + step)


class TestCrashedWorkerStaleness:
    def test_lease_death_marks_stale_and_rejoin_recovers(self):
        d = _TelemetryDeployment()
        for address in d.workers:
            source = d.collector.sources[f"app-{address}"]
            assert not source.stale
            assert source.worker == address
        victim_address = "w2"
        victim = d.workers[victim_address]
        old_boot = d.collector.sources[f"app-{victim_address}"].boot

        d.fabric.crash_worker(victim_address)
        newly_stale = []
        d.pump(18, tick=lambda: newly_stale.extend(
            d.collector.check_stale(d.net.now)
        ))
        # The lease machinery, not the silence horizon, drove this:
        # 18 × 0.05 s = 0.9 s of quiet is well under stale_after (3 s),
        # but past the 0.6 s lease.
        assert victim_address not in d.fabric.directory.workers
        assert f"app-{victim_address}" in newly_stale
        assert d.collector.sources[f"app-{victim_address}"].stale
        for address in ("w1", "w3"):
            assert not d.collector.sources[f"app-{address}"].stale

        victim.restart()
        d.fabric.directory.join(victim)
        d.attach_agent(victim_address, victim, boot=None)
        d.pump(10)
        source = d.collector.sources[f"app-{victim_address}"]
        assert not source.stale
        assert source.boot != old_boot  # a fresh incarnation rejoined

    def test_totals_converge_exactly_across_the_crash(self):
        d = _TelemetryDeployment()
        victim_address = "w3"
        victim = d.workers[victim_address]
        ticks = {"count": 0}

        def tick_all():
            for address in d.workers:
                if not d.workers[address].crashed:
                    d.registries[address].counter("app.ticks").inc()
                    ticks["count"] += 1

        d.pump(6, tick=tick_all)
        d.fabric.crash_worker(victim_address)
        d.pump(18, tick=tick_all)  # survivors keep publishing
        victim.restart()
        d.fabric.directory.join(victim)
        d.attach_agent(victim_address, victim, boot=None,
                       fresh_registry=True)
        d.pump(10, tick=tick_all)
        d.pump(6)  # quiet drain: final scrapes flush the tail
        d.net.run()

        assert ticks["count"] > 0
        assert d.collector.total("app.ticks") == ticks["count"]


class TestSloUnderInjectedLoss:
    def test_retransmit_rule_fires_then_resolves(self):
        from repro.obs import topview

        obs.disable(reset=True)
        obs.enable()
        cluster = topview.build_cluster(
            scrape_interval=0.05, loss_rate=0.03
        )
        network = cluster.network
        assert network is not None and cluster.engine is not None
        topview.drive(cluster, 1.0)
        rule = cluster.engine.rule("retransmit-ratio")
        assert not rule.firing

        network.default_link = LinkSpec(latency=0.0005, loss_rate=0.60)
        topview.drive(cluster, 1.5)
        network.default_link = LinkSpec(latency=0.0005, loss_rate=0.0)
        topview.drive(cluster, 12.0, events_per_step=2, step=0.2)
        cluster.flush()

        tos = [
            t["to"] for t in cluster.transitions
            if t["rule"] == "retransmit-ratio"
        ]
        assert "firing" in tos
        assert "resolved" in tos
        assert not cluster.engine.firing()
        assert rule.fired >= 1 and rule.resolved >= 1
