"""Tests for trace assembly (TraceStore / flight recorder / Chrome
export), histogram exemplars, the span-drop counter, and the label
cardinality guard."""

import json

import pytest

from repro import obs
from repro.obs.distributed import FlightReport, TraceStore
from repro.obs.metrics import (
    DEFAULT_LABEL_LIMIT,
    OVERFLOW_LABEL,
    Registry,
)
from repro.obs.tracectx import activate, make_context, seed_ids
from repro.obs.tracing import SpanRecorder


def _record_one_hop(recorder, ctx, names=("stage.a", "stage.b")):
    """One root span with children under *ctx*, as a process would."""
    with activate(ctx):
        with recorder.span(names[0], process="P"):
            for name in names[1:]:
                with recorder.span(name):
                    pass


class TestTraceStore:
    def test_add_recorder_and_trace_ids(self):
        seed_ids(1)
        recorder = SpanRecorder()
        first, second = make_context(), make_context()
        _record_one_hop(recorder, first)
        _record_one_hop(recorder, second)
        store = TraceStore()
        assert store.add_recorder("P", recorder) == 4
        ids = store.trace_ids()
        assert ids == [f"{first.trace_id:032x}", f"{second.trace_id:032x}"]

    def test_add_snapshot_round_trips_through_json(self):
        seed_ids(2)
        recorder = SpanRecorder()
        ctx = make_context()
        _record_one_hop(recorder, ctx)
        from repro.obs.export import build_snapshot

        snap = json.loads(json.dumps(build_snapshot(Registry(), recorder)))
        store = TraceStore()
        assert store.add_snapshot("node-1", snap) == 2
        tid = f"{ctx.trace_id:032x}"
        assert store.trace_ids() == [tid]
        assert {s.name for s in store.spans_for(tid)} == {"stage.a", "stage.b"}

    def test_process_attr_overrides_tag(self):
        seed_ids(3)
        recorder = SpanRecorder()
        _record_one_hop(recorder, make_context())
        store = TraceStore()
        store.add_recorder("fallback", recorder)
        (tid,) = store.trace_ids()
        roots = [s for s in store.spans_for(tid) if s.parent_id is None]
        assert roots[0].process == "P"  # from the span's process attr


class TestFlight:
    def _two_hop_store(self):
        """Sender and receiver recorders joined by the wire context."""
        seed_ids(4)
        sender, receiver = SpanRecorder(), SpanRecorder()
        ctx = make_context()
        with activate(ctx):
            with sender.span("echo.publish", process="A"):
                pass
        wire_ctx = ctx.child(ctx.span_id)  # what decode_block would yield
        wire_ctx.origin = False
        with activate(wire_ctx):
            with receiver.span("net.deliver", process="B"):
                with receiver.span("morph.process"):
                    pass
        store = TraceStore()
        store.add_recorder("A", sender)
        store.add_recorder("B", receiver)
        return store, ctx

    def test_hops_ordered_and_linked(self):
        store, ctx = self._two_hop_store()
        report = store.flight(f"{ctx.trace_id:032x}")
        assert isinstance(report, FlightReport)
        assert [hop.process for hop in report.hops] == ["A", "B"]
        publish, deliver = report.hops
        # the sender's root claimed the context's hop id; the receiver's
        # root carries it back as remote_parent — that is the join
        assert publish.root.dspan_id == f"{ctx.span_id:016x}"
        assert deliver.root.remote_parent == publish.root.dspan_id

    def test_breakdown_and_report_text(self):
        store, ctx = self._two_hop_store()
        report = store.flight(f"{ctx.trace_id:032x}")
        totals = report.breakdown()
        assert set(totals) == {"echo.publish", "net.deliver", "morph.process"}
        text = report.hop_report()
        assert "hop 0 [A] echo.publish" in text
        assert "hop 1 [B] net.deliver" in text
        assert "breakdown:" in text

    def test_error_rollup(self):
        seed_ids(5)
        recorder = SpanRecorder()
        ctx = make_context()
        with activate(ctx):
            with pytest.raises(ValueError):
                with recorder.span("morph.process", process="B"):
                    raise ValueError("boom")
        store = TraceStore()
        store.add_recorder("B", recorder)
        report = store.flight(f"{ctx.trace_id:032x}")
        assert not report.ok
        assert report.errors == [("B", "morph.process", "ValueError")]
        assert "!! ValueError" in report.hop_report()

    def test_flight_for_unknown_trace_is_empty(self):
        report = TraceStore().flight("0" * 32)
        assert report.hops == []
        assert "no spans recorded" in report.hop_report()


class TestChromeExport:
    def test_events_shape(self):
        store, ctx = TestFlight()._two_hop_store()
        doc = store.to_chrome(f"{ctx.trace_id:032x}")
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta} == {"A", "B"}
        assert len(slices) == 3
        for event in slices:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["args"]["trace_id"] == f"{ctx.trace_id:032x}"
        # distinct pids per process, matching their metadata events
        pids = {m["args"]["name"]: m["pid"] for m in meta}
        assert pids["A"] != pids["B"]
        json.dumps(doc)  # serializable

    def test_export_all_traces_when_unfiltered(self):
        seed_ids(6)
        recorder = SpanRecorder()
        _record_one_hop(recorder, make_context())
        _record_one_hop(recorder, make_context())
        store = TraceStore()
        store.add_recorder("P", recorder)
        doc = store.to_chrome()
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 4


class TestExemplars:
    def test_histogram_records_last_traceparent_per_bucket(self):
        registry = Registry()
        hist = registry.histogram("x.seconds", bounds=(1.0, 10.0))
        seed_ids(7)
        ctx = make_context()
        with activate(ctx):
            hist.observe(0.5)
            hist.observe(5.0)
        hist.observe(50.0)  # no active context: bucket keeps no exemplar
        pairs = hist.exemplars()
        assert dict((le, tp) for le, tp in pairs if tp) == {
            1.0: ctx.traceparent(),
            10.0: ctx.traceparent(),
        }
        snap = hist.snapshot()
        traced = [e for e in snap["exemplars"] if e["trace"]]
        assert len(traced) == 2

    def test_no_exemplars_key_when_none_recorded(self):
        hist = Registry().histogram("y.seconds")
        hist.observe(1.0)
        assert "exemplars" not in hist.snapshot()


class TestDropCounter:
    def test_eviction_counts_dropped_and_bumps_counter(self):
        obs.enable(capacity=4)
        recorder = obs.get_tracer()
        for i in range(7):
            with recorder.span(f"s{i}"):
                pass
        assert recorder.dropped == 3
        assert recorder.recorded_total == 7
        assert obs.get_registry().counter("obs.trace.dropped").value == 3
        snap = obs.snapshot()
        assert snap["spans"]["dropped"] == 3

    def test_no_drops_below_capacity(self):
        obs.enable(capacity=16)
        recorder = obs.get_tracer()
        with recorder.span("only"):
            pass
        assert recorder.dropped == 0
        assert obs.snapshot()["spans"]["dropped"] == 0


class TestLabelGuard:
    def test_values_within_limit_pass_through(self):
        registry = Registry()
        out = registry.bounded("m", limit=4, channel="a")
        assert out == {"channel": "a"}

    def test_overflow_collapses_and_counts(self):
        registry = Registry()
        for i in range(6):
            registry.bounded_counter("m", limit=4, channel=f"ch-{i}").inc()
        names = {
            labels_value
            for instrument in registry.instruments()
            if instrument.name == "m"
            for key, labels_value in instrument.labels
        }
        assert OVERFLOW_LABEL in names
        assert len([n for n in names if n != OVERFLOW_LABEL]) == 4
        overflow = registry.counter("obs.labels.overflow", metric="m")
        assert overflow.value == 2

    def test_seen_values_stay_stable_after_overflow(self):
        registry = Registry()
        registry.bounded("m", limit=1, k="first")
        assert registry.bounded("m", limit=1, k="second") == {
            "k": OVERFLOW_LABEL
        }
        # the value admitted before the limit keeps its identity
        assert registry.bounded("m", limit=1, k="first") == {"k": "first"}

    def test_default_limit_exists(self):
        assert DEFAULT_LABEL_LIMIT >= 8
