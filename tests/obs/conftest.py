"""Global-state hygiene: every obs test leaves observability disabled
with a pristine registry/tracer, so instrumented hot paths elsewhere in
the suite keep seeing the zero-cost disabled configuration."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable(reset=True)
    yield
    obs.disable(reset=True)
