"""Telemetry plane unit tests: mergeable registry deltas, fixed-memory
time series, the agent's wire records, the collector's exactly-once
aggregation, and the SLO state machine."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ObsError
from repro.obs.agent import TelemetryAgent
from repro.obs.collector import TelemetryCollector, validate_cluster_state
from repro.obs.metrics import (
    OVERFLOW_LABEL,
    Registry,
    merge_histogram_snapshots,
    merge_snapshot_entries,
    percentile_from_buckets,
)
from repro.obs.protocol import (
    TELEMETRY_V1,
    TELEMETRY_V2,
    TELEMETRY_V2_TO_V1,
)
from repro.obs.slo import SloEngine
from repro.obs.timeseries import SeriesStore, TimeSeries

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "docs", "cluster_state.schema.json",
)


def _capture():
    """A publish callable that stashes (fmt, record) pairs."""
    published = []
    return published, lambda fmt, record: published.append((fmt, record))


class TestDiffSnapshot:
    def test_counter_delta_and_zero_omission(self):
        registry = Registry()
        registry.counter("a").inc(5)
        registry.counter("b").inc(2)
        prev = registry.snapshot()
        registry.counter("a").inc(3)
        delta = registry.diff_snapshot(prev)
        assert delta["a"]["value"] == 3 and not delta["a"]["reset"]
        assert "b" not in delta  # unchanged counters don't ride

    def test_counter_reset_is_flagged_with_full_value(self):
        registry = Registry()
        registry.counter("a").inc(10)
        prev = registry.snapshot()
        fresh = Registry()
        fresh.counter("a").inc(4)
        delta = fresh.diff_snapshot(prev)
        assert delta["a"]["value"] == 4
        assert delta["a"]["reset"] is True

    def test_gauge_only_when_changed(self):
        registry = Registry()
        registry.gauge("depth").set(7)
        prev = registry.snapshot()
        assert registry.diff_snapshot(prev) == {}
        registry.gauge("depth").set(9)
        delta = registry.diff_snapshot(prev)
        assert delta["depth"]["value"] == 9

    def test_histogram_delta_recomputes_statistics(self):
        registry = Registry()
        histogram = registry.histogram("lat", bounds=[1.0, 10.0])
        histogram.observe(0.5)
        prev = registry.snapshot()
        histogram.observe(5.0)
        histogram.observe(5.0)
        delta = registry.diff_snapshot(prev)["lat"]
        assert delta["count"] == 2
        assert delta["sum"] == pytest.approx(10.0)
        assert delta["mean"] == pytest.approx(5.0)
        # the delta's percentiles come from the delta buckets, not the
        # absolute ones: both new observations sit in (1.0, 10.0]
        assert 1.0 < delta["p50"] <= 10.0

    def test_explicit_current_snapshot(self):
        registry = Registry()
        registry.counter("a").inc(1)
        prev = registry.snapshot()
        registry.counter("a").inc(1)
        current = registry.snapshot()
        registry.counter("a").inc(100)  # after the captured current
        delta = registry.diff_snapshot(prev, current=current)
        assert delta["a"]["value"] == 1


class TestHistogramMerge:
    def test_integer_bucket_addition_no_drift(self):
        registry = Registry()
        histogram = registry.histogram("h", bounds=[0.1, 0.2, 0.3])
        for _ in range(1000):
            histogram.observe(0.15)
        snap = registry.snapshot()["h"]
        merged = snap
        for _ in range(500):
            merged = merge_histogram_snapshots(merged, snap)
        counts = [b["count"] for b in merged["buckets"]]
        assert counts == [0, 501 * 1000, 0, 0]
        assert merged["count"] == 501 * 1000

    def test_bound_mismatch_rejected(self):
        registry_a, registry_b = Registry(), Registry()
        registry_a.histogram("h", bounds=[1.0]).observe(0.5)
        registry_b.histogram("h", bounds=[2.0]).observe(0.5)
        entry_a = registry_a.snapshot()["h"]
        entry_b = registry_b.snapshot()["h"]
        with pytest.raises(ObsError, match="different bounds"):
            merge_histogram_snapshots(entry_a, entry_b)

    def test_exemplars_carried_from_newest(self):
        def snap(trace):
            return {
                "count": 1, "sum": 0.5, "min": 0.5, "max": 0.5,
                "buckets": [{"le": 1.0, "count": 1},
                            {"le": None, "count": 0}],
                "exemplars": [{"le": 1.0, "trace": trace}],
            }

        merged = merge_histogram_snapshots(snap("old"), snap("new"))
        assert merged["exemplars"] == [{"le": 1.0, "trace": "new"}]

    def test_merge_snapshot_entries_dispatch(self):
        counter = {"kind": "counter", "value": 3}
        assert merge_snapshot_entries(counter, counter)["value"] == 6
        gauge_old = {"kind": "gauge", "value": 1.0}
        gauge_new = {"kind": "gauge", "value": 2.0}
        assert merge_snapshot_entries(gauge_old, gauge_new)["value"] == 2.0


class TestPercentileFromBuckets:
    def test_interpolation_and_overflow_cap(self):
        buckets = [
            {"le": 1.0, "count": 50},
            {"le": 2.0, "count": 50},
            {"le": None, "count": 10},
        ]
        p50 = percentile_from_buckets(buckets, 0.5)
        assert 0.0 < p50 <= 2.0
        # the p99 rank lands in the overflow bucket, whose upper edge is
        # capped at the observed maximum
        p99 = percentile_from_buckets(buckets, 0.99, maximum=7.5)
        assert 2.0 < p99 <= 7.5


class TestTimeSeries:
    def test_counter_rate_window(self):
        series = TimeSeries("counter", capacity=16, rollups=())
        for t in range(10):
            series.ingest_delta(float(t), 5)
        assert series.total == 50
        assert series.rate(4.0, 9.0) == pytest.approx(20 / 4.0)

    def test_absolute_ingest_detects_monotonic_reset(self):
        series = TimeSeries("counter", capacity=8, rollups=())
        series.ingest(0.0, 100)
        series.ingest(1.0, 120)
        series.ingest(2.0, 15)  # restarted source
        assert series.resets == 1
        assert series.total == 100 + 20 + 15

    def test_rollup_ladder_preserves_counter_mass(self):
        series = TimeSeries("counter", capacity=4, rollups=((10.0, 8),))
        for t in range(40):
            series.ingest_delta(float(t), 1)
        assert series.total == 40
        # mass retained in rings (fine + rollup + open bucket) stays
        # queryable: the full window sums to everything not yet evicted
        # from the coarse ring
        assert series.sum_over(40.0, 39.0) <= 40
        assert series.sum_over(40.0, 39.0) >= 4  # fine ring alone
        assert len(series.points(1)) <= 8

    def test_histogram_window_percentile(self):
        registry = Registry()
        histogram = registry.histogram("h", bounds=[0.1, 1.0, 10.0])
        series = TimeSeries("histogram", capacity=8, rollups=())
        histogram.observe(0.05)
        series.ingest(0.0, registry.snapshot()["h"])
        histogram.observe(5.0)
        histogram.observe(5.0)
        series.ingest(1.0, registry.snapshot()["h"])
        # window covering only the second delta: both observations in
        # the (1.0, 10.0] bucket
        p50 = series.percentile(0.5, 0.9, 1.0)
        assert 1.0 < p50 <= 10.0

    def test_gauge_latest_wins(self):
        series = TimeSeries("gauge", capacity=4, rollups=())
        series.ingest(0.0, 5.0)
        series.ingest(1.0, 3.0)
        assert series.total == 3.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObsError, match="kind"):
            TimeSeries("timer")


class TestSeriesStore:
    def test_overflow_collapses_to_shared_series(self):
        store = SeriesStore(limit=2, capacity=4, rollups=())
        store.series("a", "counter").ingest_delta(0.0, 1)
        store.series("b", "counter").ingest_delta(0.0, 1)
        overflow_1 = store.series("c", "counter")
        overflow_2 = store.series("d", "counter")
        assert overflow_1 is overflow_2
        assert store.overflowed == 2
        assert (OVERFLOW_LABEL, "counter") in store


class TestAgent:
    def test_record_shape_and_sequence(self):
        registry = Registry()
        published, publish = _capture()
        agent = TelemetryAgent(publish, "proc", worker="w1",
                               registry=registry, boot=7)
        registry.counter("a").inc(3)
        record = agent.scrape(now=1.0)
        assert record["process"] == "proc" and record["worker"] == "w1"
        assert record["boot"] == 7 and record["seq"] == 1
        assert json.loads(record["metrics"])["a"]["value"] == 3
        registry.counter("a").inc(2)
        record = agent.scrape(now=2.0)
        assert record["seq"] == 2
        assert record["interval"] == pytest.approx(1.0)
        assert json.loads(record["metrics"])["a"]["value"] == 2
        assert [fmt for fmt, _ in published] == [TELEMETRY_V2, TELEMETRY_V2]

    def test_idle_scrape_ships_empty_heartbeat(self):
        registry = Registry()
        _, publish = _capture()
        agent = TelemetryAgent(publish, "proc", registry=registry)
        record = agent.scrape(now=1.0)
        assert json.loads(record["metrics"]) == {}

    def test_cardinality_bound_collapses_counters(self):
        registry = Registry()
        _, publish = _capture()
        agent = TelemetryAgent(publish, "proc", registry=registry,
                               max_metrics=3)
        for index in range(6):
            registry.counter(f"metric.{index:02d}").inc(index + 1)
        registry.gauge("z.gauge").set(1.0)  # sorts last -> dropped
        record = agent.scrape(now=1.0)
        delta = json.loads(record["metrics"])
        kept = [k for k in delta if k != OVERFLOW_LABEL]
        assert len(kept) == 3
        # the three overflow counters (4+5+6) collapse, totals stay exact
        assert delta[OVERFLOW_LABEL]["value"] == 4 + 5 + 6
        assert record["dropped"] == 1

    def test_maybe_scrape_honors_interval(self):
        registry = Registry()
        published, publish = _capture()
        agent = TelemetryAgent(publish, "proc", registry=registry,
                               interval=1.0)
        assert agent.maybe_scrape(now=0.0) is not None
        assert agent.maybe_scrape(now=0.5) is None
        assert agent.maybe_scrape(now=1.0) is not None
        assert len(published) == 2

    def test_v2_to_v1_retro_transform(self):
        from repro.morph.transform import Transformation

        record = TELEMETRY_V2.make_record(
            process="p", worker="w", boot=1, seq=2, time=3.0,
            interval=1.0, dropped=0, metrics='{"a":{"value":1}}',
        )
        old = Transformation(TELEMETRY_V2_TO_V1).apply(record)
        assert old["process"] == "p" and old["seq"] == 2
        assert old["metrics"] == '{"a":{"value":1}}'
        assert "interval" not in TELEMETRY_V1.field_names()


class TestCollector:
    def _record(self, seq, metrics, boot=1, process="p", time=None):
        return TELEMETRY_V2.make_record(
            process=process, worker="w1", boot=boot, seq=seq,
            time=float(seq) if time is None else time, interval=1.0,
            dropped=0,
            metrics=json.dumps(metrics),
        )

    def test_duplicate_deltas_are_idempotent(self):
        collector = TelemetryCollector()
        record = self._record(1, {"a": {"kind": "counter", "value": 5}})
        assert collector.ingest(record)
        assert not collector.ingest(record)  # the retransmit
        assert collector.total("a") == 5
        assert collector.sources["p"].duplicates == 1

    def test_out_of_order_admission(self):
        collector = TelemetryCollector()
        collector.ingest(self._record(2, {"a": {"kind": "counter",
                                               "value": 3}}))
        collector.ingest(self._record(1, {"a": {"kind": "counter",
                                               "value": 4}}))
        assert not collector.ingest(
            self._record(1, {"a": {"kind": "counter", "value": 4}})
        )
        assert collector.total("a") == 7

    def test_new_boot_opens_fresh_sequence_space(self):
        collector = TelemetryCollector()
        collector.ingest(self._record(1, {"a": {"kind": "counter",
                                               "value": 5}}, boot=1))
        # restart: same process, new boot, seq restarts at 1
        assert collector.ingest(
            self._record(1, {"a": {"kind": "counter", "value": 2,
                                   "reset": True}}, boot=2)
        )
        assert collector.total("a") == 7
        assert collector.sources["p"].boot == 2

    def test_stale_after_silence_and_recovery(self):
        collector = TelemetryCollector(stale_after=2.0)
        collector.ingest(self._record(1, {}), now=0.0)
        assert collector.check_stale(now=1.0) == []
        assert collector.check_stale(now=3.0) == ["p"]
        assert collector.sources["p"].stale
        collector.ingest(self._record(2, {}), now=4.0)
        assert not collector.sources["p"].stale

    def test_cluster_state_matches_committed_schema(self):
        collector = TelemetryCollector()
        registry = Registry()
        registry.counter("echo.events", channel="ch-1").inc(4)
        registry.gauge("depth").set(2.0)
        registry.histogram("lat", bounds=[1.0]).observe(0.5)
        collector.ingest(self._record(
            1, registry.diff_snapshot(None)
        ))
        state = collector.cluster_state(now=5.0)
        with open(SCHEMA_PATH, "r", encoding="utf-8") as handle:
            schema = json.load(handle)
        document = json.loads(json.dumps(state))
        assert validate_cluster_state(document, schema) == []
        assert state["channels"]["ch-1"]["echo.events"] == 4

    def test_counters_sum_across_sources(self):
        collector = TelemetryCollector()
        metrics = {'echo.events{channel="c"}': {
            "kind": "counter", "value": 3,
            "labels": {"channel": "c"},
        }}
        collector.ingest(self._record(1, metrics, process="p1"))
        collector.ingest(self._record(1, metrics, process="p2"))
        state = collector.cluster_state(now=2.0)
        assert state["channels"]["c"]["echo.events"] == 6

    def test_validate_rejects_bad_document(self):
        with open(SCHEMA_PATH, "r", encoding="utf-8") as handle:
            schema = json.load(handle)
        bad = {"schema": "repro.telemetry/1", "time": "yesterday"}
        violations = validate_cluster_state(bad, schema)
        assert any("time" in v for v in violations)
        assert any("missing required" in v for v in violations)


class _Clock:
    def __init__(self):
        self.now = 0.0


class TestSloEngine:
    def _collector_with_ratio(self, clock, retries, sends, at=0.0):
        collector = TelemetryCollector(clock=clock)
        record = TELEMETRY_V2.make_record(
            process="p", worker="w", boot=1, seq=int(at) + 1, time=at,
            interval=1.0, dropped=0,
            metrics=json.dumps({
                "net.reliable.retries": {"kind": "counter",
                                         "value": retries},
                "net.reliable.sends": {"kind": "counter", "value": sends},
            }),
        )
        collector.ingest(record, now=at)
        return collector

    def test_threshold_fire_and_resolve_with_hysteresis(self):
        clock = _Clock()
        collector = TelemetryCollector(clock=clock)
        engine = SloEngine(collector, clock=clock)
        rule = engine.add({
            "name": "retransmit-ratio",
            "signal": {"kind": "ratio",
                       "numerator": "net.reliable.retries",
                       "denominator": "net.reliable.sends",
                       "window": 10.0},
            "op": ">", "threshold": 0.2,
            "for": 1.0, "resolve_for": 1.0,
        })

        def feed(seq, retries, sends):
            collector.ingest(TELEMETRY_V2.make_record(
                process="p", worker="w", boot=1, seq=seq, time=clock.now,
                interval=1.0, dropped=0,
                metrics=json.dumps({
                    "net.reliable.retries": {"kind": "counter",
                                             "value": retries},
                    "net.reliable.sends": {"kind": "counter",
                                           "value": sends},
                }),
            ))

        feed(1, 8, 10)  # 80% — breached
        assert engine.evaluate(0.0) == []  # pending, not yet fired
        clock.now = 1.5
        feed(2, 8, 10)
        transitions = engine.evaluate(1.5)
        assert [t["to"] for t in transitions] == ["firing"]
        assert rule.firing and engine.firing() == ["retransmit-ratio"]
        # healthy traffic pushes the windowed ratio under threshold
        clock.now = 12.0
        feed(3, 0, 100)
        assert engine.evaluate(12.0) == []  # resolving, hysteresis holds
        clock.now = 13.5
        transitions = engine.evaluate(13.5)
        assert [t["to"] for t in transitions] == ["resolved"]
        assert not rule.firing
        assert rule.fired == 1 and rule.resolved == 1

    def test_burn_rate_signal(self):
        clock = _Clock()
        collector = self._collector_with_ratio(clock, retries=0, sends=0)
        engine = SloEngine(collector, clock=clock)
        engine.add({
            "name": "error-budget",
            "signal": {"kind": "burn_rate", "bad": "app.errors",
                       "total": "app.requests", "objective": 0.99,
                       "window": 10.0},
            "threshold": 5.0, "for": 0.0, "resolve_for": 0.0,
        })
        collector.ingest(TELEMETRY_V2.make_record(
            process="q", worker="w", boot=1, seq=1, time=0.0, interval=1.0,
            dropped=0,
            metrics=json.dumps({
                "app.errors": {"kind": "counter", "value": 10},
                "app.requests": {"kind": "counter", "value": 100},
            }),
        ), now=0.0)
        # error ratio 0.1 against a 1% budget = 10x burn > 5x threshold
        transitions = engine.evaluate(0.0)
        assert [t["to"] for t in transitions] == ["firing"]

    def test_unknown_signal_kind_rejected(self):
        engine = SloEngine(TelemetryCollector(), clock=_Clock())
        engine.add({"name": "r", "signal": {"kind": "nope"},
                    "threshold": 1.0})
        with pytest.raises(ObsError, match="signal kind"):
            engine.evaluate(0.0)

    def test_gauge_aggregations(self):
        clock = _Clock()
        collector = TelemetryCollector(clock=clock)
        for process, depth in (("p1", 4.0), ("p2", 6.0)):
            collector.ingest(TELEMETRY_V2.make_record(
                process=process, worker="w", boot=1, seq=1, time=0.0,
                interval=1.0, dropped=0,
                metrics=json.dumps({
                    "queue.depth": {"kind": "gauge", "value": depth},
                }),
            ), now=0.0)
        engine = SloEngine(collector, clock=clock)
        engine.add({"name": "depth-max",
                    "signal": {"kind": "gauge", "metric": "queue.depth",
                               "agg": "max"},
                    "threshold": 5.0, "for": 0.0})
        transitions = engine.evaluate(0.0)
        assert [t["to"] for t in transitions] == ["firing"]
