"""Unit tests for the trace-context primitive (repro.obs.tracectx)."""

import threading

import pytest

from repro.errors import DecodeError
from repro.obs import tracectx
from repro.obs.tracectx import (
    TRACE_BLOCK_SIZE,
    TraceContext,
    activate,
    current,
    decode_block,
    encode_block,
    make_context,
    seed_ids,
)


class TestCodec:
    def test_roundtrip(self):
        ctx = TraceContext(trace_id=0xABCDEF0123456789FEDCBA, span_id=0x1234,
                           sampled=True)
        block = encode_block(ctx)
        assert len(block) == TRACE_BLOCK_SIZE == 26
        back = decode_block(block)
        assert back == ctx
        assert back.origin is False

    def test_unsampled_roundtrip(self):
        ctx = TraceContext(1, 2, sampled=False)
        assert decode_block(encode_block(ctx)).sampled is False

    def test_decode_at_offset(self):
        ctx = TraceContext(7, 9)
        data = b"\xff" * 5 + encode_block(ctx)
        assert decode_block(data, 5) == ctx

    def test_truncated_block_raises(self):
        block = encode_block(TraceContext(1, 2))
        with pytest.raises(DecodeError, match="truncated trace-context"):
            decode_block(block[:-1])

    def test_unknown_version_raises(self):
        block = bytearray(encode_block(TraceContext(1, 2)))
        block[0] = 99
        with pytest.raises(DecodeError, match="version"):
            decode_block(bytes(block))

    def test_traceparent_format(self):
        ctx = TraceContext(trace_id=0x0AF7651916CD43DD8448EB211C80319C,
                           span_id=0x00F067AA0BA902B7)
        assert ctx.traceparent() == (
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01"
        )
        ctx.sampled = False
        assert ctx.traceparent().endswith("-00")


class TestIds:
    def test_seeded_ids_are_deterministic(self):
        seed_ids(123)
        first = (tracectx.new_trace_id(), tracectx.new_span_id())
        seed_ids(123)
        assert (tracectx.new_trace_id(), tracectx.new_span_id()) == first

    def test_make_context_is_origin_and_sampled(self):
        ctx = make_context()
        assert ctx.origin is True
        assert ctx.sampled is True
        assert ctx.trace_id != 0
        assert ctx.span_id != 0

    def test_child_keeps_trace_id(self):
        ctx = make_context()
        child = ctx.child(span_id=42)
        assert child.trace_id == ctx.trace_id
        assert child.span_id == 42
        assert child.origin is True


class TestActivation:
    def test_current_defaults_to_none(self):
        assert current() is None

    def test_activate_installs_and_restores(self):
        ctx = make_context()
        with activate(ctx):
            assert current() is ctx
        assert current() is None

    def test_activate_nests(self):
        outer, inner = make_context(), make_context()
        with activate(outer):
            with activate(inner):
                assert current() is inner
            assert current() is outer

    def test_activate_none_is_passthrough(self):
        ctx = make_context()
        with activate(ctx):
            with activate(None):
                assert current() is ctx
            assert current() is ctx

    def test_context_is_thread_local(self):
        ctx = make_context()
        seen = []
        with activate(ctx):
            thread = threading.Thread(target=lambda: seen.append(current()))
            thread.start()
            thread.join()
        assert seen == [None]
