"""Trace-continuity tests (ISSUE 5 satellites + acceptance).

A trace must survive everything the middleware does to a message:
retransmission after loss, dead-letter parking and later retry, and the
fused-vs-staged execution choice.  The final class is the PR's
acceptance scenario: a two-process morphing chain over a 10% lossy
fabric where every delivered message yields exactly one trace spanning
publish → (retransmits) → decode → transform chain → dispatch.
"""

import pytest

from repro import obs
from repro.echo.process import EChoProcess
from repro.morph.receiver import MorphReceiver
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.obs.distributed import TraceStore
from repro.obs.tracectx import TraceContext, make_context, seed_ids
from repro.pbio.buffer import attach_trace
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry, TransformSpec

EVT_V1 = IOFormat(
    "CtEvt",
    [IOField("n", "integer"), IOField("extra", "integer")],
    version="1.0",
)
EVT_V0 = IOFormat("CtEvt", [IOField("n", "integer")], version="0.0")
V1_TO_V0 = TransformSpec(
    source=EVT_V1, target=EVT_V0, code="old.n = new.n;",
    description="CtEvt 1.0 -> 0.0",
)


def _store_from_tracer() -> TraceStore:
    store = TraceStore()
    store.add_recorder("local", obs.get_tracer())
    return store


def _traced_wire(registry: FormatRegistry, ctx: TraceContext) -> bytes:
    wire = PBIOContext(registry).encode(EVT_V1, EVT_V1.make_record(n=5, extra=9))
    return attach_trace(wire, ctx)


class TestReliableRetransmitContinuity:
    def test_retransmits_share_the_original_trace(self):
        """Drop enough frames that some event needs a retransmission;
        its retransmit spans must carry the same trace id as its
        publish span."""
        registry = FormatRegistry()
        registry.register(EVT_V0)
        obs.enable(capacity=16384)
        seed_ids(11)
        net = Network(
            seed=3, default_link=LinkSpec(latency=0.001, loss_rate=0.25)
        )
        a = EChoProcess(net, "A", registry, reliable=True)
        b = EChoProcess(net, "B", registry, reliable=True)
        a.create_channel("ch")
        b.open_channel("ch", "A", as_sink=True)
        net.run()
        got = []
        b.subscribe("ch", EVT_V0, got.append)
        for i in range(20):
            a.submit("ch", EVT_V0, EVT_V0.make_record(n=i))
        net.run()
        assert len(got) == 20
        store = _store_from_tracer()
        retransmitted = [
            tid for tid in store.trace_ids()
            if store.flight(tid).retransmits
        ]
        assert retransmitted, "seed produced no retransmissions — retune"
        for tid in retransmitted:
            report = store.flight(tid)
            names = set(report.span_names())
            # the retransmit belongs to the same trace as the original
            # publish and the eventual delivery
            assert "echo.publish" in names
            assert "net.reliable.retransmit" in names
            assert "morph.dispatch" in names
            assert all(s.trace_id == tid for s in report.spans)


class TestDlqRetryContinuity:
    def test_retry_dead_letters_resumes_the_trace(self):
        """A message dead-lettered for want of a handler re-joins its
        original trace when retry_dead_letters replays it."""
        registry = FormatRegistry()
        registry.register(EVT_V1)
        receiver = MorphReceiver(registry, contain_failures=True)
        obs.enable(capacity=4096)
        seed_ids(12)
        ctx = make_context()
        ctx.origin = False  # as if decoded off the wire
        wire = _traced_wire(registry, ctx)
        assert receiver.process(wire) is None
        assert len(receiver.dead_letters) == 1
        # the cause is fixed: a handler appears
        delivered = []
        receiver.register_handler(EVT_V1, delivered.append)
        succeeded, requeued = receiver.retry_dead_letters()
        assert (succeeded, requeued) == (1, 0)
        assert len(delivered) == 1
        tid = f"{ctx.trace_id:032x}"
        store = _store_from_tracer()
        assert store.trace_ids() == [tid]
        report = store.flight(tid)
        # two morph.process roots — the failed pass and the successful
        # retry — both on the same trace, the retry reaching dispatch
        roots = [hop.root.name for hop in report.hops]
        assert roots.count("morph.process") == 2
        assert "morph.dispatch" in set(report.span_names())
        assert any(hop.errors for hop in report.hops)

    def test_parked_format_replay_resumes_the_trace(self):
        """An event parked while its format is fetched from the server
        fleet delivers under its original trace id."""
        from repro.pbio.server import FormatServer

        server_registry = FormatRegistry()
        server_registry.register(EVT_V1)
        server_registry.register(EVT_V0)
        server_registry.register_transform(V1_TO_V0)
        obs.enable(capacity=8192)
        seed_ids(13)
        net = Network(seed=4, default_link=LinkSpec(latency=0.001))
        FormatServer(net, "fs", registry=server_registry)
        writer = EChoProcess(net, "W", version="1.0", format_servers=["fs"])
        reader = EChoProcess(net, "R", version="0.0", format_servers=["fs"])
        # the writer knows V1 + the transform; the reader starts blank
        writer.registry.register(EVT_V1)
        writer.registry.register_transform(V1_TO_V0)
        writer.resolver.publish()
        reader.registry.register(EVT_V0)
        writer.create_channel("ch")
        reader.open_channel("ch", "W", as_sink=True)
        net.run()
        got = []
        reader.subscribe("ch", EVT_V0, got.append)
        writer.submit("ch", EVT_V1, EVT_V1.make_record(n=3, extra=4))
        net.run()
        assert len(got) == 1
        assert reader.parked >= 1
        store = _store_from_tracer()
        ids = store.trace_ids()
        assert len(ids) == 1
        names = set(store.flight(ids[0]).span_names())
        assert "echo.publish" in names
        assert "morph.dispatch" in names


class TestFusedStagedParity:
    def _run(self, use_fusion: bool):
        registry = FormatRegistry()
        registry.register(EVT_V1)
        registry.register_transform(V1_TO_V0)
        receiver = MorphReceiver(registry, use_fusion=use_fusion)
        delivered = []
        receiver.register_handler(EVT_V0, delivered.append)
        obs.disable(reset=True)
        obs.enable(capacity=4096)
        seed_ids(14)
        ctx = make_context()
        ctx.origin = False
        receiver.process(_traced_wire(registry, ctx))
        assert len(delivered) == 1
        store = _store_from_tracer()
        tid = f"{ctx.trace_id:032x}"
        report = store.flight(tid)
        applied = obs.get_registry().counter(
            "morph.transform.applied", format="CtEvt"
        ).value
        dispatched = obs.get_registry().counter(
            "morph.dispatch.delivered", format="CtEvt"
        ).value
        obs.disable(reset=True)
        return report, applied, dispatched, delivered[0]

    def test_span_trees_agree_on_the_trace_story(self):
        fused, fused_applied, fused_disp, fused_rec = self._run(True)
        staged, staged_applied, staged_disp, staged_rec = self._run(False)
        assert fused_rec == staged_rec
        # identical labeled counters on both execution paths
        assert (fused_applied, fused_disp) == (staged_applied, staged_disp) == (1, 1)
        for report in (fused, staged):
            assert len(report.hops) == 1
            assert report.hops[0].root.name == "morph.process"
            names = set(report.span_names())
            assert "morph.dispatch" in names
            # transform evidence: the fused routine or the staged chain
            assert "morph.fused" in names or "morph.transform" in names
            assert all(
                s.trace_id == report.trace_id for s in report.spans
            )
            # receive-side root links back to the sender's hop id
            assert report.hops[0].root.remote_parent is not None


class TestEndToEndAcceptance:
    def test_lossy_two_process_chain_one_trace_per_message(self):
        """The acceptance scenario: V1 writer → V0 sink over a 10% lossy
        link with reliable endpoints.  Every delivered message produced
        exactly one trace whose merged timeline spans publish →
        (retransmits) → decode → transform → dispatch."""
        registry = FormatRegistry()
        registry.register(EVT_V1)
        registry.register(EVT_V0)
        registry.register_transform(V1_TO_V0)
        obs.enable(capacity=65536)
        seed_ids(15)
        net = Network(
            seed=5, default_link=LinkSpec(latency=0.001, loss_rate=0.10)
        )
        writer = EChoProcess(net, "writer", registry, version="1.0",
                             reliable=True)
        sink = EChoProcess(net, "sink", registry, version="0.0",
                           reliable=True)
        writer.create_channel("ch")
        sink.open_channel("ch", "writer", as_sink=True)
        net.run()
        got = []
        sink.subscribe("ch", EVT_V0, got.append)
        messages = 25
        for i in range(messages):
            writer.submit("ch", EVT_V1, EVT_V1.make_record(n=i, extra=i * 2))
        net.run()
        assert len(got) == messages

        store = _store_from_tracer()
        ids = store.trace_ids()
        assert len(ids) == messages
        total_retransmits = 0
        for tid in ids:
            report = store.flight(tid)
            assert report.ok
            names = set(report.span_names())
            for required in ("echo.publish", "net.deliver", "morph.process",
                             "morph.dispatch"):
                assert required in names, (tid, sorted(names))
            assert "morph.fused" in names or "morph.transform" in names
            # publish is always the first hop, on the writer
            assert report.hops[0].root.name == "echo.publish"
            assert report.hops[0].process == "writer"
            total_retransmits += report.retransmits
        assert total_retransmits > 0, "10% loss produced no retransmits"
        # nothing fell out of the ring: the traces above are complete
        assert obs.snapshot()["spans"]["dropped"] == 0
