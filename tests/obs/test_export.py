"""Exporter tests: JSON snapshot, Prometheus text format, text tables."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    build_snapshot,
    render_text,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import Registry
from repro.obs.tracing import NullRecorder, SpanRecorder


@pytest.fixture
def populated():
    registry = Registry()
    registry.counter("pbio.decode.messages", path="specialized").inc(3)
    registry.gauge("net.transport.queue_depth").set(2.0)
    hist = registry.histogram("pbio.decode.seconds", bounds=(0.001, 0.01))
    hist.observe(0.0005)
    hist.observe(0.5)
    tracer = SpanRecorder()
    with tracer.span("morph.process"):
        with tracer.span("pbio.decode", format="Reading"):
            pass
    return registry, tracer


def test_build_snapshot_shape(populated):
    registry, tracer = populated
    snap = build_snapshot(registry, tracer)
    metrics = snap["metrics"]
    assert metrics['pbio.decode.messages{path="specialized"}']["value"] == 3
    hist = metrics["pbio.decode.seconds"]
    assert hist["count"] == 2
    assert hist["buckets"][-1] == {"le": None, "count": 1}
    spans = snap["spans"]
    assert spans["buffered"] == 2
    assert spans["recorded_total"] == 2
    (root,) = spans["tree"]
    assert root["name"] == "morph.process"
    assert root["children"][0]["name"] == "pbio.decode"
    assert root["children"][0]["attrs"] == {"format": "Reading"}


def test_to_json_round_trips(populated):
    registry, tracer = populated
    snap = json.loads(to_json(registry, tracer))
    assert snap == build_snapshot(registry, tracer)


def test_snapshot_with_null_recorder_has_empty_spans():
    snap = build_snapshot(Registry(), NullRecorder())
    assert snap["spans"] == {
        "capacity": 0, "recorded_total": 0, "buffered": 0, "dropped": 0,
        "tree": [],
    }


def test_prometheus_counters_and_gauges(populated):
    registry, _ = populated
    text = to_prometheus(registry)
    assert "# TYPE pbio_decode_messages counter" in text
    assert 'pbio_decode_messages{path="specialized"} 3' in text
    assert "# TYPE net_transport_queue_depth gauge" in text
    assert "net_transport_queue_depth 2" in text
    assert text.endswith("\n")


def test_prometheus_histogram_series_are_cumulative(populated):
    registry, _ = populated
    lines = to_prometheus(registry).splitlines()
    assert "# TYPE pbio_decode_seconds histogram" in lines
    assert 'pbio_decode_seconds_bucket{le="0.001"} 1' in lines
    assert 'pbio_decode_seconds_bucket{le="0.01"} 1' in lines
    assert 'pbio_decode_seconds_bucket{le="+Inf"} 2' in lines
    assert "pbio_decode_seconds_count 2" in lines
    assert any(l.startswith("pbio_decode_seconds_sum ") for l in lines)


def test_prometheus_empty_registry_is_empty_string():
    assert to_prometheus(Registry()) == ""


def test_render_text_sections(populated):
    registry, tracer = populated
    text = render_text(registry, tracer)
    assert "== metrics ==" in text
    assert "== histograms ==" in text
    assert "== spans ==" in text
    assert 'pbio.decode.messages{path="specialized"}' in text
    # nested span is indented under its parent
    assert "morph.process" in text
    assert "  pbio.decode" in text


def test_render_text_empty():
    assert render_text(Registry(), NullRecorder()) == (
        "(no observability data recorded)"
    )
