"""Thread-safety: hammer a registry and a recorder from worker threads."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import Registry
from repro.obs.tracing import SpanRecorder

WORKERS = 8
ITERATIONS = 2_000


def test_counter_increments_are_not_lost():
    registry = Registry()

    def hammer(worker: int) -> None:
        for _ in range(ITERATIONS):
            registry.counter("shared").inc()
            registry.counter("per_worker", worker=worker).inc()

    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        list(pool.map(hammer, range(WORKERS)))

    assert registry.counter("shared").value == WORKERS * ITERATIONS
    for worker in range(WORKERS):
        assert registry.counter("per_worker", worker=worker).value == ITERATIONS


def test_histogram_observations_are_not_lost():
    registry = Registry()

    def hammer(worker: int) -> None:
        hist = registry.histogram("latency", bounds=(1.0, 2.0, 4.0))
        for i in range(ITERATIONS):
            hist.observe((i % 5) + 0.5)

    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        list(pool.map(hammer, range(WORKERS)))

    hist = registry.histogram("latency")
    total = WORKERS * ITERATIONS
    assert hist.count == total
    # each worker observes 0.5, 1.5, 2.5, 3.5, 4.5 cyclically
    assert hist.sum == pytest.approx(total * 2.5)
    snap = hist.snapshot()
    assert sum(b["count"] for b in snap["buckets"]) == total


def test_get_or_create_race_returns_one_instrument():
    registry = Registry()

    def create(_: int):
        return registry.counter("contested")

    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        instruments = list(pool.map(create, range(64)))

    assert len({id(i) for i in instruments}) == 1
    assert len(registry) == 1


def test_span_recorder_keeps_per_thread_nesting():
    recorder = SpanRecorder(capacity=100_000)
    spans_per_worker = 500

    def hammer(worker: int) -> None:
        for i in range(spans_per_worker):
            with recorder.span("outer", worker=worker):
                with recorder.span("inner", worker=worker):
                    pass

    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        list(pool.map(hammer, range(WORKERS)))

    spans = recorder.spans()
    assert len(spans) == WORKERS * spans_per_worker * 2
    assert recorder.recorded_total == len(spans)
    by_id = {s.span_id: s for s in spans}
    assert len(by_id) == len(spans)  # ids unique across threads
    for span in spans:
        if span.name == "inner":
            parent = by_id[span.parent_id]
            # nesting never crosses threads: the parent is this
            # worker's own outer span
            assert parent.name == "outer"
            assert parent.attrs["worker"] == span.attrs["worker"]
        else:
            assert span.parent_id is None
