"""Unit tests for the B2B formats and broker-supplied transforms."""

import pytest

from repro.b2b.formats import (
    ORDER_TRANSFORM,
    RETAILER_PO,
    RETAILER_STATUS,
    STATUS_TRANSFORM,
    SUPPLIER_PO,
    SUPPLIER_STATUS,
    register_b2b,
)
from repro.morph.diff import diff, mismatch_ratio
from repro.morph.maxmatch import (
    DEFAULT_DIFF_THRESHOLD,
    DEFAULT_MISMATCH_THRESHOLD,
    max_match,
)
from repro.morph.transform import Transformation
from repro.pbio.registry import FormatRegistry


class TestOrderTransform:
    def run(self, **overrides):
        rec = RETAILER_PO.make_record(
            order_id="o-1",
            sku="WIDGET-9",
            quantity=3,
            unit_price_dollars=19.99,
            ship_to="801 Atlantic Dr",
            rush=False,
        )
        rec.update(overrides)
        return Transformation(ORDER_TRANSFORM, validate_output=True).apply(rec)

    def test_wraps_single_line_item(self):
        out = self.run()
        assert out["item_count"] == 1
        assert out["line_items"][0]["sku"] == "WIDGET-9"
        assert out["line_items"][0]["quantity"] == 3

    def test_dollars_to_cents_rounds_correctly(self):
        assert self.run(unit_price_dollars=19.99)["line_items"][0]["unit_price_cents"] == 1999
        assert self.run(unit_price_dollars=0.1)["line_items"][0]["unit_price_cents"] == 10
        assert self.run(unit_price_dollars=2.505)["line_items"][0]["unit_price_cents"] == 251

    def test_rush_maps_to_priority(self):
        assert self.run(rush=True)["priority"] == 1
        assert self.run(rush=False)["priority"] == 0

    def test_address_carried_in_street(self):
        out = self.run(ship_to="123 Elm St")
        assert out["address"]["street"] == "123 Elm St"
        assert out["address"]["city"] == ""

    def test_output_validates_against_supplier_format(self):
        SUPPLIER_PO.validate_record(self.run())


class TestStatusTransform:
    def run(self, state, carrier="UPS"):
        rec = SUPPLIER_STATUS.make_record(
            order_id="o-1", state=state, eta_days=3, carrier=carrier
        )
        return Transformation(STATUS_TRANSFORM, validate_output=True).apply(rec)

    def test_state_enum_explodes_into_booleans(self):
        assert self.run(0)["shipped"] == 0 and self.run(0)["backordered"] == 0
        shipped = self.run(1)
        assert shipped["shipped"] == 1 and shipped["backordered"] == 0
        backordered = self.run(2)
        assert backordered["shipped"] == 0 and backordered["backordered"] == 1

    def test_carrier_folded_into_note(self):
        assert self.run(1, carrier="FedEx")["note"] == "carrier: FedEx"


class TestMatchability:
    def test_direct_order_coercion_is_rejected_by_default_thresholds(self):
        # the supplier should NOT accept a retailer order via lossy
        # default-fill; Mr(retailer, supplier) is too high
        assert mismatch_ratio(RETAILER_PO, SUPPLIER_PO) > DEFAULT_MISMATCH_THRESHOLD
        assert (
            max_match(
                RETAILER_PO,
                [SUPPLIER_PO],
                DEFAULT_DIFF_THRESHOLD,
                DEFAULT_MISMATCH_THRESHOLD,
            )
            is None
        )

    def test_status_direct_match_admissible_but_imperfect(self):
        best = max_match(
            SUPPLIER_STATUS,
            [RETAILER_STATUS],
            DEFAULT_DIFF_THRESHOLD,
            DEFAULT_MISMATCH_THRESHOLD,
        )
        assert best is not None and not best.is_perfect

    def test_transform_targets_give_perfect_match(self):
        registry = FormatRegistry()
        register_b2b(registry)
        chains = registry.transform_closure(RETAILER_PO)
        assert any(c[-1].target == SUPPLIER_PO for c in chains)

    def test_order_and_status_formats_have_distinct_diffs(self):
        assert diff(RETAILER_PO, SUPPLIER_PO) > 0
        assert diff(SUPPLIER_STATUS, RETAILER_STATUS) == 2
