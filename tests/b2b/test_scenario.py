"""Integration tests for the B2B supply chain in both broker modes."""

import pytest

from repro.b2b.broker import Broker
from repro.b2b.scenario import build_scenario
from repro.errors import TransportError, XSLTError
from repro.net.transport import Network
from repro.pbio.registry import FormatRegistry

pytestmark = pytest.mark.integration


def place_orders(scenario):
    rush_id = scenario.retailer.send_order("WIDGET-9", 3, 19.99, rush=True)
    slow_id = scenario.retailer.send_order("SPROCKET-3", 50, 2.50)
    scenario.run()
    return rush_id, slow_id


class TestMorphingMode:
    def test_end_to_end_order_flow(self):
        scenario = build_scenario(mode="morphing")
        rush_id, slow_id = place_orders(scenario)
        assert len(scenario.supplier.orders) == 2
        by_id = {o["order_id"]: o for o in scenario.supplier.orders}
        assert by_id[rush_id]["priority"] == 1
        assert by_id[rush_id]["line_items"][0]["unit_price_cents"] == 1999
        statuses = {s["order_id"]: s for s in scenario.retailer.statuses}
        assert statuses[rush_id]["shipped"]
        assert statuses[slow_id]["backordered"]  # only 5 sprockets in stock

    def test_broker_does_no_transform_work(self):
        scenario = build_scenario(mode="morphing")
        place_orders(scenario)
        assert scenario.broker.stats.transformed == 0
        assert scenario.broker.stats.transform_seconds == 0.0
        assert scenario.broker.stats.forwarded == 4

    def test_receivers_morph(self):
        scenario = build_scenario(mode="morphing")
        place_orders(scenario)
        assert scenario.supplier.receiver.stats.morphed == 2
        assert scenario.retailer.receiver.stats.morphed == 2

    def test_broker_passes_bytes_untouched(self):
        scenario = build_scenario(mode="morphing")
        place_orders(scenario)
        assert scenario.broker.stats.bytes_in == scenario.broker.stats.bytes_out

    def test_stock_decremented_on_shipment(self):
        scenario = build_scenario(mode="morphing", stock={"WIDGET-9": 10})
        scenario.retailer.send_order("WIDGET-9", 4, 1.0)
        scenario.run()
        assert scenario.supplier.stock["WIDGET-9"] == 6


class TestXSLTMode:
    def test_end_to_end_order_flow(self):
        scenario = build_scenario(mode="xslt")
        rush_id, slow_id = place_orders(scenario)
        by_id = {o["order_id"]: o for o in scenario.supplier.orders}
        assert by_id[rush_id]["priority"] == 1
        assert by_id[slow_id]["line_items"][0]["unit_price_cents"] == 250
        statuses = {s["order_id"]: s for s in scenario.retailer.statuses}
        assert statuses[rush_id]["shipped"]
        assert statuses[slow_id]["backordered"]

    def test_broker_does_all_transform_work(self):
        scenario = build_scenario(mode="xslt")
        place_orders(scenario)
        assert scenario.broker.stats.transformed == 4
        assert scenario.broker.stats.transform_seconds > 0

    def test_xml_traffic_is_larger(self):
        morphing = build_scenario(mode="morphing")
        place_orders(morphing)
        xslt = build_scenario(mode="xslt")
        place_orders(xslt)
        assert xslt.broker.stats.bytes_in > morphing.broker.stats.bytes_in

    def test_missing_stylesheet_fails_loudly(self):
        # "Loudly" now means contained-but-visible: the fabric keeps
        # running, and the failure is counted and kept for inspection.
        net = Network()
        registry = FormatRegistry()
        broker = Broker(net, "broker", registry, mode="xslt")
        net.add_node("x")
        net.add_node("y")
        broker.add_route("x", "y")
        net.send("x", "broker", b"<PurchaseOrder/>")
        net.run()
        assert net.handler_errors == 1
        destination, error = net.last_handler_error
        assert destination == "broker"
        assert isinstance(error, XSLTError)
        assert "no stylesheet" in str(error)
        assert [d.handler_error for d in net.trace] == [True]


class TestModeEquivalence:
    def test_both_modes_produce_identical_business_outcomes(self):
        results = {}
        for mode in ("morphing", "xslt"):
            scenario = build_scenario(mode=mode)
            place_orders(scenario)
            results[mode] = (
                [
                    (o["order_id"], o["line_items"][0]["sku"],
                     o["line_items"][0]["unit_price_cents"], o["priority"])
                    for o in scenario.supplier.orders
                ],
                sorted(
                    (s["order_id"], bool(s["shipped"]), bool(s["backordered"]),
                     s["eta_days"], s["note"])
                    for s in scenario.retailer.statuses
                ),
            )
        assert results["morphing"] == results["xslt"]


class TestBrokerEdgeCases:
    def test_unknown_mode_rejected(self):
        with pytest.raises(TransportError, match="mode"):
            Broker(Network(), "b", FormatRegistry(), mode="teleport")

    def test_unroutable_traffic_dropped(self):
        net = Network()
        registry = FormatRegistry()
        broker = Broker(net, "broker", registry, mode="morphing")
        net.add_node("stranger")
        net.send("stranger", "broker", b"anything")
        net.run()
        assert broker.stats.forwarded == 0


class TestAddingANewVendor:
    """The paper: "adding new vendors with completely different formats
    becomes easier. The broker just has to be provided with the new ECode
    segments"."""

    def test_second_supplier_with_alien_format(self):
        from repro.b2b.formats import RETAILER_PO, RETAILER_STATUS
        from repro.morph.receiver import MorphReceiver
        from repro.pbio.field import ArraySpec, IOField
        from repro.pbio.format import IOFormat

        scenario = build_scenario(mode="morphing")
        registry = scenario.registry
        net = scenario.network

        # Globex's completely different order schema
        globex_po = IOFormat(
            "PurchaseOrder",
            [
                IOField("ref", "string"),
                IOField("part_number", "string"),
                IOField("units", "integer"),
                IOField("total_cents", "integer", 8),
                IOField("expedite", "integer"),
            ],
            version="globex-supply-7",
        )
        globex_status = IOFormat(
            "OrderStatus",
            [
                IOField("ref", "string"),
                IOField("disposition", "string"),  # "SHIPPED"/"BACKORDER"
                IOField("days", "integer"),
            ],
            version="globex-supply-7",
        )
        # the only new artifacts: two ECode segments handed to the broker
        registry.add_transform(RETAILER_PO, globex_po, """
            old.ref = new.order_id;
            old.part_number = new.sku;
            old.units = new.quantity;
            old.total_cents = floor(new.unit_price_dollars * new.quantity * 100.0 + 0.5);
            old.expedite = 0;
            if (new.rush) { old.expedite = 1; }
        """)
        registry.add_transform(globex_status, RETAILER_STATUS, """
            old.order_id = new.ref;
            old.shipped = 0;
            old.backordered = 0;
            if (strcmp(new.disposition, "SHIPPED") == 0) { old.shipped = 1; }
            if (strcmp(new.disposition, "BACKORDER") == 0) { old.backordered = 1; }
            old.eta_days = new.days;
            old.note = "";
        """)

        # a hand-rolled Globex endpoint: receives its own format natively
        globex_orders = []
        globex_rx = MorphReceiver(registry)

        def fulfil(order):
            globex_orders.append(order)
            from repro.pbio.context import PBIOContext

            status = globex_status.make_record(
                ref=order["ref"], disposition="SHIPPED", days=1
            )
            node.send("broker", PBIOContext(registry).encode(globex_status, status))

        globex_rx.register_handler(globex_po, fulfil)
        node = net.add_node("globex")
        node.set_handler(lambda _src, data: globex_rx.process(data))

        # re-point the routes at the new vendor — nothing else changes
        scenario.broker.add_route("acme", "globex")
        scenario.broker.add_route("globex", "acme")

        order_id = scenario.retailer.send_order("WIDGET-9", 3, 19.99, rush=True)
        scenario.run()

        assert globex_orders[0]["part_number"] == "WIDGET-9"
        assert globex_orders[0]["total_cents"] == 5997
        assert globex_orders[0]["expedite"] == 1
        status = scenario.retailer.statuses[0]
        assert status["order_id"] == order_id
        assert status["shipped"]
