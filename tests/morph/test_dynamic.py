"""Tests for hot-swappable ECode handlers (Service Morphing hooks)."""

import pytest

from repro.errors import TransformError
from repro.morph.dynamic import ECodeHandler
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry

REQUEST = IOFormat(
    "Request", [IOField("a", "integer"), IOField("b", "integer")], version="1"
)
REPLY = IOFormat(
    "Reply", [IOField("value", "integer"), IOField("note", "string")], version="1"
)


class TestECodeHandler:
    def test_reply_record_handler(self):
        handler = ECodeHandler(
            'reply.value = input.a + input.b; reply.note = "sum";',
            reply_format=REPLY,
        )
        out = handler(REQUEST.make_record(a=2, b=3))
        assert out == {"value": 5, "note": "sum"}
        REPLY.validate_record(out)

    def test_return_value_handler(self):
        handler = ECodeHandler("return input.a * input.b;")
        assert handler(REQUEST.make_record(a=4, b=5)) == 20

    def test_bad_code_rejected_at_construction(self):
        with pytest.raises(TransformError, match="compile"):
            ECodeHandler("not c code $$$")

    def test_runtime_fault_wrapped(self):
        handler = ECodeHandler("return input.missing;")
        with pytest.raises(TransformError, match="runtime"):
            handler(REQUEST.make_record(a=1, b=2))

    def test_interpreted_mode_agrees(self):
        code = "reply.value = input.a - input.b; reply.note = \"d\";"
        compiled = ECodeHandler(code, REPLY, use_codegen=True)
        interpreted = ECodeHandler(code, REPLY, use_codegen=False)
        record = REQUEST.make_record(a=9, b=4)
        assert compiled(record) == interpreted(record)


class TestHotSwap:
    def test_swap_changes_behaviour_between_messages(self):
        handler = ECodeHandler("return input.a + input.b;")
        record = REQUEST.make_record(a=10, b=2)
        assert handler(record) == 12
        generation = handler.swap("return input.a - input.b;")
        assert generation == 2
        assert handler(record) == 8
        assert handler.invocations == 2

    def test_failed_swap_keeps_old_behaviour(self):
        handler = ECodeHandler("return 1;")
        with pytest.raises(TransformError):
            handler.swap("$$$")
        assert handler(REQUEST.make_record(a=0, b=0)) == 1
        assert handler.generation == 1

    def test_swap_log_records_history(self):
        handler = ECodeHandler("return 1;")
        handler.swap("return 2;")
        handler.swap("return 3;")
        assert [gen for gen, _code in handler.swap_log] == [2, 3]
        assert handler.code == "return 3;"


class TestWithReceiver:
    def test_registered_as_normal_handler_with_morphing(self):
        """An ECode handler behind the morph layer: v2 wire messages,
        v1 handler format, ECode behaviour, hot-swapped mid-stream."""
        from repro.bench.workloads import response_v2
        from repro.echo.protocol import (
            RESPONSE_V1,
            RESPONSE_V2,
            V2_TO_V1_TRANSFORM,
        )

        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry)
        handler = ECodeHandler("return input.src_count;")
        receiver.register_handler(RESPONSE_V1, handler)
        wire = sender.encode(RESPONSE_V2, response_v2(3))
        assert receiver.process(wire) == 2  # members 0,1 are sources
        handler.swap("return input.sink_count;")
        assert receiver.process(wire) == 2  # members 0,2 are sinks
        handler.swap("return input.member_count;")
        assert receiver.process(wire) == 3
        assert receiver.stats.cache_hits == 2  # swaps did not disturb routes
