"""Dead-letter queue and poison-message quarantine (contain_failures).

With containment on, :meth:`MorphReceiver.process` is a total function:
every failure class lands in the bounded DLQ with its pipeline stage
attached, repeat offenders are quarantined at the header peek, and
:meth:`retry_dead_letters` drains the queue once the cause is fixed.
"""

import pytest

from repro import obs
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry

EVT = IOFormat("DlqEvt", [IOField("n", "integer")], version="1.0")
EVT_WIDE = IOFormat(
    "DlqEvt",
    [IOField("n", "integer"), IOField("pad", "integer")],
    version="2.0",
)
OTHER = IOFormat("DlqOther", [IOField("s", "string")], version="1.0")


def make_receiver(**options):
    registry = FormatRegistry()
    sender = PBIOContext(registry)
    receiver = MorphReceiver(registry, contain_failures=True, **options)
    return sender, receiver


class TestContainment:
    def test_unknown_format_dead_letters_instead_of_raising(self):
        _sender, receiver = make_receiver()
        foreign = PBIOContext()  # private registry: receiver can't know it
        wire = foreign.encode(EVT, {"n": 1})
        assert receiver.process(wire) is None
        (letter,) = receiver.dead_letters
        assert letter.stage == "unknown_format"
        assert letter.format_id == EVT.format_id
        assert letter.data == wire
        assert receiver.containment["dead_lettered"] == 1

    def test_garbage_bytes_classify_as_decode(self):
        _sender, receiver = make_receiver()
        assert receiver.process(b"\x01") is None
        (letter,) = receiver.dead_letters
        assert letter.stage == "decode"
        assert letter.format_id is None

    def test_rejected_match_classifies_as_no_match(self):
        sender, receiver = make_receiver(
            diff_threshold=0, mismatch_threshold=0.0
        )
        receiver.register_handler(OTHER, lambda record: record)
        assert receiver.process(sender.encode(EVT, {"n": 1})) is None
        (letter,) = receiver.dead_letters
        assert letter.stage == "no_match"

    def test_handler_exception_classifies_as_dispatch(self):
        sender, receiver = make_receiver()

        def bad_handler(record):
            raise ValueError("application bug")

        receiver.register_handler(EVT, bad_handler)
        assert receiver.process(sender.encode(EVT, {"n": 1})) is None
        (letter,) = receiver.dead_letters
        assert letter.stage == "dispatch"
        assert "application bug" in letter.error

    def test_healthy_traffic_flows_around_failures(self):
        sender, receiver = make_receiver()
        seen = []
        receiver.register_handler(EVT, lambda record: seen.append(record.n))
        receiver.process(sender.encode(EVT, {"n": 1}))
        receiver.process(b"\xff\xff")  # poison
        receiver.process(sender.encode(EVT, {"n": 2}))
        assert seen == [1, 2]
        assert len(receiver.dead_letters) == 1


class TestBoundedQueue:
    def test_capacity_evicts_oldest_and_counts(self):
        _sender, receiver = make_receiver(dlq_limit=3)
        foreign = PBIOContext()
        wires = [foreign.encode(EVT, {"n": n}) for n in range(5)]
        for wire in wires[:3]:  # stay under the quarantine threshold?
            receiver.process(wire)
        # 3 strikes quarantined the format: later copies are dropped at
        # the header peek, not dead-lettered -- use garbage to overflow
        receiver.process(b"junk-a")
        receiver.process(b"junk-b")
        letters = receiver.dead_letters
        assert len(letters) == 3  # bounded
        assert receiver.containment["evicted"] == 2
        # oldest first: the first two format failures were evicted
        assert [l.stage for l in letters] == [
            "unknown_format", "decode", "decode",
        ]


class TestQuarantine:
    def test_repeat_offender_is_quarantined_and_dropped_cheaply(self):
        _sender, receiver = make_receiver(quarantine_threshold=3)
        foreign = PBIOContext()
        wire = foreign.encode(EVT, {"n": 7})
        for _ in range(3):
            receiver.process(wire)
        assert receiver.is_quarantined(EVT.format_id)
        assert receiver.containment["quarantined_formats"] == 1
        dead_before = receiver.containment["dead_lettered"]
        for _ in range(10):
            receiver.process(wire)
        # quarantined traffic is counted and dropped, not dead-lettered
        assert receiver.containment["quarantine_drops"] == 10
        assert receiver.containment["dead_lettered"] == dead_before

    def test_quarantine_does_not_disturb_healthy_formats(self):
        sender, receiver = make_receiver(quarantine_threshold=2)
        seen = []
        receiver.register_handler(OTHER, lambda record: seen.append(record.s))
        foreign = PBIOContext()
        poison = foreign.encode(EVT, {"n": 0})
        receiver.process(poison)
        receiver.process(sender.encode(OTHER, {"s": "a"}))
        receiver.process(poison)
        assert receiver.is_quarantined(EVT.format_id)
        receiver.process(sender.encode(OTHER, {"s": "b"}))
        assert seen == ["a", "b"]

    def test_lift_quarantine_resets_the_failure_count(self):
        _sender, receiver = make_receiver(quarantine_threshold=2)
        foreign = PBIOContext()
        wire = foreign.encode(EVT, {"n": 1})
        receiver.process(wire)
        receiver.process(wire)
        assert receiver.lift_quarantine(EVT.format_id)
        assert not receiver.is_quarantined(EVT.format_id)
        # the slate is clean: one more failure does not re-quarantine
        receiver.process(wire)
        assert not receiver.is_quarantined(EVT.format_id)
        assert not receiver.lift_quarantine(EVT.format_id)


class TestRetry:
    def test_retry_succeeds_after_late_registration(self):
        sender, receiver = make_receiver(quarantine_threshold=2)
        foreign = PBIOContext()
        wires = [foreign.encode(EVT, {"n": n}) for n in range(3)]
        for wire in wires:
            receiver.process(wire)
        assert receiver.is_quarantined(EVT.format_id)
        assert len(receiver.dead_letters) == 2  # third copy was dropped

        # the fix arrives: the reader learns the format
        seen = []
        receiver.register_handler(EVT, lambda record: seen.append(record.n))
        succeeded, requeued = receiver.retry_dead_letters()
        assert (succeeded, requeued) == (2, 0)
        assert seen == [0, 1]
        assert receiver.dead_letters == []
        assert not receiver.is_quarantined(EVT.format_id)
        # and live traffic for the format flows again
        receiver.process(sender.encode(EVT, {"n": 9}))
        assert seen == [0, 1, 9]

    def test_retry_requeues_still_broken_messages_with_attempts(self):
        _sender, receiver = make_receiver()
        receiver.process(b"forever-broken")
        succeeded, requeued = receiver.retry_dead_letters()
        assert (succeeded, requeued) == (0, 1)
        (letter,) = receiver.dead_letters
        assert letter.attempts == 2
        assert receiver.containment["retry_failures"] == 1

    def test_obs_counters_record_the_dlq_lifecycle(self):
        prior = (obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer)
        registry = obs.metrics.Registry()
        obs.enable(registry=registry)
        try:
            _sender, receiver = make_receiver()
            foreign = PBIOContext()
            receiver.process(foreign.encode(EVT, {"n": 1}))
            assert (
                registry.counter(
                    "morph.receiver.dead_letters", stage="unknown_format"
                ).value
                == 1
            )
            receiver.register_handler(EVT, lambda record: record)
            receiver.retry_dead_letters()
            assert registry.counter("morph.receiver.dlq_retried").value == 1
        finally:
            obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer = prior
