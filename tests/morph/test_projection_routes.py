"""Receiver-side projection routing: interest sets, parent-route reuse,
coverage guard, invalidation.

A :class:`ProjectionFormat` wire is the negotiated narrow revision of a
parent the receiver already routes.  When the projection covers the
parent route's fused liveness set it must ride that route (same handler,
same delivered records as full-format traffic); when coverage fails it
must degrade to ordinary MaxMatch planning, never to an error.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.projection import project_format, project_record
from repro.pbio.registry import FormatRegistry

WIDE = IOFormat(
    "Sensor",
    [
        IOField("seq", "integer"),
        IOField("value", "float"),
        IOField("unit", "string"),
        IOField("station", "integer"),
        IOField("checksum", "integer"),
    ],
    version="2.0",
)
NARROW = IOFormat(
    "Sensor",
    [IOField("seq", "integer"), IOField("value", "float")],
    version="0.1",
)


def full_record(seq=1):
    return WIDE.make_record(
        seq=seq, value=seq * 1.5, unit="mK", station=12, checksum=99
    )


def build(handler_fmt=NARROW):
    registry = FormatRegistry()
    registry.register(WIDE)
    got = []
    receiver = MorphReceiver(registry)
    receiver.register_handler(handler_fmt, got.append)
    return registry, receiver, got


class TestInterestFor:
    def test_fused_liveness_or_conservative_none(self, pipeline_mode):
        _registry, receiver, _got = build()
        interest = receiver.interest_for(WIDE)
        if pipeline_mode == "fused":
            # only the fields the NARROW handler can ever observe
            assert interest == frozenset({"seq", "value"})
        else:
            # no provable liveness without fusion: ask for everything
            assert interest is None

    def test_reject_route_reports_none(self):
        registry = FormatRegistry()
        receiver = MorphReceiver(registry)
        other = IOFormat("Unrelated", [IOField("q", "integer")])
        receiver.register_handler(other, lambda r: None)
        assert receiver.interest_for(WIDE) is None


class TestProjectionRoute:
    def test_projected_wire_delivers_the_same_records_as_full(self):
        registry, receiver, got = build()
        proj = project_format(WIDE, ["seq", "value"], epoch=1)
        registry.register(proj)
        ctx = PBIOContext(registry)
        rec = full_record(7)
        receiver.process(ctx.encode(WIDE, rec))
        receiver.process(ctx.encode(proj, project_record(proj, rec)))
        assert len(got) == 2
        assert dict(got[0]) == dict(got[1])

    def test_covering_projection_rides_the_parent_route(self, pipeline_mode):
        if pipeline_mode != "fused":
            pytest.skip("liveness-based route reuse needs fusion")
        registry, receiver, got = build()
        live = receiver.interest_for(WIDE)
        proj = project_format(WIDE, live, epoch=1)
        registry.register(proj)
        ctx = PBIOContext(registry)
        metrics = obs.Registry()
        obs.enable(registry=metrics)
        try:
            receiver.process(ctx.encode(proj, project_record(proj, full_record())))
            assert metrics.counter("morph.projection.routes").value == 1
            assert metrics.counter("morph.projection.fallbacks").value == 0
        finally:
            obs.disable(reset=True)
        route = receiver.route_for(proj)
        assert route is not None and route.pre_coercion is not None
        assert got and got[0]["seq"] == 1

    def test_uncovered_projection_falls_back_to_maxmatch(self, pipeline_mode):
        if pipeline_mode != "fused":
            pytest.skip("the coverage guard compares against fused liveness")
        registry, receiver, got = build()
        # an incoherent negotiation window: the wire carries a field the
        # route never reads, and misses one it does
        proj = project_format(WIDE, ["seq", "checksum"], epoch=3)
        registry.register(proj)
        ctx = PBIOContext(registry)
        metrics = obs.Registry()
        obs.enable(registry=metrics)
        try:
            receiver.process(ctx.encode(proj, {"seq": 4, "checksum": 5}))
            assert metrics.counter("morph.projection.fallbacks").value == 1
            assert metrics.counter("morph.projection.routes").value == 0
        finally:
            obs.disable(reset=True)
        # degraded, not dead: MaxMatch still delivers with defaults
        assert len(got) == 1
        assert got[0]["seq"] == 4 and got[0]["value"] == 0.0

    def test_projection_of_unknown_parent_is_just_another_revision(self):
        registry, receiver, got = build()
        proj = project_format(WIDE, ["seq", "value"], epoch=1)
        registry.unregister(WIDE)  # provenance now dangles
        registry.register(proj)
        ctx = PBIOContext(registry)
        receiver.process(ctx.encode(proj, {"seq": 3, "value": 0.5}))
        assert len(got) == 1 and got[0]["seq"] == 3


class TestInvalidation:
    def test_invalidate_route_drops_the_cached_plan(self):
        registry, receiver, _got = build()
        ctx = PBIOContext(registry)
        receiver.process(ctx.encode(WIDE, full_record()))
        assert receiver.route_for(WIDE) is not None
        assert receiver.invalidate_route(WIDE.format_id) is True
        assert receiver.route_for(WIDE) is None
        assert receiver.invalidate_route(WIDE.format_id) is False

    def test_replanned_route_sees_refreshed_meta_data(self):
        registry, receiver, got = build()
        proj = project_format(WIDE, ["seq", "value"], epoch=1)
        registry.register(proj)
        ctx = PBIOContext(registry)
        wire = ctx.encode(proj, {"seq": 9, "value": 2.5})
        receiver.process(wire)
        assert len(got) == 1
        # the format server re-derives the projection (same id, fresh
        # content object); the receiver replans from the new entry
        registry.replace(project_format(WIDE, ["seq", "value"], epoch=1))
        receiver.invalidate_route(proj.format_id)
        receiver.process(wire)
        assert len(got) == 2 and dict(got[0]) == dict(got[1])
