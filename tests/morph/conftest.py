"""Run every morph test against both pipelines.

The receiver's default is whole-route fusion; the staged pipeline is the
ablation baseline and runtime fallback.  Parametrizing the default here
means every existing morph test doubles as a fused-vs-staged behavioral
equivalence check — both modes must satisfy the exact same assertions.
"""

from __future__ import annotations

import pytest

from repro.morph.receiver import MorphReceiver


@pytest.fixture(autouse=True, params=["fused", "staged"])
def pipeline_mode(request, monkeypatch):
    monkeypatch.setattr(
        MorphReceiver, "DEFAULT_USE_FUSION", request.param == "fused"
    )
    return request.param
