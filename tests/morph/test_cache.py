"""Conversion-route cache accounting on the morph receiver.

Algorithm 2 plans a route once per incoming format id and replays it from
cache for every later message; these tests pin down the hit/miss
bookkeeping, reuse across repeated foreign formats, and what happens when
a cached route's meta-data is unregistered mid-stream.
"""

from repro.bench.workloads import response_v2
from repro.echo.protocol import (
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    V1_TO_V0_TRANSFORM,
    V2_TO_V1_TRANSFORM,
)
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.registry import FormatRegistry


def lossy_pair(reader_fmt):
    registry = FormatRegistry()
    registry.register_transform(V2_TO_V1_TRANSFORM)
    registry.register_transform(V1_TO_V0_TRANSFORM)
    sender = PBIOContext(registry)
    receiver = MorphReceiver(registry)
    delivered = []
    receiver.register_handler(reader_fmt, delivered.append)
    return sender, receiver, delivered


class TestHitMissAccounting:
    def test_first_message_misses_rest_hit(self):
        sender, receiver, delivered = lossy_pair(RESPONSE_V1)
        for _ in range(5):
            receiver.process(sender.encode(RESPONSE_V2, response_v2(3)))
        assert len(delivered) == 5
        assert receiver.stats.messages == 5
        assert receiver.stats.cache_misses == 1
        assert receiver.stats.cache_hits == 4
        assert receiver.stats.morphed == 5

    def test_each_foreign_format_misses_once(self):
        sender, receiver, delivered = lossy_pair(RESPONSE_V0)
        for fmt in (RESPONSE_V2, RESPONSE_V1, RESPONSE_V2, RESPONSE_V1):
            rec = response_v2(2) if fmt is RESPONSE_V2 else {
                "channel_id": "c", "member_count": 0, "member_list": [],
                "src_count": 0, "src_list": [], "sink_count": 0,
                "sink_list": [],
            }
            receiver.process(sender.encode(fmt, rec))
        assert receiver.stats.cache_misses == 2  # one per distinct format
        assert receiver.stats.cache_hits == 2
        assert len(delivered) == 4

    def test_route_object_is_reused(self):
        sender, receiver, _ = lossy_pair(RESPONSE_V1)
        receiver.process(sender.encode(RESPONSE_V2, response_v2(1)))
        first = receiver.route_for(RESPONSE_V2)
        receiver.process(sender.encode(RESPONSE_V2, response_v2(2)))
        assert receiver.route_for(RESPONSE_V2) is first

    def test_new_handler_invalidates_cache(self):
        sender, receiver, _ = lossy_pair(RESPONSE_V0)
        receiver.process(sender.encode(RESPONSE_V2, response_v2(1)))
        assert receiver.route_for(RESPONSE_V2) is not None
        # Registering a better match must replan: the V1 handler now wins.
        receiver.register_handler(RESPONSE_V1, lambda rec: rec)
        assert receiver.route_for(RESPONSE_V2) is None
        receiver.process(sender.encode(RESPONSE_V2, response_v2(1)))
        route = receiver.route_for(RESPONSE_V2)
        assert route.handler_format.version == "1.0"
        assert receiver.stats.cache_misses == 2


class TestUnregisterMidStream:
    def test_unregister_format_breaks_new_messages_not_cached_route(self):
        sender, receiver, delivered = lossy_pair(RESPONSE_V1)
        wire = sender.encode(RESPONSE_V2, response_v2(2))
        receiver.process(wire)
        assert len(delivered) == 1
        # Retire the writer's format: the planned route keeps flowing
        # (meta-data was already resolved), which is exactly the paper's
        # point — per-format work happens once, then the route is pinned.
        assert receiver.registry.unregister(RESPONSE_V2) is True
        receiver.process(wire)
        assert len(delivered) == 2
        assert receiver.stats.cache_hits == 1

    def test_unregister_drops_transforms_touching_format(self):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        registry.register_transform(V1_TO_V0_TRANSFORM)
        registry.unregister(RESPONSE_V1)
        assert registry.transforms_from(RESPONSE_V2) == []
        assert registry.transforms_from(RESPONSE_V1) == []
        assert registry.lookup_id(RESPONSE_V1.format_id) is None
        # V2 and V0 themselves survive.
        assert registry.lookup_id(RESPONSE_V2.format_id) is RESPONSE_V2
        assert registry.lookup_id(RESPONSE_V0.format_id) is RESPONSE_V0

    def test_unregister_unknown_format_is_false(self):
        registry = FormatRegistry()
        assert registry.unregister(RESPONSE_V2) is False

    def test_replanning_after_unregister_rejects(self):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        registry.register_transform(V1_TO_V0_TRANSFORM)
        sender = PBIOContext(registry)
        # Strict thresholds: only perfect matches (possibly reached via a
        # transform chain) are acceptable — no diff-based reconciliation.
        receiver = MorphReceiver(
            registry, diff_threshold=0, mismatch_threshold=0.0
        )
        delivered = []
        receiver.register_handler(RESPONSE_V0, delivered.append)
        wire = sender.encode(RESPONSE_V2, response_v2(2))
        receiver.process(wire)
        assert len(delivered) == 1
        # Drop the transform graph out from under the receiver, then force
        # a replan: without V2->V1 the V0 reader can no longer accept V2.
        receiver.registry.unregister(RESPONSE_V1)
        receiver.register_default_handler(lambda fmt, rec: "rejected")
        assert receiver.route_for(RESPONSE_V2) is None  # cache invalidated
        assert receiver.process(wire) == "rejected"
        assert receiver.stats.rejected == 1
