"""Unit tests for compiled Transformations and TransformChains."""

import pytest

from repro.bench.workloads import response_v1_from_v2, response_v2
from repro.echo.protocol import (
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    V1_TO_V0_TRANSFORM,
    V1_TO_V2_TRANSFORM,
    V2_TO_V1_TRANSFORM,
)
from repro.errors import TransformError
from repro.morph.transform import (
    TransformChain,
    Transformation,
    build_chain,
    growable_record,
)
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import records_equal
from repro.pbio.registry import TransformSpec


class TestGrowableRecord:
    def test_defaults_match_format(self, v1):
        rec = growable_record(v1)
        assert rec["member_count"] == 0
        assert rec["member_list"] == []
        assert rec["channel_id"] == ""

    def test_arrays_autogrow_with_complex_elements(self, v1):
        rec = growable_record(v1)
        rec["member_list"][2]["info"] = "late"
        assert len(rec["member_list"]) == 3
        assert rec["member_list"][0] == {"info": "", "ID": 0}

    def test_grown_elements_are_fresh(self, v1):
        rec = growable_record(v1)
        rec["member_list"][0]["ID"] = 5
        assert rec["member_list"][1]["ID"] == 0

    def test_nested_growable(self):
        inner = IOFormat(
            "Inner",
            [IOField("m", "integer"),
             IOField("vals", "integer", array=ArraySpec(length_field="m"))],
        )
        outer = IOFormat(
            "Outer",
            [IOField("n", "integer"),
             IOField("rows", "complex", subformat=inner,
                     array=ArraySpec(length_field="n"))],
        )
        rec = growable_record(outer)
        rec["rows"][0]["vals"][1] = 7
        assert rec["rows"][0]["vals"] == [0, 7]

    def test_fixed_arrays_prefilled(self):
        fmt = IOFormat("F", [IOField("xs", "integer", array=ArraySpec(fixed_length=2))])
        assert growable_record(fmt)["xs"] == [0, 0]


class TestTransformation:
    def test_figure5_paper_example(self, v2):
        xform = Transformation(V2_TO_V1_TRANSFORM)
        incoming = response_v2(5)
        out = xform.apply(incoming)
        assert records_equal(out, response_v1_from_v2(incoming))

    def test_source_and_target_exposed(self):
        xform = Transformation(V2_TO_V1_TRANSFORM)
        assert xform.source == RESPONSE_V2
        assert xform.target == RESPONSE_V1

    def test_interpreted_mode_agrees_with_compiled(self):
        compiled = Transformation(V2_TO_V1_TRANSFORM, use_codegen=True)
        interpreted = Transformation(V2_TO_V1_TRANSFORM, use_codegen=False)
        incoming = response_v2(4)
        assert records_equal(compiled.apply(incoming), interpreted.apply(incoming))

    def test_bad_ecode_raises_transform_error_at_compile(self):
        spec = TransformSpec(RESPONSE_V2, RESPONSE_V1, "this is not C;")
        with pytest.raises(TransformError, match="compile"):
            Transformation(spec)

    def test_runtime_failure_wrapped(self):
        spec = TransformSpec(RESPONSE_V2, RESPONSE_V1, "old.x = new.missing;")
        xform = Transformation(spec, validate_output=False)
        with pytest.raises(TransformError, match="runtime"):
            xform.apply(response_v2(1))

    def test_validation_catches_inconsistent_output(self):
        # sets a count without populating the list
        spec = TransformSpec(
            RESPONSE_V2, RESPONSE_V1, "old.member_count = new.member_count;"
        )
        xform = Transformation(spec, validate_output=True)
        with pytest.raises(TransformError, match="invalid record"):
            xform.apply(response_v2(2))

    def test_validation_off_delivers_anyway(self):
        spec = TransformSpec(
            RESPONSE_V2, RESPONSE_V1, "old.member_count = new.member_count;"
        )
        out = Transformation(spec, validate_output=False).apply(response_v2(2))
        assert out["member_count"] == 2 and out["member_list"] == []

    def test_unwritten_fields_keep_defaults(self):
        spec = TransformSpec(
            RESPONSE_V2, RESPONSE_V0, "old.channel_id = new.channel_id;"
        )
        out = Transformation(spec, validate_output=False).apply(response_v2(1))
        assert out["member_count"] == 0
        assert out["member_list"] == []

    def test_callable_protocol(self):
        xform = Transformation(V2_TO_V1_TRANSFORM)
        assert xform(response_v2(1)) == xform.apply(response_v2(1))


class TestTransformChain:
    def test_two_hop_chain(self):
        chain = build_chain([V2_TO_V1_TRANSFORM, V1_TO_V0_TRANSFORM])
        assert chain.source == RESPONSE_V2
        assert chain.target == RESPONSE_V0
        assert len(chain) == 2
        incoming = response_v2(3)
        out = chain.apply(incoming)
        assert out["member_count"] == 3
        assert set(out.keys()) == {"channel_id", "member_count", "member_list"}
        assert out["member_list"][0]["info"] == incoming["member_list"][0]["info"]

    def test_roundtrip_v1_v2_v1_preserves_information(self):
        v1_rec = response_v1_from_v2(response_v2(4))
        forward = Transformation(V1_TO_V2_TRANSFORM)
        backward = Transformation(V2_TO_V1_TRANSFORM)
        assert records_equal(backward.apply(forward.apply(v1_rec)), v1_rec)

    def test_empty_chain_rejected(self):
        with pytest.raises(TransformError):
            TransformChain([])

    def test_non_contiguous_chain_rejected(self):
        with pytest.raises(TransformError, match="contiguous"):
            TransformChain(
                [Transformation(V2_TO_V1_TRANSFORM),
                 Transformation(V2_TO_V1_TRANSFORM)]
            )
