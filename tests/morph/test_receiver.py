"""Unit tests for the Algorithm 2 receiver — every path through the
pipeline: cache, perfect match, morph, chain, reconcile, reject."""

import pytest

from repro.bench.workloads import response_v1_from_v2, response_v2
from repro.echo.protocol import (
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    V2_TO_V1_TRANSFORM,
)
from repro.errors import NoMatchError, UnknownFormatError
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import records_equal
from repro.pbio.registry import FormatRegistry


def make_pair(registry=None):
    registry = registry if registry is not None else FormatRegistry()
    return PBIOContext(registry), MorphReceiver(registry)


class TestPerfectMatchPath:
    def test_exact_format_dispatches_directly(self, v2):
        sender, receiver = make_pair()
        got = []
        receiver.register_handler(v2, got.append)
        rec = response_v2(2)
        receiver.process(sender.encode(v2, rec))
        assert records_equal(got[0], rec)
        assert receiver.stats.perfect_matches == 1
        assert receiver.stats.morphed == 0

    def test_structurally_identical_but_resized_declaration(self):
        a = IOFormat("T", [IOField("x", "integer", 4)], version="x")
        b = IOFormat("T", [IOField("x", "integer", 8)], version="x")
        sender, receiver = make_pair()
        got = []
        receiver.register_handler(b, got.append)
        receiver.process(sender.encode(a, {"x": 5}))
        assert got == [{"x": 5}]
        route = receiver.route_for(a)
        assert route.coercion is not None  # reshaped, but perfect match

    def test_handler_return_value_propagates(self, v2):
        sender, receiver = make_pair()
        receiver.register_handler(v2, lambda rec: rec["member_count"] * 10)
        assert receiver.process(sender.encode(v2, response_v2(3))) == 30


class TestMorphPath:
    def test_v2_message_to_v1_reader(self, echo_registry, v1, v2):
        sender = PBIOContext(echo_registry)
        receiver = MorphReceiver(echo_registry)
        got = []
        receiver.register_handler(v1, got.append)
        incoming = response_v2(4)
        receiver.process(sender.encode(v2, incoming))
        assert records_equal(got[0], response_v1_from_v2(incoming))
        assert receiver.stats.morphed == 1
        assert receiver.stats.compiled_chains == 1

    def test_chained_retro_transform_to_v0(self, echo_registry, v0, v2):
        sender = PBIOContext(echo_registry)
        receiver = MorphReceiver(echo_registry)
        got = []
        receiver.register_handler(v0, got.append)
        receiver.process(sender.encode(v2, response_v2(3)))
        out = got[0]
        assert set(out.keys()) == {"channel_id", "member_count", "member_list"}
        assert out["member_count"] == 3
        route = receiver.route_for(v2)
        assert route.chain is not None and len(route.chain) == 2

    def test_transform_preferred_over_lossy_coercion(self, echo_registry, v0, v2):
        # a direct (v2, v0) coercion would be admissible (Mr = 0) but the
        # chain reaches v0 exactly; Algorithm 2 tries MaxMatch(Ft, Fr)
        # only after the direct match fails to be perfect, and the chain
        # preserves the member data
        sender = PBIOContext(echo_registry)
        receiver = MorphReceiver(echo_registry)
        got = []
        receiver.register_handler(v0, got.append)
        receiver.process(sender.encode(v2, response_v2(2)))
        assert got[0]["member_list"][0]["info"] != ""

    def test_forward_morph_old_server_new_client(self, echo_registry, v1, v2):
        # v1 message, v2-only reader: the forward transform applies
        sender = PBIOContext(echo_registry)
        receiver = MorphReceiver(echo_registry)
        got = []
        receiver.register_handler(v2, got.append)
        v1_rec = response_v1_from_v2(response_v2(3))
        receiver.process(sender.encode(v1, v1_rec))
        assert records_equal(got[0], response_v2(3))


class TestReconcilePath:
    def test_imperfect_match_fills_defaults_and_drops(self):
        src = IOFormat(
            "T",
            [IOField("x", "integer"), IOField("extra", "string")],
            version="new",
        )
        dst = IOFormat(
            "T",
            [IOField("x", "integer"), IOField("missing", "float", default=2.5)],
            version="old",
        )
        sender, receiver = make_pair()
        got = []
        receiver.register_handler(dst, got.append)
        receiver.process(sender.encode(src, {"x": 1, "extra": "dropme"}))
        assert got == [{"x": 1, "missing": 2.5}]
        assert receiver.stats.reconciled == 1


class TestRejectPath:
    def test_no_match_raises(self):
        src = IOFormat("T", [IOField("a", "integer")], version="x")
        dst = IOFormat("T", [IOField("b", "string")], version="y")
        sender, receiver = make_pair()
        receiver.register_handler(dst, lambda rec: rec)
        with pytest.raises(NoMatchError):
            receiver.process(sender.encode(src, {"a": 1}))
        assert receiver.stats.rejected == 1

    def test_default_handler_catches_rejects(self):
        src = IOFormat("T", [IOField("a", "integer")], version="x")
        dst = IOFormat("T", [IOField("b", "string")], version="y")
        sender, receiver = make_pair()
        receiver.register_handler(dst, lambda rec: rec)
        fallback = []
        receiver.register_default_handler(lambda fmt, rec: fallback.append((fmt, rec)))
        receiver.process(sender.encode(src, {"a": 1}))
        assert fallback[0][0] == src
        assert fallback[0][1] == {"a": 1}

    def test_different_name_never_matches(self):
        src = IOFormat("Alpha", [IOField("x", "integer")])
        dst = IOFormat("Beta", [IOField("x", "integer")])
        sender, receiver = make_pair()
        receiver.register_handler(dst, lambda rec: rec)
        with pytest.raises(NoMatchError):
            receiver.process(sender.encode(src, {"x": 1}))

    def test_unknown_wire_format(self):
        fmt = IOFormat("T", [IOField("x", "integer")])
        foreign = PBIOContext()  # private registry
        wire = foreign.encode(fmt, {"x": 1})
        receiver = MorphReceiver()  # different empty registry
        with pytest.raises(UnknownFormatError):
            receiver.process(wire)

    def test_strict_thresholds_reject_near_miss(self):
        src = IOFormat("T", [IOField("x", "integer"), IOField("y", "integer")],
                       version="a")
        dst = IOFormat("T", [IOField("x", "integer"), IOField("z", "integer")],
                       version="b")
        sender, _ = make_pair()
        registry = sender.registry
        strict = MorphReceiver(registry, diff_threshold=0, mismatch_threshold=0.0)
        strict.register_handler(dst, lambda rec: rec)
        with pytest.raises(NoMatchError):
            strict.process(sender.encode(src, {"x": 1, "y": 2}))
        lenient = MorphReceiver(registry, diff_threshold=5, mismatch_threshold=0.9)
        lenient.register_handler(dst, lambda rec: rec)
        assert lenient.process(sender.encode(src, {"x": 1, "y": 2})) == {"x": 1, "z": 0}


class TestCaching:
    def test_route_planned_once(self, echo_registry, v1, v2):
        sender = PBIOContext(echo_registry)
        receiver = MorphReceiver(echo_registry)
        receiver.register_handler(v1, lambda rec: rec)
        wire = sender.encode(v2, response_v2(2))
        for _ in range(10):
            receiver.process(wire)
        assert receiver.stats.messages == 10
        assert receiver.stats.cache_hits == 9
        assert receiver.stats.compiled_chains == 1

    def test_new_handler_invalidates_routes(self, echo_registry, v1, v2):
        sender = PBIOContext(echo_registry)
        receiver = MorphReceiver(echo_registry)
        receiver.register_handler(v1, lambda rec: ("v1", rec))
        wire = sender.encode(v2, response_v2(1))
        tag, _ = receiver.process(wire)
        assert tag == "v1"
        receiver.register_handler(v2, lambda rec: ("v2", rec))
        tag, _ = receiver.process(wire)
        assert tag == "v2"  # the better (exact) handler now wins

    def test_process_record_path(self, echo_registry, v1, v2):
        receiver = MorphReceiver(echo_registry)
        got = []
        receiver.register_handler(v1, got.append)
        rec = response_v2(2)
        receiver.process_record(v2, rec)
        receiver.process_record(v2, rec)
        assert len(got) == 2
        assert receiver.stats.cache_hits == 1


class TestCompatibilitySpace:
    def test_expansion_via_transforms(self, echo_registry, v0, v1, v2):
        receiver = MorphReceiver(echo_registry)
        receiver.register_handler(v0, lambda rec: rec)
        accepted = {f.version for f in receiver.compatibility_space()
                    if f.name == "ChannelOpenResponse"}
        # v0 directly; v1 and v2 through retro-transform chains
        assert {"0.0", "1.0", "2.0"} <= accepted

    def test_without_transforms_space_is_smaller(self, v0, v1, v2):
        registry = FormatRegistry()
        for fmt in (v0, v1, v2):
            registry.register(fmt)
        receiver = MorphReceiver(
            registry, diff_threshold=0, mismatch_threshold=0.0
        )
        receiver.register_handler(v0, lambda rec: rec)
        accepted = {f.version for f in receiver.compatibility_space()
                    if f.name == "ChannelOpenResponse"}
        assert accepted == {"0.0"}


class TestInterpretiveAblation:
    def test_interpreted_receiver_agrees_with_compiled(self, v1, v2):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        sender = PBIOContext(registry)
        wire = sender.encode(v2, response_v2(3))
        outputs = []
        for use_codegen in (True, False):
            receiver = MorphReceiver(registry, use_codegen=use_codegen)
            receiver.register_handler(v1, lambda rec: rec)
            outputs.append(receiver.process(wire))
        assert records_equal(outputs[0], outputs[1])


class TestECodeCoercion:
    """The reconcile step can run as DCG-compiled generated ECode."""

    def _formats(self):
        src = IOFormat(
            "T",
            [IOField("x", "integer"), IOField("extra", "string")],
            version="new",
        )
        dst = IOFormat(
            "T",
            [IOField("x", "integer"), IOField("fresh", "float")],
            version="old",
        )
        return src, dst

    def test_agrees_with_python_walker(self):
        src, dst = self._formats()
        registry = FormatRegistry()
        sender = PBIOContext(registry)
        wire = sender.encode(src, {"x": 9, "extra": "drop"})
        outputs = []
        for ecode_coercion in (False, True):
            receiver = MorphReceiver(registry, ecode_coercion=ecode_coercion)
            receiver.register_handler(dst, lambda rec: rec)
            out = receiver.process(wire)
            # generated ECode uses scalar zero defaults, the walker uses
            # field defaults; normalize for the comparison
            out = dict(out)
            out.pop("fresh")
            outputs.append(out)
        assert outputs[0] == outputs[1] == {"x": 9}

    def test_route_carries_compiled_coercion(self):
        src, dst = self._formats()
        registry = FormatRegistry()
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry, ecode_coercion=True)
        receiver.register_handler(dst, lambda rec: rec)
        receiver.process(sender.encode(src, {"x": 1, "extra": ""}))
        route = receiver.route_for(src)
        assert route.coercion_transform is not None
        assert "old['x'] = new['x']" in route.coercion_transform.procedure.python_source

    def test_unsupported_shapes_fall_back_to_walker(self):
        from repro.pbio.field import ArraySpec

        src = IOFormat(
            "T", [IOField("xs", "integer", array=ArraySpec(fixed_length=2))],
            version="a",
        )
        dst = IOFormat(
            "T", [IOField("xs", "integer", array=ArraySpec(fixed_length=3))],
            version="b",
        )
        registry = FormatRegistry()
        sender = PBIOContext(registry)
        receiver = MorphReceiver(
            registry, ecode_coercion=True, mismatch_threshold=1.0
        )
        receiver.register_handler(dst, lambda rec: rec)
        out = receiver.process(sender.encode(src, {"xs": [4, 5]}))
        route = receiver.route_for(src)
        assert route.coercion_transform is None  # generator refused
        assert out == {"xs": [4, 5, 0]}  # the walker padded
