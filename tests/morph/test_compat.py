"""Unit + property tests for imperfect-match reconciliation
(coerce_record) and ECode auto-generation."""

import pytest
from hypothesis import given

from repro.ecode.codegen import compile_procedure
from repro.errors import MorphError
from repro.morph.compat import coerce_record, generate_coercion_ecode
from repro.morph.transform import growable_record, _freeze
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import Record, records_equal

from tests.strategies import format_and_record, io_formats


def fmt(name, *fields, version=None):
    return IOFormat(name, list(fields), version=version)


SRC = fmt(
    "Msg",
    IOField("shared", "integer"),
    IOField("dropped", "string"),
    IOField("n", "integer"),
    IOField("xs", "integer", array=ArraySpec(length_field="n")),
    version="new",
)

DST = fmt(
    "Msg",
    IOField("shared", "integer"),
    IOField("added", "float", default=1.5),
    IOField("n", "integer"),
    IOField("xs", "integer", array=ArraySpec(length_field="n")),
    version="old",
)


class TestCoerceRecord:
    def test_copies_matching_drops_unknown_fills_defaults(self):
        rec = SRC.make_record(shared=7, dropped="bye", n=2, xs=[1, 2])
        out = coerce_record(SRC, DST, rec)
        assert out == {"shared": 7, "added": 1.5, "n": 2, "xs": [1, 2]}
        assert "dropped" not in out

    def test_output_always_validates(self):
        rec = SRC.make_record(shared=1, n=1, xs=[9])
        DST.validate_record(coerce_record(SRC, DST, rec))

    def test_type_changed_field_gets_default(self):
        src = fmt("M", IOField("x", "integer"))
        dst = fmt("M", IOField("x", "string"))
        assert coerce_record(src, dst, {"x": 5}) == {"x": ""}

    def test_count_fields_resynchronized(self):
        # source record with inconsistent count is repaired
        rec = Record(shared=0, dropped="", n=99, xs=[1, 2, 3])
        out = coerce_record(SRC, DST, rec)
        assert out["n"] == 3

    def test_complex_recursion(self):
        inner_src = fmt("I", IOField("keep", "integer"), IOField("lose", "integer"))
        inner_dst = fmt("I", IOField("keep", "integer"), IOField("gain", "string"))
        src = fmt("M", IOField("sub", "complex", subformat=inner_src))
        dst = fmt("M", IOField("sub", "complex", subformat=inner_dst))
        out = coerce_record(src, dst, {"sub": {"keep": 3, "lose": 4}})
        assert out == {"sub": {"keep": 3, "gain": ""}}

    def test_fixed_array_padded_and_trimmed(self):
        src = fmt("M", IOField("xs", "integer", array=ArraySpec(fixed_length=2)))
        dst = fmt("M", IOField("xs", "integer", array=ArraySpec(fixed_length=4)))
        out = coerce_record(src, dst, {"xs": [5, 6]})
        assert out == {"xs": [5, 6, 0, 0]}
        narrower = fmt("M", IOField("xs", "integer", array=ArraySpec(fixed_length=1)))
        assert coerce_record(src, narrower, {"xs": [5, 6]}) == {"xs": [5]}

    def test_malformed_value_falls_back_to_default(self):
        out = coerce_record(SRC, DST, Record(shared="junk?", dropped="", n=0, xs=[]))
        assert out["shared"] == 0 or isinstance(out["shared"], int)


class TestCoerceProperties:
    @given(format_and_record(), io_formats())
    def test_total_and_valid(self, fmt_rec, dst):
        src, rec = fmt_rec
        out = coerce_record(src, dst, rec)
        dst.validate_record(out)

    @given(format_and_record())
    def test_identity_coercion(self, fmt_rec):
        src, rec = fmt_rec
        out = coerce_record(src, src, rec)
        assert records_equal(out, rec)


class TestGeneratedECodeCoercion:
    def _apply_generated(self, src, dst, rec):
        code = generate_coercion_ecode(src, dst)
        proc = compile_procedure(code)
        out = growable_record(dst)
        proc(rec, out)
        _freeze(out)
        return out

    def test_agrees_with_structural_coercion(self):
        rec = SRC.make_record(shared=7, dropped="x", n=3, xs=[1, 2, 3])
        generated = self._apply_generated(SRC, DST, rec)
        structural = coerce_record(SRC, DST, rec)
        # generated ECode fills scalar defaults (not field-custom defaults)
        structural["added"] = 0.0
        assert records_equal(generated, structural)

    def test_complex_array_copy(self, v1):
        from repro.bench.workloads import response_v1_from_v2, response_v2

        rec = response_v1_from_v2(response_v2(3))
        generated = self._apply_generated(v1, v1, rec)
        assert records_equal(generated, rec)

    def test_echo_v2_to_v1_drop_and_default(self, v1, v2):
        from repro.bench.workloads import response_v2

        rec = response_v2(2)
        out = self._apply_generated(v2, v1, rec)
        # the structural mapping keeps the member list but cannot invent
        # the src/sink lists (that needs the semantic Figure 5 transform)
        assert out["member_count"] == 2
        assert out["src_count"] == 0 and out["src_list"] == []

    def test_mismatched_fixed_arrays_rejected(self):
        a = fmt("M", IOField("xs", "integer", array=ArraySpec(fixed_length=2)))
        b = fmt("M", IOField("xs", "integer", array=ArraySpec(fixed_length=3)))
        with pytest.raises(MorphError, match="fixed"):
            generate_coercion_ecode(a, b)

    def test_generated_code_is_valid_ecode(self, v1, v2):
        code = generate_coercion_ecode(v2, v1)
        compile_procedure(code)  # must parse, check and compile
