"""Whole-route fusion: generated-source audits, fused/staged parity and
cache bounds.

The source audits pin the properties fusion exists for: one function per
route (no per-step dispatch), the DCG scalar-run struct fusion preserved
inside it, and dead wire fields skipped arithmetically instead of
decoded.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import response_v2
from repro.errors import DecodeError
from repro.morph import transform as transform_mod
from repro.morph.receiver import MorphReceiver
from repro.pbio import context as context_mod
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import records_equal
from repro.pbio.registry import FormatRegistry


def _fused_receiver(registry, handler_fmt, sink):
    receiver = MorphReceiver(registry, use_fusion=True)
    receiver.register_handler(handler_fmt, sink.append)
    return receiver


def _staged_receiver(registry, handler_fmt, sink):
    receiver = MorphReceiver(registry, use_fusion=False)
    receiver.register_handler(handler_fmt, sink.append)
    return receiver


# ---------------------------------------------------------------------------
# Generated-source audits
# ---------------------------------------------------------------------------


class TestFusedSource:
    def test_chain_route_is_one_function_without_step_dispatch(
        self, echo_registry, v1, v2
    ):
        got = []
        receiver = _fused_receiver(echo_registry, v1, got)
        sender = PBIOContext(echo_registry)
        receiver.process(sender.encode(v2, response_v2(3)))
        route = receiver.route_for(v2)
        assert route.fused is not None
        source = route.fused.source("<")
        # a single generated function; the staged path's per-step
        # TransformChain.apply dispatch is gone
        assert source.count("def ") == 1
        assert ".apply(" not in source
        assert "TransformChain" not in source

    def test_scalar_run_struct_fusion_survives_inlining(
        self, echo_registry, v1, v2
    ):
        got = []
        receiver = _fused_receiver(echo_registry, v1, got)
        sender = PBIOContext(echo_registry)
        receiver.process(sender.encode(v2, response_v2(2)))
        source = receiver.route_for(v2).fused.source("<")
        # the decode fragment still unpacks scalar runs through the
        # cached struct table, exactly like the standalone DCG decoder
        assert "_S[" in source and ".unpack_from(" in source

    def test_chain2_prunes_stores_into_dead_v0_fields(
        self, echo_registry, v0, v2
    ):
        got = []
        receiver = _fused_receiver(echo_registry, v0, got)
        sender = PBIOContext(echo_registry)
        incoming = response_v2(3)
        receiver.process(sender.encode(v2, incoming))
        route = receiver.route_for(v2)
        assert route.chain is not None and len(route.chain) == 2
        source = route.fused.source("<")
        # v0 has no src/sink lists: the v2->v1 step's stores into them
        # (and the counters feeding only them) are dead and pruned
        assert "src_list" not in source
        assert "sink_list" not in source
        assert set(got[0].keys()) == {"channel_id", "member_count", "member_list"}

    def test_dead_top_level_field_is_skipped_not_decoded(self):
        writer = IOFormat(
            "Evo",
            [
                IOField("x", "integer", 4),
                IOField("junk", "integer", 8),
                IOField("tag", "string"),
            ],
            version="2",
        )
        reader = IOFormat(
            "Evo",
            [IOField("x", "integer", 4), IOField("tag", "string")],
            version="1",
        )
        registry = FormatRegistry()
        got = []
        receiver = _fused_receiver(registry, reader, got)
        sender = PBIOContext(registry)
        receiver.process(sender.encode(writer, {"x": 7, "junk": 99, "tag": "t"}))
        route = receiver.route_for(writer)
        assert route.fused is not None
        assert route.fused.wire_live == {"x", "tag"}
        source = route.fused.source("<")
        # `junk` is never materialized: no dict entry, just an offset bump
        assert "'junk'" not in source
        assert "off += " in source
        assert got == [{"x": 7, "tag": "t"}]

    def test_fusion_knob_requires_codegen_and_no_validation(self, echo_registry, v1, v2):
        sender = PBIOContext(echo_registry)
        for kwargs in (
            {"use_fusion": False},
            {"use_codegen": False},
            {"validate_transforms": True},
        ):
            got = []
            receiver = MorphReceiver(echo_registry, **kwargs)
            receiver.register_handler(v1, got.append)
            receiver.process(sender.encode(v2, response_v2(2)))
            assert receiver.route_for(v2).fused is None
            assert len(got) == 1


# ---------------------------------------------------------------------------
# Fused vs staged parity
# ---------------------------------------------------------------------------


class TestFusedStagedParity:
    def test_records_and_counters_match_over_a_stream(
        self, echo_registry, v0, v2
    ):
        fused_got, staged_got = [], []
        fused_rx = _fused_receiver(echo_registry, v0, fused_got)
        staged_rx = _staged_receiver(echo_registry, v0, staged_got)
        sender = PBIOContext(echo_registry)
        for i in range(4):
            wire = sender.encode(v2, response_v2(i))
            fused_rx.process(wire)
            staged_rx.process(wire)
        assert len(fused_got) == len(staged_got) == 4
        for fused_rec, staged_rec in zip(fused_got, staged_got):
            assert records_equal(fused_rec, staged_rec)
        assert fused_rx.stats.snapshot() == staged_rx.stats.snapshot()

    def test_big_endian_wire_parity(self, echo_registry, v1, v2):
        fused_got, staged_got = [], []
        fused_rx = _fused_receiver(echo_registry, v1, fused_got)
        staged_rx = _staged_receiver(echo_registry, v1, staged_got)
        sender = PBIOContext(echo_registry, byte_order="big")
        wire = sender.encode(v2, response_v2(3))
        fused_rx.process(wire)
        staged_rx.process(wire)
        assert records_equal(fused_got[0], staged_got[0])

    def test_truncated_payload_rejected_identically(self, echo_registry, v1, v2):
        import struct

        from repro.pbio.buffer import HEADER_SIZE

        sender = PBIOContext(echo_registry)
        wire = sender.encode(v2, response_v2(3))
        # chop the payload mid-field and re-declare the shorter length so
        # the header check passes and the fused decode bounds must catch it
        truncated = bytearray(wire[: HEADER_SIZE + 6])
        truncated[16:20] = struct.pack("<I", 6)
        for receiver in (
            _fused_receiver(echo_registry, v1, []),
            _staged_receiver(echo_registry, v1, []),
        ):
            with pytest.raises(DecodeError):
                receiver.process(bytes(truncated))

    def test_fused_route_survives_record_factory_eviction(
        self, echo_registry, v1, v2
    ):
        got = []
        receiver = _fused_receiver(echo_registry, v1, got)
        sender = PBIOContext(echo_registry)
        receiver.process(sender.encode(v2, response_v2(2)))
        # simulate satellite cache churn evicting every memoized factory
        transform_mod._record_factories.clear()
        receiver.process(sender.encode(v2, response_v2(3)))
        assert len(got) == 2 and got[1]["member_count"] == 3


# ---------------------------------------------------------------------------
# Cache bounds
# ---------------------------------------------------------------------------


class TestCacheBounds:
    def test_route_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(MorphReceiver, "MAX_ROUTES", 4)
        registry = FormatRegistry()
        receiver = MorphReceiver(registry)
        receiver.register_default_handler(lambda fmt, rec: None)
        sender = PBIOContext(registry)
        for i in range(10):
            fmt = IOFormat(f"Churn{i}", [IOField("x", "integer", 4)])
            receiver.process(sender.encode(fmt, {"x": i}))
        assert len(receiver._routes) <= 4
        # the newest formats won the FIFO eviction
        assert receiver.route_for(fmt) is not None

    def test_codec_caches_are_bounded(self, monkeypatch):
        monkeypatch.setattr(context_mod, "CODEC_CACHE_MAX", 3)
        ctx = PBIOContext()
        for i in range(8):
            fmt = IOFormat(f"Codec{i}", [IOField("x", "integer", 4)])
            ctx.decode(ctx.encode(fmt, {"x": 1}))
        assert ctx.generated_encoder_count <= 3
        assert ctx.generated_decoder_count <= 3

    def test_record_factory_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(transform_mod, "RECORD_FACTORY_CACHE_MAX", 4)
        for i in range(10):
            fmt = IOFormat(f"Factory{i}", [IOField("x", "integer", 4)])
            transform_mod.growable_record(fmt)
        assert len(transform_mod._record_factories) <= 4
