"""Tests for importance-weighted diff / MaxMatch (the paper's future-work
refinement: "the ability to weight different fields and sub-fields based
on some measure of importance")."""

import pytest
from hypothesis import given

from repro.morph.diff import (
    diff,
    mismatch_ratio,
    weighted_diff,
    weighted_mismatch_ratio,
)
from repro.morph.maxmatch import max_match, score_pair
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry

from tests.strategies import io_formats


def fmt(name, fields, version=None):
    return IOFormat(name, fields, version=version)


class TestWeightedWeight:
    def test_defaults_match_unweighted(self):
        f = fmt("F", [IOField("a", "integer"), IOField("b", "string")])
        assert f.weighted_weight == f.weight == 2

    def test_importance_sums(self):
        f = fmt("F", [IOField("a", "integer", importance=3.0),
                      IOField("b", "string", importance=0.5)])
        assert f.weighted_weight == 3.5

    def test_complex_importance_scales_subtree(self):
        inner = fmt("I", [IOField("x", "integer"), IOField("y", "integer")])
        f = fmt("F", [IOField("sub", "complex", subformat=inner, importance=2.0)])
        assert f.weighted_weight == 4.0

    def test_negative_importance_rejected(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError, match="importance"):
            IOField("a", "integer", importance=-1)

    def test_importance_not_part_of_identity(self):
        a = fmt("F", [IOField("x", "integer", importance=1.0)])
        b = fmt("F", [IOField("x", "integer", importance=9.0)])
        assert a == b
        assert a.format_id == b.format_id


class TestWeightedDiff:
    def test_missing_field_contributes_importance(self):
        a = fmt("F", [IOField("critical", "integer", importance=10.0),
                      IOField("shared", "integer")])
        b = fmt("F", [IOField("shared", "integer")])
        assert weighted_diff(a, b) == 10.0
        assert diff(a, b) == 1  # the unweighted metric sees one field

    def test_missing_complex_scales(self):
        inner = fmt("I", [IOField("x", "integer"), IOField("y", "integer")])
        a = fmt("F", [IOField("sub", "complex", subformat=inner, importance=3.0)])
        b = fmt("F", [IOField("other", "integer")])
        assert weighted_diff(a, b) == 6.0

    def test_nested_recursion_scales(self):
        inner_a = fmt("I", [IOField("x", "integer", importance=4.0),
                            IOField("y", "integer")])
        inner_b = fmt("I", [IOField("y", "integer")])
        a = fmt("F", [IOField("sub", "complex", subformat=inner_a, importance=0.5)])
        b = fmt("F", [IOField("sub", "complex", subformat=inner_b)])
        assert weighted_diff(a, b) == 2.0  # 0.5 * 4.0

    def test_weighted_ratio(self):
        a = fmt("F", [IOField("vital", "integer", importance=9.0),
                      IOField("meh", "string", importance=1.0)])
        b = fmt("F", [IOField("meh", "string")])
        # b is missing 'vital': 9 of a's 10 importance mass
        assert weighted_mismatch_ratio(b, a) == pytest.approx(0.9)

    @given(io_formats(), io_formats())
    def test_default_importance_reduces_to_unweighted(self, f1, f2):
        assert weighted_diff(f1, f2) == diff(f1, f2)
        assert weighted_mismatch_ratio(f1, f2) == pytest.approx(
            mismatch_ratio(f1, f2)
        )


class TestWeightedMaxMatch:
    def build(self):
        # the reader wants 'payload' badly and barely cares about 'trace'
        reader = fmt(
            "M",
            [
                IOField("payload", "string", importance=10.0),
                IOField("trace", "string", importance=0.1),
            ],
            version="reader",
        )
        # candidate A supplies payload but not trace
        cand_a = fmt("M", [IOField("payload", "string"),
                           IOField("extra", "integer")], version="a")
        # candidate B supplies trace but not payload
        cand_b = fmt("M", [IOField("trace", "string"),
                           IOField("extra", "integer")], version="b")
        return reader, cand_a, cand_b

    def test_unweighted_cannot_tell_the_candidates_apart(self):
        reader, cand_a, cand_b = self.build()
        score_a = score_pair(cand_a, reader)
        score_b = score_pair(cand_b, reader)
        assert score_a.sort_key() == score_b.sort_key()

    def test_weighted_prefers_the_important_field(self):
        reader, cand_a, cand_b = self.build()
        best = max_match([cand_b, cand_a], [reader], 100, 1.0, weighted=True)
        assert best is not None
        assert best.f1 is cand_a  # supplies the importance-10 field

    def test_weighted_threshold_bounds_importance_mass(self):
        reader, cand_a, cand_b = self.build()
        # cand_b misses 10.0 of reader's 10.1 mass: Mr_w ~ 0.99
        assert max_match(cand_b, [reader], 100, 0.5, weighted=True) is None
        # cand_a misses only 0.1 of 10.1: Mr_w ~ 0.0099
        assert max_match(cand_a, [reader], 100, 0.5, weighted=True) is not None


class TestWeightedReceiver:
    def test_weighted_receiver_accepts_what_matters(self):
        reader = fmt(
            "M",
            [
                IOField("payload", "string", importance=10.0),
                IOField("trace", "string", importance=0.1),
            ],
            version="reader",
        )
        sender_fmt = fmt("M", [IOField("payload", "string")], version="new")
        registry = FormatRegistry()
        sender = PBIOContext(registry)
        wire = sender.encode(sender_fmt, {"payload": "the data"})

        strict_by_count = MorphReceiver(registry, mismatch_threshold=0.3)
        strict_by_count.register_handler(reader, lambda rec: rec)
        # unweighted: missing 1 of 2 fields -> Mr 0.5 > 0.3 -> reject
        from repro.errors import NoMatchError

        with pytest.raises(NoMatchError):
            strict_by_count.process(wire)

        weighted = MorphReceiver(registry, mismatch_threshold=0.3, weighted=True)
        weighted.register_handler(reader, lambda rec: rec)
        out = weighted.process(wire)
        assert out == {"payload": "the data", "trace": ""}
