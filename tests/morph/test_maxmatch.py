"""Unit tests for the MaxMatch format-pair selection."""

import pytest

from repro.morph.maxmatch import max_match, perfect_matches, score_pair
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat


def fmt(name, field_names, version=None):
    return IOFormat(name, [IOField(n, "integer") for n in field_names],
                    version=version)


A = fmt("M", ["a", "b", "c"], version="a")
A_CLONE = fmt("M", ["a", "b", "c"], version="a")
NEAR = fmt("M", ["a", "b", "d"], version="near")      # 1 field renamed
FAR = fmt("M", ["x", "y", "z"], version="far")        # nothing shared
SUPERSET = fmt("M", ["a", "b", "c", "d"], version="sup")


class TestScorePair:
    def test_perfect(self):
        result = score_pair(A, A_CLONE)
        assert result.is_perfect
        assert result.sort_key() == (0.0, 0)

    def test_asymmetric(self):
        result = score_pair(A, SUPERSET)
        assert result.diff_forward == 0   # everything in A exists in SUPERSET
        assert result.diff_reverse == 1   # d is missing from A
        assert result.mismatch == pytest.approx(1 / 4)


class TestSelection:
    def test_perfect_match_wins(self):
        best = max_match(A, [FAR, NEAR, A_CLONE])
        assert best is not None and best.is_perfect
        assert best.f2 is A_CLONE

    def test_least_mismatch_wins(self):
        best = max_match(A, [FAR, NEAR], diff_threshold=10, mismatch_threshold=1.0)
        assert best is not None
        assert best.f2 is NEAR

    def test_none_when_thresholds_exclude_all(self):
        assert max_match(A, [FAR], diff_threshold=0, mismatch_threshold=0.0) is None

    def test_diff_threshold_zero_requires_forward_subset(self):
        # diff(A, SUPERSET) == 0, so it passes threshold 0 even though the
        # reverse direction differs
        best = max_match(A, [SUPERSET], diff_threshold=0, mismatch_threshold=1.0)
        assert best is not None and not best.is_perfect

    def test_both_zero_thresholds_mean_perfect_only(self):
        assert max_match(A, [SUPERSET], 0, 0.0) is None
        assert max_match(A, [A_CLONE], 0, 0.0) is not None

    def test_mismatch_threshold_filters(self):
        # Mr(A, NEAR) = 1/3
        assert max_match(A, [NEAR], 10, 0.3) is None
        assert max_match(A, [NEAR], 10, 0.34) is not None

    def test_diff_threshold_filters(self):
        # diff(A, NEAR) = 1
        assert max_match(A, [NEAR], 0, 1.0) is None
        assert max_match(A, [NEAR], 1, 1.0) is not None

    def test_multiple_candidates_cross_product(self):
        best = max_match([FAR, A], [NEAR, A_CLONE])
        assert best is not None
        assert best.f1 is A and best.f2 is A_CLONE

    def test_tie_breaks_on_enumeration_order(self):
        clone2 = fmt("M", ["a", "b", "c"], version="a")
        best = max_match(A, [A_CLONE, clone2])
        assert best.f2 is A_CLONE

    def test_least_diff_breaks_mr_ties(self):
        # craft two targets with equal Mr but different forward diff
        target1 = fmt("M", ["a", "b", "c", "d"], version="t1")  # Mr=1/4, diff=0
        target2 = fmt("M", ["a", "b", "e", "d"], version="t2")  # Mr=2/4, diff=1
        best = max_match(A, [target2, target1], 10, 1.0)
        assert best.f2 is target1

    def test_empty_target_set(self):
        assert max_match(A, []) is None

    def test_single_format_convenience(self):
        assert max_match(A, [A_CLONE]).is_perfect


class TestPerfectMatches:
    def test_enumeration(self):
        results = perfect_matches([A, FAR], [A_CLONE, NEAR])
        assert len(results) == 1
        assert results[0].f1 is A and results[0].f2 is A_CLONE

    def test_empty(self):
        assert perfect_matches([A], [FAR]) == []
