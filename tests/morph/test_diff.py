"""Unit + property tests for Algorithm 1 (diff) and the Mismatch Ratio."""

import pytest
from hypothesis import given

from repro.morph.diff import diff, is_perfect_match, mismatch_ratio
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat

from tests.strategies import io_formats


def fmt(name, *fields, version=None):
    return IOFormat(name, list(fields), version=version)


class TestFlatDiff:
    def test_identical_formats_diff_zero(self):
        a = fmt("F", IOField("x", "integer"), IOField("y", "float"))
        b = fmt("F", IOField("x", "integer"), IOField("y", "float"))
        assert diff(a, b) == 0
        assert diff(b, a) == 0
        assert is_perfect_match(a, b)

    def test_missing_field_counts_one(self):
        a = fmt("F", IOField("x", "integer"), IOField("y", "float"))
        b = fmt("F", IOField("x", "integer"))
        assert diff(a, b) == 1
        assert diff(b, a) == 0

    def test_type_change_counts_both_ways(self):
        a = fmt("F", IOField("x", "integer"))
        b = fmt("F", IOField("x", "float"))
        assert diff(a, b) == 1
        assert diff(b, a) == 1

    def test_field_order_is_irrelevant(self):
        a = fmt("F", IOField("x", "integer"), IOField("y", "float"))
        b = fmt("F", IOField("y", "float"), IOField("x", "integer"))
        assert is_perfect_match(a, b)

    def test_size_widening_still_matches(self):
        a = fmt("F", IOField("x", "integer", 4))
        b = fmt("F", IOField("x", "integer", 8))
        assert is_perfect_match(a, b)

    def test_arrayness_mismatch_counts(self):
        a = fmt("F", IOField("x", "integer"))
        b = fmt("F", IOField("n", "integer"),
                IOField("x", "integer", array=ArraySpec(length_field="n")))
        assert diff(a, b) == 1


class TestComplexDiff:
    def test_complex_field_recurses(self):
        inner_a = fmt("I", IOField("p", "integer"), IOField("q", "integer"))
        inner_b = fmt("I", IOField("p", "integer"))
        a = fmt("F", IOField("sub", "complex", subformat=inner_a))
        b = fmt("F", IOField("sub", "complex", subformat=inner_b))
        assert diff(a, b) == 1  # q missing
        assert diff(b, a) == 0

    def test_missing_complex_contributes_weight(self):
        inner = fmt("I", IOField("p", "integer"), IOField("q", "integer"),
                    IOField("r", "string"))
        a = fmt("F", IOField("sub", "complex", subformat=inner))
        b = fmt("F", IOField("other", "integer"))
        assert diff(a, b) == inner.weight == 3

    def test_complex_vs_basic_same_name(self):
        inner = fmt("I", IOField("p", "integer"))
        a = fmt("F", IOField("sub", "complex", subformat=inner))
        b = fmt("F", IOField("sub", "integer"))
        assert diff(a, b) == 1  # weight of the complex field
        assert diff(b, a) == 1  # basic field has no basic counterpart

    def test_echo_formats(self, v1, v2):
        # hand-computed in the paper's example: v2's member entries carry
        # two flags v1 lacks; v1 carries 2 counts + 2 two-field lists
        assert diff(v2, v1) == 2
        assert diff(v1, v2) == 6


class TestMismatchRatio:
    def test_perfect_pair_ratio_zero(self, v1):
        assert mismatch_ratio(v1, v1) == 0.0

    def test_echo_ratio(self, v1, v2):
        # W_v1 = channel_id + member_count + member_list{info,ID}
        #        + src_count + src_list{2} + sink_count + sink_list{2} = 10
        # Mr(v2, v1) = diff(v1, v2) / W_v1 = 6 / 10
        # W_v2 = channel_id + member_count + member_list{info,ID,2 flags} = 6
        assert v1.weight == 10 and v2.weight == 6
        assert mismatch_ratio(v2, v1) == pytest.approx(6 / 10)
        # Mr(v1, v2) = diff(v2, v1) / W_v2 = 2 / 6
        assert mismatch_ratio(v1, v2) == pytest.approx(2 / 6)

    def test_papers_normalization_example(self):
        # two 1-field formats, totally different: small diff, Mr = 1
        a = fmt("F", IOField("only_a", "integer"))
        b = fmt("F", IOField("only_b", "integer"))
        # vs a 100-field pair sharing 98 fields: bigger diff, tiny Mr
        shared = [IOField(f"s{i}", "integer") for i in range(98)]
        big_a = fmt("G", *(shared + [IOField("xa", "integer"), IOField("ya", "integer")]))
        big_b = fmt("G", *(shared + [IOField("xb", "integer"), IOField("yb", "integer")]))
        assert mismatch_ratio(a, b) == 1.0
        assert mismatch_ratio(big_a, big_b) == pytest.approx(2 / 100)
        assert diff(a, b) < diff(big_a, big_b)  # diff alone misleads
        assert mismatch_ratio(big_a, big_b) < mismatch_ratio(a, b)


class TestDiffProperties:
    @given(io_formats())
    def test_reflexive(self, fmt_):
        assert diff(fmt_, fmt_) == 0
        assert mismatch_ratio(fmt_, fmt_) == 0.0

    @given(io_formats(), io_formats())
    def test_bounded_by_weight(self, f1, f2):
        assert 0 <= diff(f1, f2) <= f1.weight
        assert 0.0 <= mismatch_ratio(f1, f2) <= 1.0

    @given(io_formats(), io_formats())
    def test_perfect_match_is_symmetric(self, f1, f2):
        assert is_perfect_match(f1, f2) == is_perfect_match(f2, f1)

    @given(io_formats())
    def test_structural_copy_is_perfect(self, fmt_):
        clone = IOFormat(fmt_.name, list(fmt_.fields), version=fmt_.version)
        assert is_perfect_match(fmt_, clone)
