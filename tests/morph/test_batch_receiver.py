"""MorphReceiver.process_batch — the zero-copy batch decode hot path.

The conftest's autouse fixture runs every test here against both the
fused and the staged pipeline, so each assertion doubles as a
fused-vs-staged equivalence check on the batch path too.

The core contracts:

* batched processing is observationally identical to per-message
  processing — records, order, and every ``morph.receiver.*`` counter;
* records decoded from a shared frame buffer never alias it — mutating
  the buffer after decode must not change a delivered record;
* hostile frames are clean :class:`~repro.errors.DecodeError`\\ s;
* with containment on, a poisoned message dead-letters *alone* (with
  its own copy of the bytes) while the rest of the batch delivers.
"""

import pytest

from repro import obs
from repro.errors import DecodeError
from repro.morph.receiver import MorphReceiver
from repro.net.batch import pack_batch
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry, TransformSpec

EVT = IOFormat(
    "BatchEvt",
    [IOField("n", "integer"), IOField("tag", "string")],
    version="1.0",
)
EVT_V2 = IOFormat(
    "ChainEvt",
    [IOField("n", "integer"), IOField("extra", "integer")],
    version="2.0",
)
EVT_V1 = IOFormat(
    "ChainEvt", [IOField("n", "integer")], version="1.0"
)
V2_TO_V1 = TransformSpec(
    source=EVT_V2, target=EVT_V1, code="old.n = new.n;",
    description="ChainEvt 2.0 -> 1.0",
)


def make_receiver(fmt, got, **kwargs):
    receiver = MorphReceiver(registry=FormatRegistry(), **kwargs)
    receiver.register_handler(fmt, got.append)
    return receiver


def encode_all(registry, fmt, records):
    ctx = PBIOContext(registry)
    return [ctx.encode(fmt, r) for r in records]


class TestParityWithPerMessageProcessing:
    def test_identity_traffic_records_and_counters_match(self):
        records = [
            EVT.make_record(n=i, tag=f"t{i}") for i in range(17)
        ]
        got_single, got_batch = [], []
        single = make_receiver(EVT, got_single)
        batched = make_receiver(EVT, got_batch)
        wires = encode_all(single.registry, EVT, records)
        for wire in wires:
            single.process(wire)
        batched.process_batch(pack_batch(wires))
        assert got_batch == got_single == records
        assert batched.stats.snapshot() == single.stats.snapshot()
        assert batched.stats.messages == len(records)

    def test_morph_chain_records_and_counters_match(self):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1)
        got_single, got_batch = [], []
        single = MorphReceiver(registry=registry)
        single.register_handler(EVT_V1, got_single.append)
        batched = MorphReceiver(registry=FormatRegistry())
        batched.registry.register_transform(V2_TO_V1)
        batched.register_handler(EVT_V1, got_batch.append)
        wires = encode_all(
            registry, EVT_V2,
            [EVT_V2.make_record(n=i, extra=i * 7) for i in range(9)],
        )
        for wire in wires:
            single.process(wire)
        batched.process_batch(pack_batch(wires))
        assert got_batch == got_single
        assert [r["n"] for r in got_batch] == list(range(9))
        assert batched.stats.snapshot() == single.stats.snapshot()
        assert batched.stats.morphed == 9

    def test_mixed_formats_inside_one_frame(self):
        """Alternating format ids defeat the hoisted route lookup's
        last-format cache — it must re-resolve on every switch."""
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1)
        got = []
        receiver = MorphReceiver(registry=registry)
        receiver.register_handler(EVT, got.append)
        receiver.register_handler(EVT_V1, got.append)
        ctx = PBIOContext(registry)
        wires = []
        for i in range(8):
            wires.append(ctx.encode(EVT, EVT.make_record(n=i, tag="x")))
            wires.append(
                ctx.encode(EVT_V2, EVT_V2.make_record(n=i, extra=1))
            )
        receiver.process_batch(pack_batch(wires))
        assert len(got) == 16
        assert receiver.stats.messages == 16
        assert receiver.stats.morphed == 8

    def test_parity_holds_with_observability_enabled(self):
        obs.enable(registry=obs.Registry())
        try:
            records = [EVT.make_record(n=i, tag="o") for i in range(5)]
            got_single, got_batch = [], []
            single = make_receiver(EVT, got_single)
            batched = make_receiver(EVT, got_batch)
            wires = encode_all(single.registry, EVT, records)
            for wire in wires:
                single.process(wire)
            batched.process_batch(pack_batch(wires))
            assert got_batch == got_single == records
            assert batched.stats.snapshot() == single.stats.snapshot()
        finally:
            obs.disable(reset=True)

    def test_interpretive_receiver_takes_the_fallback_path(self):
        records = [EVT.make_record(n=i, tag="i") for i in range(6)]
        got = []
        receiver = make_receiver(EVT, got, use_codegen=False)
        wires = encode_all(receiver.registry, EVT, records)
        receiver.process_batch(pack_batch(wires))
        assert got == records
        assert receiver.stats.messages == len(records)


class TestZeroCopyAliasing:
    def test_records_survive_buffer_mutation_after_decode(self):
        """Decoded records must own their values: scribbling over the
        shared frame buffer after process_batch returns cannot reach
        them.  (Runs on both decode paths via the pipeline fixture.)"""
        records = [
            EVT.make_record(n=i, tag=f"payload-{i}" * 3) for i in range(6)
        ]
        got = []
        receiver = make_receiver(EVT, got)
        wires = encode_all(receiver.registry, EVT, records)
        frame = bytearray(pack_batch(wires))
        receiver.process_batch(frame)
        frame[:] = b"\xff" * len(frame)  # poison the shared buffer
        assert got == records
        assert [r["tag"] for r in got] == [f"payload-{i}" * 3 for i in range(6)]

    def test_morphed_records_survive_buffer_mutation(self):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1)
        got = []
        receiver = MorphReceiver(registry=registry)
        receiver.register_handler(EVT_V1, got.append)
        wires = encode_all(
            registry, EVT_V2,
            [EVT_V2.make_record(n=i, extra=i) for i in range(4)],
        )
        frame = bytearray(pack_batch(wires))
        receiver.process_batch(frame)
        frame[:] = b"\x00" * len(frame)
        assert [r["n"] for r in got] == list(range(4))


class TestHostileBatchFrames:
    def _wires(self):
        receiver = make_receiver(EVT, [])
        return receiver, encode_all(
            receiver.registry, EVT,
            [EVT.make_record(n=i, tag="h") for i in range(3)],
        )

    def test_truncated_frame_raises_decode_error(self):
        receiver, wires = self._wires()
        frame = pack_batch(wires)
        with pytest.raises(DecodeError):
            receiver.process_batch(frame[:-3])

    def test_corrupt_inner_message_raises_decode_error(self):
        receiver, wires = self._wires()
        # truncate the middle message *before* framing: the frame itself
        # is valid, the contained message is not
        broken = [wires[0], wires[1][:-2], wires[2]]
        with pytest.raises(DecodeError):
            receiver.process_batch(pack_batch(broken))

    def test_counters_match_per_message_arm_up_to_the_failure(self):
        """A mid-batch decode failure leaves the same counter trail the
        per-message loop would: the two good-then-failing messages are
        counted, the never-reached tail is not."""
        receiver, wires = self._wires()
        broken = [wires[0], wires[1][:-2], wires[2]]
        with pytest.raises(DecodeError):
            receiver.process_batch(pack_batch(broken))
        reference = make_receiver(EVT, [])
        reference.registry  # same planning inputs as `receiver`
        for wire in broken:
            try:
                reference.process(wire)
            except DecodeError:
                break
        assert receiver.stats.snapshot() == reference.stats.snapshot()


class TestContainment:
    def test_poisoned_message_dead_letters_alone(self):
        records = [EVT.make_record(n=i, tag="c") for i in range(5)]
        got = []
        receiver = make_receiver(EVT, got, contain_failures=True)
        wires = encode_all(receiver.registry, EVT, records)
        wires[2] = wires[2][:-4]  # poison the middle message
        frame = bytearray(pack_batch(wires))
        results = receiver.process_batch(frame)
        assert [r["n"] for r in got] == [0, 1, 3, 4]
        assert len(results) == 5 and results[2] is None
        letters = receiver.dead_letters
        assert len(letters) == 1
        assert letters[0].stage == "decode"

    def test_dead_letter_owns_its_bytes(self):
        """The DLQ must copy out of the shared frame buffer — a retry
        after the buffer is reused has to see the original bytes."""
        got = []
        receiver = make_receiver(EVT, got, contain_failures=True)
        wires = encode_all(
            receiver.registry, EVT, [EVT.make_record(n=7, tag="keep")]
        )
        poisoned = wires[0][:-4]
        frame = bytearray(pack_batch([poisoned]))
        receiver.process_batch(frame)
        (letter,) = receiver.dead_letters
        saved = bytes(letter.data)
        frame[:] = b"\xee" * len(frame)
        assert bytes(letter.data) == saved == poisoned

    def test_malformed_frame_dead_letters_whole(self):
        receiver = make_receiver(EVT, [], contain_failures=True)
        wires = encode_all(
            receiver.registry, EVT, [EVT.make_record(n=1, tag="f")]
        )
        assert receiver.process_batch(pack_batch(wires)[:-1]) == []
        (letter,) = receiver.dead_letters
        assert letter.stage == "decode"
