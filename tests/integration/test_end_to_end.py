"""Cross-module integration tests: the full paper scenario assembled from
every subsystem at once."""

import pytest

from repro.bench.workloads import response_v1_from_v2, response_v2
from repro.echo.process import EChoProcess
from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2, V2_TO_V1_TRANSFORM
from repro.morph.receiver import MorphReceiver
from repro.net.link import WIRELESS_11MBPS, LinkSpec
from repro.net.transport import Network
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import records_equal
from repro.pbio.registry import FormatRegistry

pytestmark = pytest.mark.integration


class TestQuickstartScenario:
    """The README quickstart, as an executable specification."""

    def test_temperature_reading_evolution(self):
        old_fmt = IOFormat("Reading", [IOField("celsius", "float")], version="1")
        new_fmt = IOFormat("Reading", [IOField("kelvin", "float")], version="2")
        registry = FormatRegistry()
        registry.add_transform(new_fmt, old_fmt,
                               "old.celsius = new.kelvin - 273.15;")
        got = []
        receiver = MorphReceiver(registry)
        receiver.register_handler(old_fmt, got.append)
        sender = PBIOContext(registry)
        receiver.process(sender.encode(new_fmt, new_fmt.make_record(kelvin=300.0)))
        assert got[0]["celsius"] == pytest.approx(26.85)


class TestPaperScenarioOverRealStack:
    """v2.0 creator + v1.0 subscriber, wire bytes over simulated links."""

    def test_channel_open_response_morphs_in_flight(self):
        net = Network()
        registry = FormatRegistry()
        creator = EChoProcess(net, "creator", registry, version="2.0")
        old = EChoProcess(net, "old", registry, version="1.0")
        creator.create_channel("c")
        old.open_channel("c", "creator", as_sink=True)
        net.run()
        assert old.channel("c").ready
        assert old.control.stats.morphed == 1

    def test_many_subscribers_cache_amortizes(self):
        net = Network()
        registry = FormatRegistry()
        creator = EChoProcess(net, "creator", registry, version="2.0")
        old = EChoProcess(net, "old", registry, version="1.0")
        creator.create_channel("c")
        old.open_channel("c", "creator", as_sink=True)
        net.run()
        # 9 more joins: 'old' receives 9 more v2.0 broadcast responses
        for i in range(9):
            peer = EChoProcess(net, f"peer-{i}", registry, version="2.0")
            peer.open_channel("c", "creator", as_sink=True)
        net.run()
        stats = old.control.stats
        assert stats.messages == 10
        assert stats.compiled_chains == 1  # compiled once, reused 9 times
        assert stats.cache_hits == 9

    def test_message_sizes_affect_virtual_latency(self):
        """Table 1's point: on a slow link, the smaller v2.0 encoding
        beats sending backward-compatible v1.0 messages."""
        members = 2000
        v2_rec = response_v2(members)
        v1_rec = response_v1_from_v2(v2_rec)
        ctx = PBIOContext()
        v2_wire = ctx.encode(RESPONSE_V2, v2_rec)
        v1_wire = ctx.encode(RESPONSE_V1, v1_rec)
        assert len(v1_wire) > 2 * len(v2_wire)
        t_v2 = WIRELESS_11MBPS.transmission_time(len(v2_wire))
        t_v1 = WIRELESS_11MBPS.transmission_time(len(v1_wire))
        assert t_v1 > 2 * t_v2


class TestWireCompatibilityMatrix:
    """Every (sender version, receiver version) pair interoperates."""

    @pytest.mark.parametrize("sender_version", ["1.0", "2.0"])
    @pytest.mark.parametrize("receiver_version", ["0.0", "1.0", "2.0"])
    def test_pairwise_interop(self, sender_version, receiver_version):
        net = Network()
        registry = FormatRegistry()
        creator = EChoProcess(net, "creator", registry, version=sender_version)
        sub = EChoProcess(net, "sub", registry, version=receiver_version)
        creator.create_channel("c")
        sub.open_channel("c", "creator", as_sink=True)
        net.run()
        assert sub.channel("c").ready, (
            f"{receiver_version} reader failed against {sender_version} writer"
        )

    def test_v0_sender_rejected_cleanly_when_no_forward_transform(self):
        # v0.0 responses carry no transforms at all; a strict v2.0-only
        # reader cannot reconstruct roles, but the open still resolves
        # through default-fill reconciliation (member list is shared)
        net = Network()
        registry = FormatRegistry()
        creator = EChoProcess(net, "creator", registry, version="0.0")
        sub = EChoProcess(net, "sub", registry, version="2.0")
        creator.create_channel("c")
        sub.open_channel("c", "creator", as_sink=True)
        net.run()
        channel = sub.channel("c")
        assert channel.ready
        # roles were defaulted (v0 has no role data to morph from)
        assert all(not m.is_source for m in channel.member_list())


class TestLossyLinksAndFailures:
    def test_closed_subscriber_does_not_stall_others(self):
        net = Network()
        registry = FormatRegistry()
        creator = EChoProcess(net, "creator", registry, version="2.0")
        dead = EChoProcess(net, "dead", registry, version="1.0")
        live = EChoProcess(net, "live", registry, version="1.0")
        creator.create_channel("c")
        dead.open_channel("c", "creator", as_sink=True)
        live.open_channel("c", "creator", as_sink=True)
        dead.node.close()
        net.run()
        assert live.channel("c").ready
        assert not dead.channel("c").ready
        assert net.dropped >= 1

    def test_corrupted_wire_message_raises_cleanly(self):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry)
        receiver.register_handler(RESPONSE_V1, lambda rec: rec)
        wire = bytearray(sender.encode(RESPONSE_V2, response_v2(2)))
        wire[4] ^= 0xFF  # corrupt the header version byte
        from repro.errors import DecodeError

        with pytest.raises(DecodeError):
            receiver.process(bytes(wire))

    def test_truncated_wire_message_raises_cleanly(self):
        registry = FormatRegistry()
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry)
        receiver.register_handler(RESPONSE_V2, lambda rec: rec)
        wire = sender.encode(RESPONSE_V2, response_v2(2))
        from repro.errors import DecodeError

        with pytest.raises(DecodeError):
            receiver.process(wire[: len(wire) // 2])
