"""Smoke tests for the evaluation harness: every figure/table function
runs on tiny sizes and reproduces the paper's qualitative shape."""

import pytest

from repro.bench.figures import (
    fig8_encoding,
    fig9_decoding,
    fig10_morphing,
    table1_sizes,
)

pytestmark = pytest.mark.integration

SMALL = {"1KB": 1_000, "10KB": 10_000}


class TestFig8:
    def test_shape(self):
        rows = fig8_encoding(SMALL, rounds=2)
        assert [r.label for r in rows] == ["1KB", "10KB"]
        for row in rows:
            assert row.pbio.best > 0 and row.xml.best > 0
            # paper: XML encoding is at least ~2x PBIO
            assert row.ratio > 1.5


class TestFig9:
    def test_shape(self):
        rows = fig9_decoding(SMALL, rounds=2)
        for row in rows:
            # paper: PBIO decode is much cheaper than XML parse+traverse
            assert row.ratio > 5


class TestFig10:
    def test_shape(self):
        rows = fig10_morphing(SMALL, rounds=2)
        for row in rows:
            # paper: XML/XSLT is ~an order of magnitude slower than
            # PBIO-based morphing; require a conservative 3x here to keep
            # CI robust on noisy machines
            assert row.ratio > 3


class TestTable1:
    def test_shape(self):
        rows = table1_sizes([0.1, 1.0, 10.0])
        for row in rows:
            # PBIO adds a < 30B header plus 3 bytes per string field
            # (4-byte length prefix replacing the NUL); relative overhead
            # shrinks quickly with size
            assert row.pbio_v2 < row.unencoded_v2 * 1.10 + 30 + 40
            # rollback to v1.0 roughly triples the data (members appear
            # in up to three lists)
            assert 1.5 < row.unencoded_v1 / row.unencoded_v2 < 3.5
            # XML inflates massively
            assert row.xml_v2 > 2.5 * row.unencoded_v2
            assert row.xml_v1 > row.xml_v2
        assert rows[-1].pbio_v2 < rows[-1].unencoded_v2 * 1.10

    def test_monotone_in_target(self):
        rows = table1_sizes([0.1, 1.0, 10.0])
        sizes = [r.unencoded_v2 for r in rows]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 5 * sizes[0]
