"""Every shipped example must run clean — examples are executable
documentation and double as end-to-end smoke tests."""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.integration

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert "OK" in result.stdout  # every example asserts and reports OK
