"""Thread-safety: registries and receivers are shared across threads in a
real middleware process; hammer them concurrently."""

import threading

import pytest

from repro.bench.workloads import response_v2
from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2, V2_TO_V1_TRANSFORM
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry

pytestmark = pytest.mark.integration

THREADS = 8
MESSAGES_PER_THREAD = 50


class TestConcurrentReceiver:
    def test_concurrent_morphing_of_one_format(self):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry)
        delivered = []
        lock = threading.Lock()

        def handler(record):
            with lock:
                delivered.append(record["member_count"])

        receiver.register_handler(RESPONSE_V1, handler)
        wire = sender.encode(RESPONSE_V2, response_v2(3))
        errors = []

        def worker():
            try:
                for _ in range(MESSAGES_PER_THREAD):
                    receiver.process(wire)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(delivered) == THREADS * MESSAGES_PER_THREAD
        assert set(delivered) == {3}
        # the expensive planning ran a bounded number of times (the lock
        # serializes planning; rare benign duplicates are acceptable but
        # runaway recompilation is not)
        assert receiver.stats.compiled_chains <= THREADS

    def test_concurrent_distinct_formats(self):
        registry = FormatRegistry()
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry)
        counts = {}
        lock = threading.Lock()
        formats = []
        for i in range(THREADS):
            fmt = IOFormat(
                f"Msg{i}", [IOField("v", "integer")], version=str(i)
            )
            formats.append(fmt)

            def handler(record, index=i):
                with lock:
                    counts[index] = counts.get(index, 0) + 1

            receiver.register_handler(fmt, handler)
        wires = [
            sender.encode(fmt, {"v": i}) for i, fmt in enumerate(formats)
        ]
        errors = []

        def worker(index):
            try:
                for _ in range(MESSAGES_PER_THREAD):
                    receiver.process(wires[index])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert all(counts[i] == MESSAGES_PER_THREAD for i in range(THREADS))


class TestConcurrentRegistry:
    def test_concurrent_registration(self):
        registry = FormatRegistry()
        errors = []

        def worker(start):
            try:
                for i in range(50):
                    fmt = IOFormat(
                        f"F{start}_{i}", [IOField("x", "integer")]
                    )
                    registry.register(fmt)
                    assert registry.lookup_id(fmt.format_id) is not None
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(registry) == THREADS * 50

    def test_concurrent_encode_decode_contexts(self):
        registry = FormatRegistry()
        fmt = IOFormat("Shared", [IOField("n", "integer")])
        registry.register(fmt)
        ctx = PBIOContext(registry)
        errors = []

        def worker(value):
            try:
                for _ in range(100):
                    wire = ctx.encode(fmt, {"n": value})
                    _fmt, record = ctx.decode(wire)
                    assert record["n"] == value
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert ctx.generated_encoder_count == 1
        assert ctx.generated_decoder_count == 1
