"""Failure injection: broken transforms, hostile meta-data, and runtime
faults must degrade gracefully, never silently corrupt."""

import pytest

from repro.bench.workloads import response_v2
from repro.echo.protocol import RESPONSE_V0, RESPONSE_V1, RESPONSE_V2
from repro.errors import NoMatchError, TransformError
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry

pytestmark = pytest.mark.integration


class TestBrokenTransforms:
    def test_uncompilable_transform_is_skipped_not_fatal(self):
        """A writer ships syntactically broken ECode: the receiver drops
        that chain, falls back to the next best option, and counts the
        breakage."""
        registry = FormatRegistry()
        registry.add_transform(RESPONSE_V2, RESPONSE_V1, "$$$ not C at all $$$")
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry)
        got = []
        receiver.register_handler(RESPONSE_V0, got.append)
        registry.add_transform(
            RESPONSE_V2,
            RESPONSE_V0,
            """
            int i;
            old.channel_id = new.channel_id;
            old.member_count = new.member_count;
            for (i = 0; i < new.member_count; i++) {
                old.member_list[i].info = new.member_list[i].info;
                old.member_list[i].ID = new.member_list[i].ID;
            }
            """,
        )
        receiver.process(sender.encode(RESPONSE_V2, response_v2(2)))
        assert got and got[0]["member_count"] == 2
        # NB: v2->v1->v0 would also exist if the broken hop compiled; the
        # working direct v2->v0 hop was chosen instead
        assert receiver.stats.broken_transforms == 0 or got

    def test_all_chains_broken_falls_back_to_coercion_or_reject(self):
        registry = FormatRegistry()
        registry.add_transform(RESPONSE_V2, RESPONSE_V1, "not a transform ;;;")
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry)
        got = []
        receiver.register_handler(RESPONSE_V1, got.append)
        # the broken chain is dropped; the remaining candidate is the raw
        # v2 format, whose structural match against v1 passes the default
        # thresholds (Mr = 0.6), so the message is reconciled instead
        receiver.process(sender.encode(RESPONSE_V2, response_v2(2)))
        assert receiver.stats.broken_transforms == 1
        assert receiver.stats.reconciled == 1
        assert got[0]["member_count"] == 2
        assert got[0]["src_list"] == []  # coercion cannot invent role lists

    def test_all_options_broken_and_inadmissible_rejects(self):
        a = IOFormat("T", [IOField("x", "integer")], version="a")
        b = IOFormat("T", [IOField("y", "string")], version="b")
        registry = FormatRegistry()
        registry.add_transform(a, b, "syntax error here")
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry, diff_threshold=0, mismatch_threshold=0.0)
        receiver.register_handler(b, lambda rec: rec)
        with pytest.raises(NoMatchError):
            receiver.process(sender.encode(a, {"x": 1}))
        assert receiver.stats.broken_transforms == 1

    def test_runtime_fault_in_transform_surfaces_per_message(self):
        """ECode that compiles but reads a missing field fails at message
        time with TransformError (and keeps failing — no corrupt cache)."""
        registry = FormatRegistry()
        registry.add_transform(
            RESPONSE_V2, RESPONSE_V0, "old.channel_id = new.no_such_field;"
        )
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry)
        receiver.register_handler(RESPONSE_V0, lambda rec: rec)
        wire = sender.encode(RESPONSE_V2, response_v2(1))
        for _ in range(2):
            with pytest.raises(TransformError, match="runtime"):
                receiver.process(wire)

    def test_validation_mode_catches_bad_output_before_handler(self):
        registry = FormatRegistry()
        registry.add_transform(
            RESPONSE_V2, RESPONSE_V0, "old.member_count = new.member_count;"
        )  # sets count but never fills the list
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry, validate_transforms=True)
        seen = []
        receiver.register_handler(RESPONSE_V0, seen.append)
        with pytest.raises(TransformError, match="invalid record"):
            receiver.process(sender.encode(RESPONSE_V2, response_v2(2)))
        assert seen == []  # the handler never saw the corrupt record


class TestHostileMetaData:
    def test_snapshot_with_broken_transform_loads_but_fails_lazily(self):
        """Meta-data is data: a snapshot carrying bad ECode loads fine and
        only the affected route degrades."""
        from repro.pbio.serialization import dump_registry, load_registry

        registry = FormatRegistry()
        registry.add_transform(RESPONSE_V2, RESPONSE_V1, "broken $ code")
        revived = load_registry(dump_registry(registry))
        receiver = MorphReceiver(revived)
        receiver.register_handler(RESPONSE_V1, lambda rec: rec)
        sender = PBIOContext(revived)
        receiver.process(sender.encode(RESPONSE_V2, response_v2(1)))
        assert receiver.stats.broken_transforms == 1

    def test_transform_cannot_escape_to_python(self):
        """The ECode pipeline only exposes whitelisted builtins: code that
        tries to call arbitrary Python is rejected at check time."""
        registry = FormatRegistry()
        registry.add_transform(
            RESPONSE_V2, RESPONSE_V0, 'old.channel_id = eval("__import__");'
        )
        sender = PBIOContext(registry)
        receiver = MorphReceiver(registry)
        receiver.register_handler(RESPONSE_V0, lambda rec: rec)
        receiver.process(sender.encode(RESPONSE_V2, response_v2(1)))
        # the eval-bearing chain was dropped at compile time
        assert receiver.stats.broken_transforms == 1
