"""Unit tests for IOField and ArraySpec."""

import pytest

from repro.errors import FormatError
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.types import TypeKind


SUB = IOFormat("Point", [IOField("x", "integer"), IOField("y", "integer")])


class TestArraySpec:
    def test_fixed(self):
        spec = ArraySpec(fixed_length=3)
        assert not spec.is_variable

    def test_variable(self):
        spec = ArraySpec(length_field="count")
        assert spec.is_variable

    def test_requires_exactly_one(self):
        with pytest.raises(FormatError):
            ArraySpec()
        with pytest.raises(FormatError):
            ArraySpec(fixed_length=1, length_field="n")

    def test_negative_fixed_rejected(self):
        with pytest.raises(FormatError):
            ArraySpec(fixed_length=-1)

    def test_zero_fixed_allowed(self):
        assert ArraySpec(fixed_length=0).fixed_length == 0


class TestIOFieldConstruction:
    def test_kind_from_string(self):
        field = IOField("load", "integer")
        assert field.kind is TypeKind.INTEGER
        assert field.size == 4  # default

    def test_unknown_kind_rejected(self):
        with pytest.raises(FormatError):
            IOField("x", "quaternion")

    def test_empty_name_rejected(self):
        with pytest.raises(FormatError):
            IOField("", "integer")

    def test_complex_requires_subformat(self):
        with pytest.raises(FormatError):
            IOField("p", "complex")

    def test_basic_rejects_subformat(self):
        with pytest.raises(FormatError):
            IOField("x", "integer", subformat=SUB)

    def test_explicit_size(self):
        assert IOField("x", "integer", 8).size == 8

    def test_illegal_size(self):
        with pytest.raises(FormatError):
            IOField("x", "integer", 3)

    def test_is_basic_and_complex(self):
        assert IOField("x", "integer").is_basic
        assert not IOField("x", "integer").is_complex
        complex_field = IOField("p", "complex", subformat=SUB)
        assert complex_field.is_complex
        assert not complex_field.is_basic


class TestDefaults:
    def test_scalar_default(self):
        assert IOField("x", "integer").default_instance() == 0
        assert IOField("s", "string").default_instance() == ""

    def test_explicit_default(self):
        assert IOField("x", "integer", default=7).default_instance() == 7

    def test_complex_default_is_default_record(self):
        value = IOField("p", "complex", subformat=SUB).default_instance()
        assert value == {"x": 0, "y": 0}

    def test_variable_array_default_empty(self):
        field = IOField("xs", "integer", array=ArraySpec(length_field="n"))
        assert field.default_instance() == []

    def test_fixed_array_default_filled(self):
        field = IOField("xs", "integer", array=ArraySpec(fixed_length=3), default=5)
        assert field.default_instance() == [5, 5, 5]

    def test_fixed_complex_array_defaults_are_fresh(self):
        field = IOField(
            "ps", "complex", subformat=SUB, array=ArraySpec(fixed_length=2)
        )
        value = field.default_instance()
        value[0]["x"] = 99
        assert value[1]["x"] == 0


class TestMatching:
    def test_same_name_same_kind(self):
        assert IOField("x", "integer").matches(IOField("x", "integer"))

    def test_size_differences_still_match(self):
        # a widened integer is the same field for diff purposes
        assert IOField("x", "integer", 4).matches(IOField("x", "integer", 8))

    def test_kind_mismatch(self):
        assert not IOField("x", "integer").matches(IOField("x", "float"))

    def test_name_mismatch(self):
        assert not IOField("x", "integer").matches(IOField("y", "integer"))

    def test_arrayness_must_agree(self):
        scalar = IOField("x", "integer")
        array = IOField("x", "integer", array=ArraySpec(fixed_length=2))
        assert not scalar.matches(array)


class TestIdentity:
    def test_equality_by_signature(self):
        assert IOField("x", "integer", 4) == IOField("x", "integer", 4)
        assert IOField("x", "integer", 4) != IOField("x", "integer", 8)

    def test_hashable(self):
        assert len({IOField("x", "integer"), IOField("x", "integer")}) == 1

    def test_signature_recurses_into_subformat(self):
        other_sub = IOFormat("Point", [IOField("x", "integer"), IOField("y", "float")])
        f1 = IOField("p", "complex", subformat=SUB)
        f2 = IOField("p", "complex", subformat=other_sub)
        assert f1 != f2
