"""Integration tests for the networked format server (out-of-band
meta-data as a real protocol)."""

import pytest

from repro.bench.workloads import response_v1_from_v2, response_v2
from repro.echo.protocol import (
    RESPONSE_V1,
    RESPONSE_V2,
    V2_TO_V1_TRANSFORM,
)
from repro.net.transport import Network
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import records_equal
from repro.pbio.registry import FormatRegistry
from repro.pbio.service import FormatService, MetaClient, RemoteMetaReceiver

pytestmark = pytest.mark.integration


def build_world():
    net = Network()
    service = FormatService(net)
    return net, service


class TestPublishAndFetch:
    def test_writer_publishes_reader_fetches(self):
        net, service = build_world()
        writer = MetaClient(net, "writer")
        writer.registry.register_transform(V2_TO_V1_TRANSFORM)
        writer.publish()
        net.run()
        assert RESPONSE_V2 in service.registry
        assert RESPONSE_V1 in service.registry

        reader = MetaClient(net, "reader")
        outcomes = []
        reader.fetch(RESPONSE_V2.format_id, outcomes.append)
        net.run()
        assert outcomes == [True]
        assert RESPONSE_V2 in reader.registry
        # the transform closure came along for the ride
        assert reader.registry.transforms_from(RESPONSE_V2)

    def test_fetch_of_unknown_format(self):
        net, _service = build_world()
        reader = MetaClient(net, "reader")
        outcomes = []
        reader.fetch(12345, outcomes.append)
        net.run()
        assert outcomes == [False]

    def test_duplicate_fetches_coalesce(self):
        net, service = build_world()
        writer = MetaClient(net, "writer")
        writer.registry.register(RESPONSE_V2)
        writer.publish()
        net.run()
        reader = MetaClient(net, "reader")
        outcomes = []
        reader.fetch(RESPONSE_V2.format_id, outcomes.append)
        reader.fetch(RESPONSE_V2.format_id, outcomes.append)
        net.run()
        assert outcomes == [True, True]
        assert service.stats["fetches"] == 1  # one wire round trip


class TestRemoteMetaReceiver:
    def build_flow(self):
        net, service = build_world()
        # the writer knows the new format and its retro-transform
        writer_registry = FormatRegistry()
        writer_registry.register_transform(V2_TO_V1_TRANSFORM)
        writer_meta = MetaClient(net, "writer", registry=writer_registry)
        writer_meta.publish()
        writer_ctx = PBIOContext(writer_registry)
        # the reader starts with an EMPTY registry: only v1 handler local
        reader = RemoteMetaReceiver(net, "reader")
        got = []
        reader.register_handler(RESPONSE_V1, got.append)
        return net, service, writer_meta, writer_ctx, reader, got

    def test_data_races_ahead_of_metadata(self):
        net, service, _meta, ctx, reader, got = self.build_flow()
        incoming = response_v2(3)
        wire = ctx.encode(RESPONSE_V2, incoming)
        # three messages land before any meta-data exists locally
        for _ in range(3):
            net.send("writer", "reader", wire)
        net.run()
        assert len(got) == 3
        assert records_equal(got[0], response_v1_from_v2(incoming))
        assert service.stats["fetches"] == 1  # parked + coalesced
        assert reader.unresolved == []

    def test_after_first_fetch_messages_flow_directly(self):
        net, _service, _meta, ctx, reader, got = self.build_flow()
        wire = ctx.encode(RESPONSE_V2, response_v2(2))
        net.send("writer", "reader", wire)
        net.run()
        net.send("writer", "reader", wire)
        net.run()
        assert len(got) == 2
        assert reader.receiver.stats.cache_hits >= 1

    def test_unknown_everywhere_parks_as_unresolved(self):
        net, _service, _meta, _ctx, reader, got = self.build_flow()
        alien = IOFormat("Alien", [IOField("x", "integer")])
        alien_wire = PBIOContext().encode(alien, {"x": 1})
        net.send("writer", "reader", alien_wire)
        net.run()
        assert got == []
        assert len(reader.unresolved) == 1


class TestProtocolRobustness:
    def test_malformed_json_to_service_raises_transport_error(self):
        from repro.errors import TransportError

        net, service = build_world()
        net.add_node("hostile")
        net.send("hostile", service.address, b"\xff\x00 not json")
        net.run()  # contained by the fabric, counted for inspection
        _destination, error = net.last_handler_error
        assert isinstance(error, TransportError)
        assert "malformed" in str(error)

    def test_message_without_op_rejected(self):
        from repro.errors import TransportError

        net, service = build_world()
        net.add_node("hostile")
        net.send("hostile", service.address, b'{"hello": 1}')
        net.run()
        _destination, error = net.last_handler_error
        assert isinstance(error, TransportError)
        assert "op" in str(error)

    def test_unknown_op_ignored(self):
        net, service = build_world()
        net.add_node("future-client")
        net.send("future-client", service.address, b'{"op": "hologram"}')
        net.run()  # no exception: old servers tolerate new clients
        assert service.stats["fetches"] == 0

    def test_register_with_malformed_format_raises(self):
        from repro.errors import FormatError

        net, service = build_world()
        net.add_node("writer")
        net.send(
            "writer",
            service.address,
            b'{"op": "register", "formats": [{"broken": true}]}',
        )
        net.run()
        _destination, error = net.last_handler_error
        assert isinstance(error, FormatError)

    def test_non_meta_traffic_reaches_data_handler(self):
        net, service = build_world()
        client = MetaClient(net, "client")
        seen = []
        client.data_handler = lambda source, data: seen.append((source, data))
        net.add_node("peer")
        net.send("peer", "client", b"raw application bytes")
        net.run()
        assert seen == [("peer", b"raw application bytes")]

    def test_json_from_non_service_peer_is_data(self):
        net, service = build_world()
        client = MetaClient(net, "client")
        seen = []
        client.data_handler = lambda source, data: seen.append(data)
        net.add_node("peer")
        net.send("peer", "client", b'{"op": "fetch_reply", "found": false}')
        net.run()
        assert seen  # only the service address speaks the meta protocol
