"""Vectorized BATCH1 encode: one generated routine packs K rows.

The contract that lets the echo fast path swap freely between the two
packing strategies: ``make_batch_encoder((env, payload))(rows, ctx)``
is byte-for-byte the frame ``pack_batch`` builds from the per-message
composed wires, and advances the same obs counters.
"""

import pytest

from repro import obs
from repro.errors import DecodeError, EncodeError
from repro.pbio import codegen
from repro.pbio.encode import encode_record
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.projection import project_format
from repro.net.batch import iter_batch, pack_batch, peek_batch_trace
from repro.obs.tracectx import make_context


ENVELOPE = IOFormat(
    "Env",
    [IOField("channel", "integer"), IOField("seq", "integer")],
    version="1.0",
)
PAYLOAD = IOFormat(
    "Pay",
    [
        IOField("n", "integer"),
        IOField("label", "string"),
        IOField("xs", "float", array=ArraySpec(fixed_length=3)),
    ],
    version="1.0",
)


def rows(count=4):
    return [
        (
            ENVELOPE.make_record(channel=3, seq=i),
            PAYLOAD.make_record(n=i * 10, label=f"r{i}", xs=[0.5, i, -i]),
        )
        for i in range(count)
    ]


def reference_frame(batch, ctx=None, byte_order="little"):
    datagrams = [
        b"".join(
            encode_record(fmt, rec, byte_order=byte_order)
            for fmt, rec in zip((ENVELOPE, PAYLOAD), row)
        )
        for row in batch
    ]
    return pack_batch(datagrams, ctx)


class TestByteParity:
    @pytest.mark.parametrize("order", ["little", "big"])
    def test_frame_matches_compose_then_pack(self, order):
        encode = codegen.make_batch_encoder((ENVELOPE, PAYLOAD), byte_order=order)
        batch = rows()
        assert encode(batch) == reference_frame(batch, byte_order=order)

    def test_traced_frame_matches(self):
        encode = codegen.make_batch_encoder((ENVELOPE, PAYLOAD))
        ctx = make_context()
        batch = rows(2)
        frame = encode(batch, ctx)
        assert frame == reference_frame(batch, ctx)
        peeked = peek_batch_trace(frame)
        assert peeked is not None and peeked.trace_id == ctx.trace_id

    def test_single_format_rows(self):
        encode = codegen.make_batch_encoder((PAYLOAD,))
        batch = [row[1:] for row in rows(3)]
        frame = encode(batch)
        wires = [bytes(v) for v in iter_batch(frame)]
        assert wires == [
            encode_record(PAYLOAD, rec) for (rec,) in batch
        ]

    def test_projection_rows(self):
        proj = project_format(PAYLOAD, ["n"], epoch=1)
        encode = codegen.make_batch_encoder((ENVELOPE, proj))
        env, full = rows(1)[0]
        frame = encode([(env, {"n": full["n"]})])
        (wire,) = [bytes(v) for v in iter_batch(frame)]
        assert wire.endswith(encode_record(proj, {"n": full["n"]}))


class TestContract:
    def test_empty_rows_rejected_like_pack_batch(self):
        encode = codegen.make_batch_encoder((ENVELOPE, PAYLOAD))
        with pytest.raises(DecodeError):
            encode([])

    def test_row_arity_mismatch_is_encode_error(self):
        encode = codegen.make_batch_encoder((ENVELOPE, PAYLOAD))
        with pytest.raises(EncodeError):
            encode([(ENVELOPE.make_record(channel=1, seq=0),)])

    def test_missing_field_is_encode_error(self):
        encode = codegen.make_batch_encoder((ENVELOPE, PAYLOAD))
        with pytest.raises(EncodeError):
            encode([(ENVELOPE.make_record(channel=1, seq=0), {"n": 1})])

    def test_needs_at_least_one_format(self):
        with pytest.raises(EncodeError):
            codegen.make_batch_encoder(())

    def test_unknown_byte_order_rejected(self):
        with pytest.raises(EncodeError):
            codegen.make_batch_encoder((PAYLOAD,), byte_order="middle")


class TestObsParity:
    def test_packed_counters_match_pack_batch(self):
        encode = codegen.make_batch_encoder((ENVELOPE, PAYLOAD))
        batch = rows(5)
        registry = obs.Registry()
        obs.enable(registry=registry)
        try:
            encode(batch)
            vectorized = {
                name: registry.counter(name).value
                for name in (
                    "net.batch.packed_frames", "net.batch.packed_messages",
                )
            }
        finally:
            obs.disable(reset=True)
        registry = obs.Registry()
        obs.enable(registry=registry)
        try:
            reference_frame(batch)
            composed = {
                name: registry.counter(name).value
                for name in (
                    "net.batch.packed_frames", "net.batch.packed_messages",
                )
            }
        finally:
            obs.disable(reset=True)
        assert vectorized == composed == {
            "net.batch.packed_frames": 1,
            "net.batch.packed_messages": 5,
        }
