"""``retry_pending()`` under a *flapping* format server.

Degraded mode was built for a fleet that dies once and comes back once.
A flapping server — up, down, up, down — stresses the retry path
differently: probes sent into a down window must re-queue their
registrations (not lose them), repeated flaps must not duplicate or
reorder the queue, and when the server finally stays up one retry must
replay everything in the order it was queued (transform registrations
depend on their formats having arrived first)."""

from __future__ import annotations

from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import TransformSpec
from repro.pbio.server import CachingFormatResolver, FormatServer

EVT_V1 = IOFormat(
    "FlapEvt", [IOField("n", "integer"), IOField("x", "integer")],
    version="1.0",
)
EVT_V0 = IOFormat("FlapEvt", [IOField("n", "integer")], version="0.0")
V1_TO_V0 = TransformSpec(
    source=EVT_V1, target=EVT_V0, code="old.n = new.n;",
    description="FlapEvt 1.0 -> 0.0",
)
OTHER = IOFormat("FlapOther", [IOField("k", "integer")], version="1.0")


def build():
    net = Network(default_link=LinkSpec(latency=0.001))
    big = 1_000_000
    server = FormatServer(net, "fs-a", breaker_threshold=big)
    writer = CachingFormatResolver(
        net, "writer", ["fs-a"],
        request_timeout=0.05, breaker_threshold=big,
    )
    return net, server, writer


def degrade(net, server, writer):
    """Take the server down and let the writer discover it."""
    server.close()
    writer.resolve(0xF00D)
    net.run()
    assert writer.degraded


class TestFlappingServer:
    def test_probe_into_a_down_window_requeues(self):
        net, server, writer = build()
        degrade(net, server, writer)
        writer.register(EVT_V0)
        assert writer.pending_registrations == 1

        # the server is still down: the probe goes out, fails, and the
        # registration lands back in the queue with the writer degraded
        assert writer.retry_pending() == 1
        net.run()
        assert writer.degraded
        assert writer.pending_registrations == 1

        # second flap window: same story, nothing lost or duplicated
        assert writer.retry_pending() == 1
        net.run()
        assert writer.pending_registrations == 1

        # the server finally stays up: one retry drains the queue
        server.reopen()
        assert writer.retry_pending() == 1
        net.run()
        assert not writer.degraded
        assert writer.pending_registrations == 0
        assert server.registry.lookup_id(EVT_V0.format_id) is not None

    def test_replay_preserves_queue_order(self):
        """The base format must reach the server before the transform
        that references it — replay is FIFO over the queued payloads."""
        net, server, writer = build()
        degrade(net, server, writer)
        writer.register(EVT_V0)
        writer.register(OTHER)
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        assert writer.pending_registrations == 3

        arrivals = []
        original_ingest = server._ingest

        def spying_ingest(message):
            if message.get("op") == "register":
                arrivals.append([
                    fmt["name"] + "/" + fmt["version"]
                    for fmt in message.get("formats", [])
                ])
            return original_ingest(message)

        server._ingest = spying_ingest
        server.reopen()
        assert writer.retry_pending() == 3
        net.run()
        assert writer.pending_registrations == 0
        assert arrivals == [
            ["FlapEvt/0.0"], ["FlapOther/1.0"], ["FlapEvt/1.0"],
        ]
        # the transform arrived after its source/target formats: the
        # server can serve the closure
        assert server.registry.lookup_id(EVT_V1.format_id) is not None
        assert server.registry.transforms_from(EVT_V1)

    def test_registrations_during_each_down_window_accumulate_once(self):
        net, server, writer = build()
        degrade(net, server, writer)
        writer.register(EVT_V0)

        # flap: up long enough to discover, but register while down again
        server.reopen()
        writer.retry_pending()
        net.run()
        assert not writer.degraded
        server.close()
        writer.register(OTHER)  # send fails -> queued, degraded again
        net.run()
        assert writer.degraded
        assert writer.pending_registrations == 1

        server.reopen()
        assert writer.retry_pending() == 1
        net.run()
        assert writer.pending_registrations == 0
        assert server.registry.lookup_id(EVT_V0.format_id) is not None
        assert server.registry.lookup_id(OTHER.format_id) is not None

    def test_retry_with_an_empty_queue_is_free(self):
        net, server, writer = build()
        assert writer.retry_pending() == 0
        degrade(net, server, writer)
        assert writer.retry_pending() == 0
        assert writer.degraded  # an empty retry is not an exit
