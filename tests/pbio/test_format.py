"""Unit tests for IOFormat: construction rules, weight, fingerprints,
records and validation."""

import pytest

from repro.errors import FormatError
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat


def point():
    return IOFormat("Point", [IOField("x", "integer"), IOField("y", "integer")])


def nested():
    inner = IOFormat("Inner", [IOField("a", "integer"), IOField("b", "string")])
    return IOFormat(
        "Outer",
        [
            IOField("n", "integer"),
            IOField("inners", "complex", subformat=inner,
                    array=ArraySpec(length_field="n")),
            IOField("tail", "float"),
        ],
    )


class TestConstruction:
    def test_requires_fields(self):
        with pytest.raises(FormatError):
            IOFormat("Empty", [])

    def test_requires_name(self):
        with pytest.raises(FormatError):
            IOFormat("", [IOField("x", "integer")])

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(FormatError):
            IOFormat("F", [IOField("x", "integer"), IOField("x", "float")])

    def test_variable_array_requires_count_field(self):
        with pytest.raises(FormatError, match="missing field"):
            IOFormat(
                "F",
                [IOField("xs", "integer", array=ArraySpec(length_field="n"))],
            )

    def test_count_field_must_precede_array(self):
        with pytest.raises(FormatError, match="must precede"):
            IOFormat(
                "F",
                [
                    IOField("xs", "integer", array=ArraySpec(length_field="n")),
                    IOField("n", "integer"),
                ],
            )

    def test_count_field_must_be_integer(self):
        with pytest.raises(FormatError, match="integer kind"):
            IOFormat(
                "F",
                [
                    IOField("n", "float"),
                    IOField("xs", "integer", array=ArraySpec(length_field="n")),
                ],
            )


class TestLookup:
    def test_field_lookup(self):
        fmt = point()
        assert fmt.field("x").name == "x"
        assert fmt.get_field("nope") is None
        with pytest.raises(FormatError):
            fmt.field("nope")

    def test_contains_and_len_and_iter(self):
        fmt = point()
        assert "x" in fmt and "z" not in fmt
        assert len(fmt) == 2
        assert [f.name for f in fmt] == ["x", "y"]

    def test_field_names(self):
        assert nested().field_names() == ["n", "inners", "tail"]

    def test_basic_and_complex_partition(self):
        fmt = nested()
        assert [f.name for f in fmt.basic_fields()] == ["n", "tail"]
        assert [f.name for f in fmt.complex_fields()] == ["inners"]


class TestWeight:
    def test_flat_weight_counts_basic_fields(self):
        assert point().weight == 2

    def test_weight_recurses_into_complex(self):
        # n + (a, b) + tail; array-ness does not multiply
        assert nested().weight == 4

    def test_weight_of_deep_nesting(self):
        leaf = IOFormat("L", [IOField("v", "integer")])
        mid = IOFormat("M", [IOField("l", "complex", subformat=leaf),
                             IOField("w", "float")])
        top = IOFormat("T", [IOField("m", "complex", subformat=mid)])
        assert top.weight == 2


class TestBasicFieldPaths:
    def test_paths(self):
        paths = list(nested().basic_field_paths())
        assert ("n",) in paths
        assert ("inners", "a") in paths
        assert ("inners", "b") in paths
        assert ("tail",) in paths
        assert len(paths) == 4


class TestFingerprint:
    def test_identical_declarations_share_id(self):
        assert point().format_id == point().format_id

    def test_version_changes_id(self):
        a = IOFormat("F", [IOField("x", "integer")], version="1.0")
        b = IOFormat("F", [IOField("x", "integer")], version="2.0")
        assert a.format_id != b.format_id

    def test_field_order_changes_id(self):
        a = IOFormat("F", [IOField("x", "integer"), IOField("y", "integer")])
        b = IOFormat("F", [IOField("y", "integer"), IOField("x", "integer")])
        assert a.format_id != b.format_id

    def test_equality_is_structural(self):
        assert point() == point()
        assert hash(point()) == hash(point())


class TestRecords:
    def test_default_record(self):
        rec = nested().default_record()
        assert rec == {"n": 0, "inners": [], "tail": 0.0}

    def test_make_record_overrides(self):
        rec = point().make_record(x=5)
        assert rec == {"x": 5, "y": 0}

    def test_make_record_rejects_unknown(self):
        with pytest.raises(FormatError):
            point().make_record(z=1)


class TestValidation:
    def test_valid_record_passes(self):
        fmt = nested()
        fmt.validate_record(
            fmt.make_record(n=1, inners=[{"a": 1, "b": "hi"}], tail=1.5)
        )

    def test_missing_field(self):
        with pytest.raises(FormatError, match="missing field"):
            point().validate_record({"x": 1})

    def test_count_mismatch(self):
        fmt = nested()
        rec = fmt.make_record(n=2, inners=[{"a": 1, "b": ""}])
        with pytest.raises(FormatError, match="n == 2"):
            fmt.validate_record(rec)

    def test_array_must_be_list(self):
        fmt = nested()
        rec = fmt.make_record()
        rec["inners"] = "not a list"
        with pytest.raises(FormatError, match="must be a list"):
            fmt.validate_record(rec)

    def test_fixed_array_length_enforced(self):
        fmt = IOFormat("F", [IOField("xs", "integer", array=ArraySpec(fixed_length=2))])
        with pytest.raises(FormatError, match="exactly 2"):
            fmt.validate_record({"xs": [1]})

    def test_bad_scalar_reported_with_path(self):
        fmt = nested()
        rec = fmt.make_record(n=1, inners=[{"a": "xx", "b": ""}])
        with pytest.raises(FormatError, match="inners.a"):
            fmt.validate_record(rec)

    def test_complex_field_must_hold_records(self):
        fmt = nested()
        rec = fmt.make_record(n=1, inners=[42])
        with pytest.raises(FormatError, match="must hold records"):
            fmt.validate_record(rec)


class TestDescribe:
    def test_describe_mentions_every_field(self):
        text = nested().describe()
        for name in ("Outer", "n", "inners", "tail", "Inner", "a", "b"):
            assert name in text
