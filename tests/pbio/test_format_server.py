"""FormatServer fleet + CachingFormatResolver: failover, degraded mode."""

import pytest

from repro.errors import TransportError
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import TransformSpec
from repro.pbio.server import CachingFormatResolver, FormatServer

EVT_V1 = IOFormat(
    "Evt", [IOField("n", "integer"), IOField("x", "integer")], version="1.0"
)
EVT_V0 = IOFormat("Evt", [IOField("n", "integer")], version="0.0")
V1_TO_V0 = TransformSpec(
    source=EVT_V1, target=EVT_V0, code="old.n = new.n;",
    description="Evt 1.0 -> 0.0",
)


def build_fleet(loss_rate=0.0, standby=True, **resolver_options):
    net = Network(default_link=LinkSpec(latency=0.001, loss_rate=loss_rate))
    big = 1_000_000
    primary = FormatServer(net, "fs-a", peer="fs-b" if standby else None,
                           breaker_threshold=big)
    # peers point at each other so registrations landing on either
    # replica (e.g. after a failover) reach both
    backup = (FormatServer(net, "fs-b", peer="fs-a", breaker_threshold=big)
              if standby else None)
    servers = ["fs-a", "fs-b"] if standby else ["fs-a"]
    resolver_options.setdefault("request_timeout", 0.5)
    resolver_options.setdefault("breaker_threshold", big)
    writer = CachingFormatResolver(net, "writer", servers, **resolver_options)
    reader = CachingFormatResolver(net, "reader", servers, **resolver_options)
    return net, primary, backup, writer, reader


class TestRegistrationAndLookup:
    def test_lookup_ships_format_with_transform_closure(self):
        net, primary, _backup, writer, reader = build_fleet()
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        net.run()
        assert primary.registry.lookup_id(EVT_V1.format_id) is not None

        results = []
        reader.resolve(EVT_V1.format_id, results.append)
        net.run()
        assert results and results[0].format_id == EVT_V1.format_id
        # the closure came along: the reader can morph without new trips
        assert reader.registry.transforms_from(EVT_V1)

    def test_cache_hit_skips_the_network(self):
        net, primary, _backup, writer, reader = build_fleet()
        writer.register(EVT_V0)
        net.run()
        reader.resolve(EVT_V0.format_id)
        net.run()
        lookups_before = primary.stats["lookups"]
        assert reader.resolve(EVT_V0.format_id) is not None
        net.run()
        assert primary.stats["lookups"] == lookups_before
        assert reader.stats["cache_hits"] == 1

    def test_registrations_mirror_to_standby(self):
        net, _primary, backup, writer, _reader = build_fleet()
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        net.run()
        assert backup.registry.lookup_id(EVT_V1.format_id) is not None
        assert backup.stats["syncs"] == 1

    def test_concurrent_misses_coalesce(self):
        net, primary, _backup, writer, reader = build_fleet()
        writer.register(EVT_V0)
        net.run()
        results = []
        reader.resolve(EVT_V0.format_id, results.append)
        reader.resolve(EVT_V0.format_id, results.append)
        net.run()
        assert len(results) == 2
        assert reader.stats["lookups_sent"] == 1
        assert primary.stats["lookups"] == 1

    def test_unknown_id_reports_a_miss(self):
        net, primary, _backup, _writer, reader = build_fleet()
        results = []
        reader.resolve(0xDEAD, results.append)
        net.run()
        assert results == [None]
        assert primary.stats["misses"] == 1

    def test_resolver_requires_servers(self):
        with pytest.raises(TransportError):
            CachingFormatResolver(Network(), "lonely", servers=())


class TestFailover:
    def test_crashed_primary_fails_over_to_standby(self):
        net, primary, _backup, writer, reader = build_fleet()
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        net.run()
        primary.close()
        results = []
        reader.resolve(EVT_V1.format_id, results.append)
        net.run()
        assert results and results[0].format_id == EVT_V1.format_id
        assert reader.stats["failovers"] >= 1
        assert not reader.degraded

    def test_resolver_sticks_with_the_server_that_answered(self):
        net, primary, backup, writer, reader = build_fleet()
        writer.register(EVT_V1)
        writer.register(EVT_V0)
        net.run()
        primary.close()
        reader.resolve(EVT_V1.format_id)
        net.run()
        failovers_after_first = reader.stats["failovers"]
        reader.resolve(EVT_V0.format_id)
        net.run()
        # second lookup goes straight to the standby: no second failover
        assert reader.stats["failovers"] == failovers_after_first
        assert backup.stats["lookups"] == 2


class TestDegradedMode:
    def test_whole_fleet_down_serves_cache_and_queues_registrations(self):
        net, primary, backup, writer, reader = build_fleet()
        writer.register(EVT_V0)
        net.run()
        reader.resolve(EVT_V0.format_id)
        net.run()
        primary.close()
        backup.close()

        # an uncached id: both attempts fail, the resolver degrades
        results = []
        reader.resolve(EVT_V1.format_id, results.append)
        net.run()
        assert results == [None]
        assert reader.degraded
        # cached formats still resolve, instantly and offline
        assert reader.resolve(EVT_V0.format_id) is not None
        # further misses fail fast instead of hammering a dead fleet
        more = []
        reader.resolve(0xBEEF, more.append)
        assert more == [None]
        assert reader.stats["degraded_misses"] >= 1

        # writer-side: registrations queue while degraded
        writer.resolve(0xF00D)  # degrade the writer too
        net.run()
        assert writer.degraded
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        assert writer.pending_registrations == 1
        # the local cache is authoritative regardless
        assert writer.registry.lookup_id(EVT_V1.format_id) is not None

    def test_recovery_replays_queued_registrations(self):
        net, primary, backup, writer, reader = build_fleet()
        primary.close()
        backup.close()
        writer.resolve(0xF00D)  # discover the outage, degrade
        net.run()
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        assert writer.pending_registrations == 1

        primary.reopen()
        backup.reopen()
        assert writer.retry_pending() == 1
        net.run()
        assert not writer.degraded
        assert writer.pending_registrations == 0
        assert writer.stats["replayed_registrations"] >= 1
        assert primary.registry.lookup_id(EVT_V1.format_id) is not None

        # and a reader can now resolve it end to end
        results = []
        reader.resolve(EVT_V1.format_id, results.append)
        net.run()
        assert results and results[0].format_id == EVT_V1.format_id


class TestRefresh:
    def test_refresh_pulls_transform_closure_for_known_format(self):
        net, _primary, _backup, writer, reader = build_fleet()
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        net.run()
        # the reader knows the format locally but has no transforms
        reader.registry.register(EVT_V1)
        assert not reader.registry.transforms_from(EVT_V1)
        results = []
        reader.refresh(EVT_V1.format_id, results.append)
        net.run()
        assert results and results[0].format_id == EVT_V1.format_id
        assert reader.registry.transforms_from(EVT_V1)

    def test_refresh_falls_back_to_cache_when_fleet_is_down(self):
        net, primary, backup, writer, reader = build_fleet()
        writer.register(EVT_V1)
        net.run()
        reader.resolve(EVT_V1.format_id)
        net.run()
        primary.close()
        backup.close()
        results = []
        reader.refresh(EVT_V1.format_id, results.append)
        net.run()
        # best-effort: the cached format is better than nothing
        assert results and results[0].format_id == EVT_V1.format_id


class TestLossyMetaPlane:
    def test_meta_protocol_survives_a_lossy_link(self):
        net, _primary, _backup, writer, reader = build_fleet(loss_rate=0.2)
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        net.run()
        results = []
        reader.resolve(EVT_V1.format_id, results.append)
        net.run()
        assert results and results[0].format_id == EVT_V1.format_id
        assert not reader.degraded
