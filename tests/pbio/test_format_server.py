"""FormatServer fleet + CachingFormatResolver: failover, degraded mode."""

import pytest

from repro.errors import TransportError
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import TransformSpec
from repro.pbio.server import CachingFormatResolver, FormatServer

EVT_V1 = IOFormat(
    "Evt", [IOField("n", "integer"), IOField("x", "integer")], version="1.0"
)
EVT_V0 = IOFormat("Evt", [IOField("n", "integer")], version="0.0")
V1_TO_V0 = TransformSpec(
    source=EVT_V1, target=EVT_V0, code="old.n = new.n;",
    description="Evt 1.0 -> 0.0",
)


def build_fleet(loss_rate=0.0, standby=True, **resolver_options):
    net = Network(default_link=LinkSpec(latency=0.001, loss_rate=loss_rate))
    big = 1_000_000
    primary = FormatServer(net, "fs-a", peer="fs-b" if standby else None,
                           breaker_threshold=big)
    # peers point at each other so registrations landing on either
    # replica (e.g. after a failover) reach both
    backup = (FormatServer(net, "fs-b", peer="fs-a", breaker_threshold=big)
              if standby else None)
    servers = ["fs-a", "fs-b"] if standby else ["fs-a"]
    resolver_options.setdefault("request_timeout", 0.5)
    resolver_options.setdefault("breaker_threshold", big)
    writer = CachingFormatResolver(net, "writer", servers, **resolver_options)
    reader = CachingFormatResolver(net, "reader", servers, **resolver_options)
    return net, primary, backup, writer, reader


class TestRegistrationAndLookup:
    def test_lookup_ships_format_with_transform_closure(self):
        net, primary, _backup, writer, reader = build_fleet()
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        net.run()
        assert primary.registry.lookup_id(EVT_V1.format_id) is not None

        results = []
        reader.resolve(EVT_V1.format_id, results.append)
        net.run()
        assert results and results[0].format_id == EVT_V1.format_id
        # the closure came along: the reader can morph without new trips
        assert reader.registry.transforms_from(EVT_V1)

    def test_cache_hit_skips_the_network(self):
        net, primary, _backup, writer, reader = build_fleet()
        writer.register(EVT_V0)
        net.run()
        reader.resolve(EVT_V0.format_id)
        net.run()
        lookups_before = primary.stats["lookups"]
        assert reader.resolve(EVT_V0.format_id) is not None
        net.run()
        assert primary.stats["lookups"] == lookups_before
        assert reader.stats["cache_hits"] == 1

    def test_registrations_mirror_to_standby(self):
        net, _primary, backup, writer, _reader = build_fleet()
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        net.run()
        assert backup.registry.lookup_id(EVT_V1.format_id) is not None
        assert backup.stats["syncs"] == 1

    def test_concurrent_misses_coalesce(self):
        net, primary, _backup, writer, reader = build_fleet()
        writer.register(EVT_V0)
        net.run()
        results = []
        reader.resolve(EVT_V0.format_id, results.append)
        reader.resolve(EVT_V0.format_id, results.append)
        net.run()
        assert len(results) == 2
        assert reader.stats["lookups_sent"] == 1
        assert primary.stats["lookups"] == 1

    def test_unknown_id_reports_a_miss(self):
        net, primary, _backup, _writer, reader = build_fleet()
        results = []
        reader.resolve(0xDEAD, results.append)
        net.run()
        assert results == [None]
        assert primary.stats["misses"] == 1

    def test_resolver_requires_servers(self):
        with pytest.raises(TransportError):
            CachingFormatResolver(Network(), "lonely", servers=())


class TestFailover:
    def test_crashed_primary_fails_over_to_standby(self):
        net, primary, _backup, writer, reader = build_fleet()
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        net.run()
        primary.close()
        results = []
        reader.resolve(EVT_V1.format_id, results.append)
        net.run()
        assert results and results[0].format_id == EVT_V1.format_id
        assert reader.stats["failovers"] >= 1
        assert not reader.degraded

    def test_resolver_sticks_with_the_server_that_answered(self):
        net, primary, backup, writer, reader = build_fleet()
        writer.register(EVT_V1)
        writer.register(EVT_V0)
        net.run()
        primary.close()
        reader.resolve(EVT_V1.format_id)
        net.run()
        failovers_after_first = reader.stats["failovers"]
        reader.resolve(EVT_V0.format_id)
        net.run()
        # second lookup goes straight to the standby: no second failover
        assert reader.stats["failovers"] == failovers_after_first
        assert backup.stats["lookups"] == 2


class TestDegradedMode:
    def test_whole_fleet_down_serves_cache_and_queues_registrations(self):
        net, primary, backup, writer, reader = build_fleet()
        writer.register(EVT_V0)
        net.run()
        reader.resolve(EVT_V0.format_id)
        net.run()
        primary.close()
        backup.close()

        # an uncached id: both attempts fail, the resolver degrades
        results = []
        reader.resolve(EVT_V1.format_id, results.append)
        net.run()
        assert results == [None]
        assert reader.degraded
        # cached formats still resolve, instantly and offline
        assert reader.resolve(EVT_V0.format_id) is not None
        # further misses fail fast instead of hammering a dead fleet
        more = []
        reader.resolve(0xBEEF, more.append)
        assert more == [None]
        assert reader.stats["degraded_misses"] >= 1

        # writer-side: registrations queue while degraded
        writer.resolve(0xF00D)  # degrade the writer too
        net.run()
        assert writer.degraded
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        assert writer.pending_registrations == 1
        # the local cache is authoritative regardless
        assert writer.registry.lookup_id(EVT_V1.format_id) is not None

    def test_recovery_replays_queued_registrations(self):
        net, primary, backup, writer, reader = build_fleet()
        primary.close()
        backup.close()
        writer.resolve(0xF00D)  # discover the outage, degrade
        net.run()
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        assert writer.pending_registrations == 1

        primary.reopen()
        backup.reopen()
        assert writer.retry_pending() == 1
        net.run()
        assert not writer.degraded
        assert writer.pending_registrations == 0
        assert writer.stats["replayed_registrations"] >= 1
        assert primary.registry.lookup_id(EVT_V1.format_id) is not None

        # and a reader can now resolve it end to end
        results = []
        reader.resolve(EVT_V1.format_id, results.append)
        net.run()
        assert results and results[0].format_id == EVT_V1.format_id


class TestRefresh:
    def test_refresh_pulls_transform_closure_for_known_format(self):
        net, _primary, _backup, writer, reader = build_fleet()
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        net.run()
        # the reader knows the format locally but has no transforms
        reader.registry.register(EVT_V1)
        assert not reader.registry.transforms_from(EVT_V1)
        results = []
        reader.refresh(EVT_V1.format_id, results.append)
        net.run()
        assert results and results[0].format_id == EVT_V1.format_id
        assert reader.registry.transforms_from(EVT_V1)

    def test_refresh_falls_back_to_cache_when_fleet_is_down(self):
        net, primary, backup, writer, reader = build_fleet()
        writer.register(EVT_V1)
        net.run()
        reader.resolve(EVT_V1.format_id)
        net.run()
        primary.close()
        backup.close()
        results = []
        reader.refresh(EVT_V1.format_id, results.append)
        net.run()
        # best-effort: the cached format is better than nothing
        assert results and results[0].format_id == EVT_V1.format_id


class TestLossyMetaPlane:
    def test_meta_protocol_survives_a_lossy_link(self):
        net, _primary, _backup, writer, reader = build_fleet(loss_rate=0.2)
        writer.register(EVT_V1, transforms=[V1_TO_V0])
        net.run()
        results = []
        reader.resolve(EVT_V1.format_id, results.append)
        net.run()
        assert results and results[0].format_id == EVT_V1.format_id
        assert not reader.degraded

# ----------------------------------------------------------------------
# Interest negotiation (projection push-down)
# ----------------------------------------------------------------------

from repro.pbio.field import ArraySpec  # noqa: E402
from repro.pbio.projection import ProjectionFormat, project_format  # noqa: E402

WIDE = IOFormat(
    "Wide",
    [
        IOField("n", "integer"),
        IOField("x", "integer"),
        IOField("y", "integer"),
        IOField("z", "integer"),
    ],
    version="2.0",
)


def announce(resolver, fields, group="grp", parent=WIDE, retract=False):
    states = []
    resolver.announce_interest(
        group, parent, fields, retract=retract, on_state=states.append
    )
    return states


class TestInterestNegotiation:
    def test_narrow_interest_derives_an_epoch1_projection(self):
        net, primary, _backup, _writer, reader = build_fleet()
        states = announce(reader, ["n"])
        net.run()
        assert states and states[0] is not None
        state = states[0]
        assert state["epoch"] == 1 and not state["full"]
        assert state["format"].field_names() == ["n"]
        assert state["format"].parent_format_id == WIDE.format_id
        assert primary.stats["renegotiations"] == 1

    def test_union_across_subscribers(self):
        net, _primary, _backup, writer, reader = build_fleet()
        announce(reader, ["n"])
        net.run()
        announce(writer, ["y"])
        net.run()
        state = writer.projection_state(WIDE.format_id, "grp")
        assert state["epoch"] == 2
        assert state["format"].field_names() == ["n", "y"]

    def test_full_interest_stays_full_at_epoch_zero(self):
        net, primary, _backup, _writer, reader = build_fleet()
        states = announce(reader, None)
        net.run()
        assert states[0]["full"] and states[0]["epoch"] == 0
        # wanting everything is not a renegotiation
        assert primary.stats["renegotiations"] == 0

    def test_superset_of_declared_fields_means_full(self):
        net, _primary, _backup, _writer, reader = build_fleet()
        states = announce(reader, ["n", "x", "y", "z", "not_declared"])
        net.run()
        assert states[0]["full"]

    def test_all_unknown_names_keep_the_first_field(self):
        # A subscriber announcing against a stale revision must still
        # get decodable frames: the server pins the parent's first field.
        net, _primary, _backup, _writer, reader = build_fleet()
        states = announce(reader, ["ghost", "phantom"])
        net.run()
        assert states[0]["format"].field_names() == ["n"]

    def test_retract_widens_back_to_full(self):
        net, primary, _backup, _writer, reader = build_fleet()
        announce(reader, ["n"])
        net.run()
        states = announce(reader, None, retract=True)
        net.run()
        assert states[0]["full"] and states[0]["epoch"] == 2
        assert primary.stats["renegotiations"] == 2

    def test_sender_watcher_sees_pushed_renegotiations(self):
        net, _primary, _backup, writer, reader = build_fleet()
        updates = []
        writer.watch_projection("grp", WIDE, on_update=updates.append)
        net.run()
        assert updates and updates[0]["full"]  # initial state: no interests
        announce(reader, ["x"])
        net.run()
        assert updates[-1]["format"].field_names() == ["x"]
        assert updates[-1]["epoch"] == 1

    def test_projection_format_mirrors_to_standby(self):
        net, _primary, backup, _writer, reader = build_fleet()
        announce(reader, ["n"])
        net.run()
        proj = project_format(WIDE, ["n"], epoch=1)
        mirrored = backup.registry.lookup_id(proj.format_id)
        assert isinstance(mirrored, ProjectionFormat)

    def test_old_epochs_stay_registered_for_inflight_frames(self):
        net, primary, _backup, writer, reader = build_fleet()
        announce(reader, ["n"])
        net.run()
        announce(writer, ["y"], group="grp")
        net.run()
        for epoch, fields in ((1, ["n"]), (2, ["n", "y"])):
            fmt = project_format(WIDE, fields, epoch=epoch)
            assert primary.registry.lookup_id(fmt.format_id) is not None

    def test_malformed_parent_yields_none_state(self):
        net, _primary, _backup, _writer, reader = build_fleet()
        states = []
        reader.announce_interest(
            "grp", WIDE, ["n"], on_state=states.append
        )
        # corrupt the parent payload server-side by sending a raw
        # malformed interest directly
        from repro.pbio.server import _encode
        reader.endpoint.send("fs-a", _encode({
            "op": "interest", "group": "grp", "parent": {"bogus": True},
            "fields": ["n"], "id": 999,
        }))
        net.run()
        assert states and states[0] is not None  # the good announce worked

    def test_degraded_resolver_reports_none_and_keeps_full_traffic(self):
        net, primary, backup, _writer, reader = build_fleet()
        primary.close()
        backup.close()
        reader.resolve(0xF00D)  # discover the outage, degrade
        net.run()
        assert reader.degraded
        states = announce(reader, ["n"])
        assert states == [None]

    def test_projected_lookup_ships_the_parent_alongside(self):
        # A sender that never saw the parent resolves a projected id and
        # must be able to plan the widening route immediately.
        net, _primary, _backup, writer, reader = build_fleet()
        writer.register(WIDE)
        announce(writer, ["n"])
        net.run()
        proj = project_format(WIDE, ["n"], epoch=1)
        results = []
        reader.resolve(proj.format_id, results.append)
        net.run()
        assert results and results[0].format_id == proj.format_id
        assert reader.registry.lookup_id(WIDE.format_id) is not None


class TestStaleEntryInvalidation:
    """Regression: a re-registered format id with different content must
    displace the cached entry, bump ``invalidations`` and fire
    ``on_invalidate`` (receivers drop compiled routes keyed by that id)."""

    def test_server_reply_displaces_plain_clone_of_projection(self):
        net, _primary, _backup, writer, reader = build_fleet()
        writer.register(WIDE)
        announce(writer, ["n"])
        net.run()
        proj = project_format(WIDE, ["n"], epoch=1)
        # poison the reader's cache with a structurally identical plain
        # format under the projection's id (no provenance)
        plain = IOFormat(proj.name, list(proj.fields), version=proj.version)
        assert plain.format_id == proj.format_id
        reader.registry.register(plain)
        invalidated = []
        reader.on_invalidate = invalidated.append
        reader.refresh(proj.format_id)
        net.run()
        assert invalidated == [proj.format_id]
        assert reader.stats["invalidations"] == 1
        cached = reader.registry.lookup_id(proj.format_id)
        assert isinstance(cached, ProjectionFormat)

    def test_server_reply_displaces_default_drift(self):
        net, _primary, _backup, writer, reader = build_fleet()
        revised = IOFormat(
            "Evt",
            [IOField("n", "integer", default=7), IOField("x", "integer")],
            version="1.0",
        )
        assert revised.format_id == EVT_V1.format_id
        reader.registry.register(EVT_V1)
        writer.register(revised)
        net.run()
        invalidated = []
        reader.on_invalidate = invalidated.append
        reader.refresh(EVT_V1.format_id)
        net.run()
        assert invalidated == [EVT_V1.format_id]
        cached = reader.registry.lookup_id(EVT_V1.format_id)
        assert cached.fields[0].default_instance() == 7

    def test_equal_content_is_not_an_invalidation(self):
        net, _primary, _backup, writer, reader = build_fleet()
        writer.register(EVT_V1)
        net.run()
        reader.resolve(EVT_V1.format_id)
        net.run()
        reader.refresh(EVT_V1.format_id)
        net.run()
        assert reader.stats["invalidations"] == 0
