"""Unit tests for the format registry (out-of-band meta-data store)."""

import pytest

from repro.errors import FormatError
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry, TransformSpec


def fmt(name, version, extra=0):
    fields = [IOField("x", "integer")] + [
        IOField(f"e{i}", "integer") for i in range(extra)
    ]
    return IOFormat(name, fields, version=version)


A1 = fmt("A", "1.0")
A2 = fmt("A", "2.0", extra=1)
A3 = fmt("A", "3.0", extra=2)
B1 = fmt("B", "1.0")

NOOP = "old.x = new.x;"


class TestRegistration:
    def test_register_and_lookup(self):
        reg = FormatRegistry()
        format_id = reg.register(A1)
        assert reg.lookup_id(format_id) is A1
        assert A1 in reg
        assert len(reg) == 1

    def test_idempotent_reregistration(self):
        reg = FormatRegistry()
        reg.register(A1)
        reg.register(fmt("A", "1.0"))  # structurally identical
        assert len(reg) == 1

    def test_lookup_by_name_returns_all_revisions(self):
        reg = FormatRegistry()
        for f in (A1, A2, B1):
            reg.register(f)
        names = {f.version for f in reg.lookup_name("A")}
        assert names == {"1.0", "2.0"}
        assert reg.lookup_name("missing") == []

    def test_unknown_id_returns_none(self):
        assert FormatRegistry().lookup_id(12345) is None

    def test_formats_lists_everything(self):
        reg = FormatRegistry()
        reg.register(A1)
        reg.register(B1)
        assert {f.name for f in reg.formats()} == {"A", "B"}


class TestTransformSpec:
    def test_identity_transform_rejected(self):
        with pytest.raises(FormatError):
            TransformSpec(source=A1, target=fmt("A", "1.0"), code=NOOP)

    def test_add_transform_registers_both_formats(self):
        reg = FormatRegistry()
        reg.add_transform(A2, A1, NOOP)
        assert A1 in reg and A2 in reg

    def test_duplicate_transform_not_stored_twice(self):
        reg = FormatRegistry()
        reg.add_transform(A2, A1, NOOP)
        reg.add_transform(A2, A1, NOOP)
        assert len(reg.transforms_from(A2)) == 1

    def test_transforms_from(self):
        reg = FormatRegistry()
        reg.add_transform(A2, A1, NOOP)
        reg.add_transform(A2, B1, NOOP)
        targets = {t.target.name + t.target.version for t in reg.transforms_from(A2)}
        assert targets == {"A1.0", "B1.0"}
        assert reg.transforms_from(A1) == []


class TestTransformClosure:
    def test_single_hop(self):
        reg = FormatRegistry()
        reg.add_transform(A2, A1, NOOP)
        chains = reg.transform_closure(A2)
        assert len(chains) == 1
        assert chains[0][0].target == A1

    def test_chain_of_two(self):
        reg = FormatRegistry()
        reg.add_transform(A3, A2, NOOP)
        reg.add_transform(A2, A1, NOOP)
        chains = reg.transform_closure(A3)
        targets = {c[-1].target.version: len(c) for c in chains}
        assert targets == {"2.0": 1, "1.0": 2}

    def test_shortest_chain_preferred_on_diamond(self):
        reg = FormatRegistry()
        reg.add_transform(A3, A2, NOOP)
        reg.add_transform(A2, A1, NOOP)
        reg.add_transform(A3, A1, NOOP)  # direct shortcut
        chains = reg.transform_closure(A3)
        to_a1 = [c for c in chains if c[-1].target == A1]
        assert len(to_a1) == 1
        assert len(to_a1[0]) == 1  # the direct hop wins

    def test_cycles_terminate(self):
        reg = FormatRegistry()
        reg.add_transform(A1, A2, NOOP)
        reg.add_transform(A2, A1, NOOP)
        chains = reg.transform_closure(A1)
        assert len(chains) == 1  # A2 only; never loops back to A1

    def test_empty_closure(self):
        reg = FormatRegistry()
        reg.register(A1)
        assert reg.transform_closure(A1) == []


class TestReplication:
    def test_replicate_to_copies_formats_and_transforms(self):
        src = FormatRegistry()
        src.add_transform(A2, A1, NOOP)
        dst = FormatRegistry()
        src.replicate_to(dst)
        assert A1 in dst and A2 in dst
        assert len(dst.transforms_from(A2)) == 1


class TestCollisions:
    def test_different_format_same_id_impossible_in_practice(self):
        # structural fingerprints: equality implies same id, and the
        # registry enforces the contrapositive
        reg = FormatRegistry()
        reg.register(A1)
        clone = fmt("A", "1.0")
        assert clone.format_id == A1.format_id
        reg.register(clone)  # fine: equal structure
