"""Unit tests for Record: attribute access, conversion, equality."""

import pytest

from repro.ecode.runtime import AutoList
from repro.pbio.record import Record, make_record, records_equal, trusted_record


class TestAttributeAccess:
    def test_read_write_delete(self):
        rec = Record(a=1)
        assert rec.a == 1
        rec.b = 2
        assert rec["b"] == 2
        del rec.a
        assert "a" not in rec

    def test_missing_attribute_raises_attributeerror(self):
        rec = Record()
        with pytest.raises(AttributeError):
            _ = rec.nothing
        assert not hasattr(rec, "nothing")

    def test_delete_missing_raises(self):
        with pytest.raises(AttributeError):
            del Record().nothing

    def test_dict_methods_shadow_fields(self):
        # documented caveat: subscripting is the safe access path
        rec = Record({"items": [1, 2]})
        assert callable(rec.items)
        assert rec["items"] == [1, 2]


class TestConversion:
    def test_nested_dicts_become_records(self):
        rec = Record(inner={"x": 1}, many=[{"y": 2}, {"y": 3}])
        assert isinstance(rec.inner, Record)
        assert isinstance(rec.many[0], Record)
        assert rec.many[1].y == 3

    def test_tuples_become_lists(self):
        rec = Record(xs=(1, 2, 3))
        assert rec.xs == [1, 2, 3]
        assert isinstance(rec.xs, list)

    def test_setitem_converts(self):
        rec = Record()
        rec["inner"] = {"x": 1}
        assert isinstance(rec.inner, Record)

    def test_list_subclass_preserved(self):
        auto = AutoList(lambda: 0)
        rec = Record()
        rec["xs"] = auto
        assert rec["xs"] is auto

    def test_scalar_fast_path(self):
        rec = Record()
        rec["n"] = 5
        rec["s"] = "hi"
        rec["f"] = 2.5
        rec["b"] = True
        assert rec == {"n": 5, "s": "hi", "f": 2.5, "b": True}


class TestCopy:
    def test_copy_is_shallow(self):
        rec = Record(inner={"x": 1})
        clone = rec.copy()
        assert clone == rec
        clone.inner.x = 2
        assert rec.inner.x == 2

    def test_deepcopy_is_deep(self):
        rec = Record(inner={"x": 1}, xs=[{"y": 1}])
        clone = rec.deepcopy()
        clone.inner.x = 2
        clone.xs[0].y = 9
        assert rec.inner.x == 1
        assert rec.xs[0].y == 1


class TestTrustedRecord:
    def test_builds_without_conversion(self):
        inner = {"x": 1}
        rec = trusted_record({"inner": inner})
        assert rec["inner"] is inner  # no conversion happened
        assert isinstance(rec, Record)

    def test_equal_to_converted(self):
        assert trusted_record({"a": 1}) == Record(a=1)


class TestRecordsEqual:
    def test_dict_vs_record(self):
        assert records_equal(Record(a=1), {"a": 1})

    def test_key_set_mismatch(self):
        assert not records_equal({"a": 1}, {"a": 1, "b": 2})

    def test_list_length_mismatch(self):
        assert not records_equal({"xs": [1]}, {"xs": [1, 2]})

    def test_float_tolerance(self):
        import struct

        truncated = struct.unpack("<f", struct.pack("<f", 0.1))[0]
        assert records_equal({"f": truncated}, {"f": truncated})
        assert records_equal({"f": 1.0}, {"f": 1})
        assert not records_equal({"f": 1.0}, {"f": 2.0})

    def test_float_vs_non_numeric(self):
        assert not records_equal({"f": 1.0}, {"f": "one"})

    def test_nested(self):
        a = {"inner": {"xs": [1.0, 2.0]}}
        b = Record(inner={"xs": [1, 2]})
        assert records_equal(a, b)


class TestMakeRecord:
    def test_kwargs(self):
        assert make_record(a=1, b="x") == {"a": 1, "b": "x"}

    def test_mapping_plus_kwargs(self):
        assert make_record({"a": 1}, b=2) == {"a": 1, "b": 2}
