"""Unit tests for the wire buffer layer (header + reader/writer)."""

import struct

import pytest

from repro.errors import DecodeError, EncodeError
from repro.pbio.buffer import (
    HEADER_SIZE,
    MAGIC,
    WireReader,
    WireWriter,
    pack_header,
    unpack_header,
)


class TestHeader:
    def test_roundtrip(self):
        # flags=5 keeps FLAG_TRACE (0x02) clear: that bit now announces a
        # trace-context block after the header
        data = pack_header(0xDEADBEEF, 123, flags=5)
        header = unpack_header(data + b"\x00" * 123)
        assert header.format_id == 0xDEADBEEF
        assert header.payload_length == 123
        assert header.flags == 5

    def test_header_size_under_30_bytes(self):
        # the paper: "PBIO encoding adds less than 30 bytes"
        assert HEADER_SIZE < 30

    def test_bad_magic(self):
        data = bytearray(pack_header(1, 0))
        data[0] ^= 0xFF
        with pytest.raises(DecodeError, match="bad magic"):
            unpack_header(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(DecodeError, match="too short"):
            unpack_header(b"\x01\x02")

    def test_truncated_payload(self):
        data = pack_header(1, 100) + b"\x00" * 10
        with pytest.raises(DecodeError, match="truncated payload"):
            unpack_header(data)

    def test_unsupported_version(self):
        raw = bytearray(pack_header(1, 0))
        raw[4] = 99  # version byte
        with pytest.raises(DecodeError, match="wire version"):
            unpack_header(bytes(raw))

    def test_offset_reads(self):
        prefix = b"junk"
        data = prefix + pack_header(42, 0)
        assert unpack_header(data, offset=len(prefix)).format_id == 42

    def test_magic_spells_pbio(self):
        assert struct.pack(">I", MAGIC) == b"PBIO"


class TestWireWriter:
    def test_scalars(self):
        writer = WireWriter()
        writer.write_scalar("i", -5)
        writer.write_scalar("B", 200)
        assert writer.getvalue() == struct.pack("<iB", -5, 200)
        assert len(writer) == 5

    def test_strings_are_length_prefixed_utf8(self):
        writer = WireWriter()
        writer.write_string("héllo")
        raw = writer.getvalue()
        (length,) = struct.unpack_from("<I", raw)
        assert length == len("héllo".encode("utf-8"))
        assert raw[4:] == "héllo".encode("utf-8")

    def test_out_of_range_raises_encode_error(self):
        writer = WireWriter()
        with pytest.raises(EncodeError):
            writer.write_scalar("b", 1000)

    def test_write_struct(self):
        writer = WireWriter()
        writer.write_struct(struct.Struct("<hh"), 1, 2)
        assert writer.getvalue() == struct.pack("<hh", 1, 2)

    def test_growth_past_initial_capacity(self):
        # the pack_into fast path must stay correct across doublings
        writer = WireWriter()
        blob = bytes(range(256)) * 3
        for i in range(100):
            writer.write_scalar("I", i)
        writer.write_bytes(blob)
        writer.write_string("tail")
        assert len(writer) > WireWriter._INITIAL_CAPACITY
        expected = b"".join(struct.pack("<I", i) for i in range(100))
        expected += blob + struct.pack("<I", 4) + b"tail"
        assert writer.getvalue() == expected

    def test_getvalue_excludes_unused_capacity(self):
        writer = WireWriter()
        writer.write_scalar("B", 7)
        assert len(writer) == 1
        assert writer.getvalue() == b"\x07"
        # failed packs must not advance the cursor
        with pytest.raises(EncodeError):
            writer.write_scalar("B", 4096)
        assert writer.getvalue() == b"\x07"


class TestWireReader:
    def test_sequential_reads(self):
        data = struct.pack("<iB", 7, 9) + struct.pack("<I", 2) + b"hi"
        reader = WireReader(data)
        assert reader.read_scalar("i", 4) == 7
        assert reader.read_scalar("B", 1) == 9
        assert reader.read_string() == "hi"
        assert reader.remaining == 0

    def test_truncation_detected(self):
        reader = WireReader(b"\x01\x02")
        with pytest.raises(DecodeError, match="truncated"):
            reader.read_scalar("i", 4)

    def test_string_truncation(self):
        reader = WireReader(struct.pack("<I", 100) + b"short")
        with pytest.raises(DecodeError, match="truncated"):
            reader.read_string()

    def test_invalid_utf8(self):
        reader = WireReader(struct.pack("<I", 2) + b"\xff\xfe")
        with pytest.raises(DecodeError, match="UTF-8"):
            reader.read_string()

    def test_window_bounds(self):
        data = b"abcdef"
        reader = WireReader(data, offset=1, end=3)
        assert reader.read_bytes(2) == b"bc"
        with pytest.raises(DecodeError):
            reader.read_bytes(1)

    def test_read_struct(self):
        reader = WireReader(struct.pack("<hh", 3, 4))
        assert reader.read_struct(struct.Struct("<hh")) == (3, 4)
