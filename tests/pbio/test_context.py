"""Unit tests for PBIOContext (per-endpoint encode/decode state)."""

import pytest

from repro.errors import UnknownFormatError
from repro.pbio.context import PBIOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import records_equal
from repro.pbio.registry import FormatRegistry


FMT = IOFormat("Msg", [IOField("load", "integer"), IOField("mem", "integer")])
REC = FMT.make_record(load=1, mem=2)


class TestEncodeDecode:
    def test_roundtrip(self):
        ctx = PBIOContext()
        fmt, rec = ctx.decode(ctx.encode(FMT, REC))
        assert fmt == FMT
        assert records_equal(rec, REC)

    def test_encode_registers_format(self):
        ctx = PBIOContext()
        ctx.encode(FMT, REC)
        assert FMT in ctx.registry

    def test_unknown_format_raises(self):
        sender = PBIOContext()
        wire = sender.encode(FMT, REC)
        receiver = PBIOContext()  # empty private registry
        with pytest.raises(UnknownFormatError) as exc_info:
            receiver.decode(wire)
        assert exc_info.value.format_id == FMT.format_id

    def test_shared_registry_is_the_out_of_band_channel(self):
        registry = FormatRegistry()
        sender = PBIOContext(registry)
        receiver = PBIOContext(registry)
        wire = sender.encode(FMT, REC)
        fmt, rec = receiver.decode(wire)
        assert fmt == FMT and rec["load"] == 1

    def test_peek_format(self):
        ctx = PBIOContext()
        wire = ctx.encode(FMT, REC)
        assert ctx.peek_format(wire) == FMT
        assert PBIOContext().peek_format(wire) is None


class TestCodegenCaching:
    def test_coders_generated_once_per_format(self):
        ctx = PBIOContext()
        for _ in range(5):
            wire = ctx.encode(FMT, REC)
            ctx.decode(wire)
        assert ctx.generated_encoder_count == 1
        assert ctx.generated_decoder_count == 1

    def test_one_coder_pair_per_format(self):
        ctx = PBIOContext()
        other = IOFormat("Other", [IOField("x", "float")])
        ctx.decode(ctx.encode(FMT, REC))
        ctx.decode(ctx.encode(other, other.make_record(x=1.0)))
        assert ctx.generated_encoder_count == 2
        assert ctx.generated_decoder_count == 2


class TestInterpretiveMode:
    def test_no_codegen_flag_uses_generic_paths(self):
        ctx = PBIOContext(use_codegen=False)
        wire = ctx.encode(FMT, REC)
        fmt, rec = ctx.decode(wire)
        assert records_equal(rec, REC)
        assert ctx.generated_encoder_count == 0
        assert ctx.generated_decoder_count == 0

    def test_wire_format_identical_across_modes(self):
        fast = PBIOContext()
        slow = PBIOContext(use_codegen=False)
        assert fast.encode(FMT, REC) == slow.encode(FMT, REC)
