"""Unit + property tests for meta-data serialization (formats, transform
specs and registries round-tripping through JSON)."""

import pytest
from hypothesis import given

from repro.echo.protocol import (
    RESPONSE_V1,
    RESPONSE_V2,
    V2_TO_V1_TRANSFORM,
)
from repro.errors import FormatError
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry
from repro.pbio.serialization import (
    SCHEMA_VERSION,
    dump_registry,
    format_from_dict,
    format_to_dict,
    load_registry,
    registry_from_dict,
    registry_to_dict,
    transform_from_dict,
    transform_to_dict,
)

from tests.strategies import io_formats


class TestFormatRoundtrip:
    def test_paper_formats(self):
        for fmt in (RESPONSE_V1, RESPONSE_V2):
            clone = format_from_dict(format_to_dict(fmt))
            assert clone == fmt
            assert clone.format_id == fmt.format_id

    def test_defaults_and_importance_survive(self):
        fmt = IOFormat(
            "F",
            [
                IOField("a", "integer", default=7, importance=3.0),
                IOField("b", "string"),
            ],
        )
        clone = format_from_dict(format_to_dict(fmt))
        assert clone.field("a").default_instance() == 7
        assert clone.field("a").importance == 3.0
        assert clone.weighted_weight == fmt.weighted_weight

    def test_arrays_survive(self):
        fmt = IOFormat(
            "F",
            [
                IOField("n", "integer"),
                IOField("xs", "float", array=ArraySpec(length_field="n")),
                IOField("fix", "char", array=ArraySpec(fixed_length=4)),
            ],
        )
        clone = format_from_dict(format_to_dict(fmt))
        assert clone == fmt

    def test_json_serializable(self):
        import json

        json.dumps(format_to_dict(RESPONSE_V2))

    @given(io_formats())
    def test_property_roundtrip(self, fmt):
        clone = format_from_dict(format_to_dict(fmt))
        assert clone == fmt
        assert clone.format_id == fmt.format_id

    @pytest.mark.parametrize(
        "bad", [{}, {"name": "F"}, {"fields": []}, {"name": "F", "fields": [{}]}]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(FormatError):
            format_from_dict(bad)


class TestTransformRoundtrip:
    def test_paper_transform(self):
        clone = transform_from_dict(transform_to_dict(V2_TO_V1_TRANSFORM))
        assert clone == V2_TO_V1_TRANSFORM

    def test_clone_still_compiles_and_runs(self):
        from repro.bench.workloads import response_v1_from_v2, response_v2
        from repro.morph.transform import Transformation
        from repro.pbio.record import records_equal

        clone = transform_from_dict(transform_to_dict(V2_TO_V1_TRANSFORM))
        incoming = response_v2(3)
        out = Transformation(clone).apply(incoming)
        assert records_equal(out, response_v1_from_v2(incoming))

    def test_malformed_rejected(self):
        with pytest.raises(FormatError):
            transform_from_dict({"source": format_to_dict(RESPONSE_V2)})


class TestRegistryRoundtrip:
    def build(self):
        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        registry.register(IOFormat("Loose", [IOField("x", "integer")]))
        return registry

    def test_dict_roundtrip(self):
        original = self.build()
        clone = registry_from_dict(registry_to_dict(original))
        assert {f.format_id for f in clone.formats()} == {
            f.format_id for f in original.formats()
        }
        assert len(clone.transforms_from(RESPONSE_V2)) == 1

    def test_json_roundtrip(self):
        original = self.build()
        clone = load_registry(dump_registry(original))
        assert len(clone) == len(original)
        chains = clone.transform_closure(RESPONSE_V2)
        assert chains and chains[0][-1].target == RESPONSE_V1

    def test_separated_in_time(self, tmp_path):
        """A receiver started 'later' morphs using only the snapshot file
        and the archived wire bytes — no live writer needed."""
        from repro.bench.workloads import response_v2
        from repro.morph.receiver import MorphReceiver
        from repro.pbio.context import PBIOContext

        writer_registry = self.build()
        wire = PBIOContext(writer_registry).encode(RESPONSE_V2, response_v2(2))
        snapshot = tmp_path / "metadata.json"
        snapshot.write_text(dump_registry(writer_registry))
        # ... the writer process is long gone ...
        revived = load_registry(snapshot.read_text())
        receiver = MorphReceiver(revived)
        got = []
        receiver.register_handler(RESPONSE_V1, got.append)
        receiver.process(wire)
        assert got[0]["member_count"] == 2

    def test_unsupported_schema_version(self):
        data = registry_to_dict(self.build())
        data["schema_version"] = 99
        with pytest.raises(FormatError, match="schema version"):
            registry_from_dict(data)

    def test_invalid_json(self):
        with pytest.raises(FormatError, match="JSON"):
            load_registry("{nope")

    def test_schema_version_constant(self):
        assert registry_to_dict(self.build())["schema_version"] == SCHEMA_VERSION
