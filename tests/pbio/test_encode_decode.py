"""Unit tests for the generic (interpretive) encoder/decoder pair."""

import pytest

from repro.errors import DecodeError, EncodeError
from repro.pbio.buffer import HEADER_SIZE, pack_header
from repro.pbio.decode import decode_record, peek_format_id
from repro.pbio.encode import encode_record, encoded_size, native_size
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import records_equal


FLAT = IOFormat(
    "Flat",
    [
        IOField("i8", "integer", 1),
        IOField("i64", "integer", 8),
        IOField("u", "unsigned", 2),
        IOField("f32", "float", 4),
        IOField("f64", "float", 8),
        IOField("flag", "boolean"),
        IOField("e", "enumeration"),
        IOField("c", "char"),
        IOField("s", "string"),
    ],
)

FLAT_REC = FLAT.make_record(
    i8=-5, i64=-(2**40), u=60000, f32=1.5, f64=-2.25, flag=True, e=3,
    c="Z", s="héllo wörld",
)

NESTED = IOFormat(
    "Nested",
    [
        IOField("count", "integer"),
        IOField(
            "points",
            "complex",
            subformat=IOFormat("P", [IOField("x", "integer"), IOField("y", "float")]),
            array=ArraySpec(length_field="count"),
        ),
        IOField("fixed", "unsigned", 1, array=ArraySpec(fixed_length=3)),
    ],
)

NESTED_REC = NESTED.make_record(
    count=2,
    points=[{"x": 1, "y": 0.5}, {"x": -2, "y": 2.0}],
    fixed=[9, 8, 7],
)


class TestRoundtrip:
    def test_flat(self):
        wire = encode_record(FLAT, FLAT_REC)
        assert records_equal(decode_record(FLAT, wire), FLAT_REC)

    def test_nested_arrays(self):
        wire = encode_record(NESTED, NESTED_REC)
        assert records_equal(decode_record(NESTED, wire), NESTED_REC)

    def test_empty_variable_array(self):
        rec = NESTED.make_record(count=0, points=[], fixed=[1, 2, 3])
        wire = encode_record(NESTED, rec)
        assert decode_record(NESTED, wire)["points"] == []

    def test_empty_string(self):
        fmt = IOFormat("S", [IOField("s", "string")])
        wire = encode_record(fmt, {"s": ""})
        assert decode_record(fmt, wire)["s"] == ""

    def test_unicode_string(self):
        fmt = IOFormat("S", [IOField("s", "string")])
        text = "日本語 emoji 🎉 mixed"
        wire = encode_record(fmt, {"s": text})
        assert decode_record(fmt, wire)["s"] == text


class TestEncodeErrors:
    def test_missing_field(self):
        with pytest.raises(EncodeError, match="missing field"):
            encode_record(FLAT, {})

    def test_out_of_range_int(self):
        rec = FLAT.make_record(**{**FLAT_REC, "i8": 1000})
        with pytest.raises(EncodeError, match="out of range"):
            encode_record(FLAT, rec)

    def test_count_mismatch(self):
        rec = NESTED.make_record(count=5, points=[{"x": 1, "y": 0.0}],
                                 fixed=[0, 0, 0])
        # bypass make_record validation is none; encode checks counts
        with pytest.raises(EncodeError, match="count field"):
            encode_record(NESTED, rec)

    def test_fixed_array_length(self):
        rec = NESTED.make_record(count=0, points=[], fixed=[1])
        with pytest.raises(EncodeError, match="fixed array"):
            encode_record(NESTED, rec)

    def test_char_must_be_one_character(self):
        rec = FLAT.make_record(**{**FLAT_REC, "c": "no"})
        with pytest.raises(EncodeError, match="1 character"):
            encode_record(FLAT, rec)

    def test_string_field_rejects_non_string(self):
        rec = FLAT.make_record(**{**FLAT_REC, "s": 42})
        with pytest.raises(EncodeError, match="string field"):
            encode_record(FLAT, rec)

    def test_array_field_rejects_non_sequence(self):
        rec = dict(NESTED_REC)
        rec["points"] = 42
        with pytest.raises(EncodeError, match="sequence"):
            encode_record(NESTED, rec)


class TestDecodeErrors:
    def test_trailing_garbage_detected(self):
        wire = encode_record(FLAT, FLAT_REC)
        # lie about a longer payload containing junk
        inflated = pack_header(FLAT.format_id, len(wire) - HEADER_SIZE + 4)
        corrupted = inflated + wire[HEADER_SIZE:] + b"\x00\x00\x00\x00"
        with pytest.raises(DecodeError, match="trailing"):
            decode_record(FLAT, corrupted)

    def test_truncated_payload(self):
        wire = encode_record(FLAT, FLAT_REC)
        with pytest.raises(DecodeError):
            decode_record(FLAT, wire[: HEADER_SIZE + 2] )

    def test_negative_count_rejected(self):
        fmt = IOFormat(
            "N",
            [
                IOField("n", "integer"),
                IOField("xs", "integer", array=ArraySpec(length_field="n")),
            ],
        )
        # hand-craft a payload with n = -1
        import struct

        payload = struct.pack("<i", -1)
        wire = pack_header(fmt.format_id, len(payload)) + payload
        with pytest.raises(DecodeError, match="count"):
            decode_record(fmt, wire)


class TestSizes:
    def test_peek_format_id(self):
        wire = encode_record(FLAT, FLAT_REC)
        assert peek_format_id(wire) == FLAT.format_id

    def test_encoded_size_matches_actual(self):
        for fmt, rec in ((FLAT, FLAT_REC), (NESTED, NESTED_REC)):
            assert encoded_size(fmt, rec) == len(encode_record(fmt, rec))

    def test_native_size_flat(self):
        # 1+8+2+4+8+1+4+1 scalars + len(utf8)+1 for the string
        expected = 29 + len("héllo wörld".encode("utf-8")) + 1
        assert native_size(FLAT, FLAT_REC) == expected

    def test_pbio_overhead_is_small(self):
        # header + string length prefixes only
        overhead = len(encode_record(FLAT, FLAT_REC)) - native_size(FLAT, FLAT_REC)
        assert overhead < 30
