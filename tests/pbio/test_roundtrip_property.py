"""Property-based tests: encode/decode round-trips over random formats.

The central invariants of the PBIO substrate:

* decode(encode(rec)) == rec for every conforming record,
* the generated (DCG) coders agree byte-for-byte / value-for-value with
  the generic interpretive ones,
* encoded_size predicts the actual buffer length,
* fingerprints are stable across re-declaration.
"""

from hypothesis import given, settings

from repro.pbio import codegen
from repro.pbio.decode import decode_record
from repro.pbio.encode import encode_record, encoded_size
from repro.pbio.record import records_equal

from tests.strategies import format_and_record, io_formats


@given(format_and_record())
def test_generic_roundtrip(fmt_rec):
    fmt, rec = fmt_rec
    fmt.validate_record(rec)
    wire = encode_record(fmt, rec)
    assert records_equal(decode_record(fmt, wire), rec)


@given(format_and_record())
def test_generated_encoder_matches_generic(fmt_rec):
    fmt, rec = fmt_rec
    assert codegen.make_encoder(fmt)(rec) == encode_record(fmt, rec)


@given(format_and_record())
def test_generated_decoder_matches_generic(fmt_rec):
    fmt, rec = fmt_rec
    wire = encode_record(fmt, rec)
    assert codegen.make_decoder(fmt)(wire) == decode_record(fmt, wire)


@given(format_and_record())
def test_generated_roundtrip(fmt_rec):
    fmt, rec = fmt_rec
    wire = codegen.make_encoder(fmt)(rec)
    assert records_equal(codegen.make_decoder(fmt)(wire), rec)


@given(format_and_record())
def test_encoded_size_predicts_length(fmt_rec):
    fmt, rec = fmt_rec
    assert encoded_size(fmt, rec) == len(encode_record(fmt, rec))


@given(io_formats())
def test_fingerprint_stable_and_weight_positive(fmt):
    assert fmt.format_id == fmt.format_id
    assert fmt.weight >= 1
    # re-declaring the same structure reproduces the id
    from repro.pbio.format import IOFormat

    clone = IOFormat(fmt.name, list(fmt.fields), version=fmt.version)
    assert clone.format_id == fmt.format_id


@given(io_formats())
def test_default_record_validates(fmt):
    fmt.validate_record(fmt.default_record())


@given(io_formats())
@settings(max_examples=25)
def test_default_record_roundtrips(fmt):
    rec = fmt.default_record()
    wire = encode_record(fmt, rec)
    assert records_equal(decode_record(fmt, wire), rec)
