"""Tests for the dynamically generated (DCG) encoders/decoders: source
structure, equivalence with the generic path, and error behaviour."""

import pytest

from repro.errors import DecodeError, EncodeError
from repro.pbio import codegen
from repro.pbio.decode import decode_record
from repro.pbio.encode import encode_record
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import Record, records_equal


FMT = IOFormat(
    "Mixed",
    [
        IOField("a", "integer"),
        IOField("b", "integer", 8),
        IOField("c", "float"),
        IOField("name", "string"),
        IOField("flag", "boolean"),
        IOField("n", "integer"),
        IOField(
            "subs",
            "complex",
            subformat=IOFormat("S", [IOField("k", "string"), IOField("v", "integer")]),
            array=ArraySpec(length_field="n"),
        ),
        IOField("ch", "char"),
    ],
)

REC = FMT.make_record(
    a=1, b=2**40, c=3.5, name="probe", flag=True, n=2,
    subs=[{"k": "x", "v": 10}, {"k": "y", "v": -20}], ch="Q",
)


class TestGeneratedSource:
    def test_decoder_source_fuses_scalar_runs(self):
        source, structs = codegen.decoder_source(FMT)
        # a, b, c fuse into one unpack; flag+n fuse into another
        assert "unpack_from" in source
        assert any(s.format == "<iqd" for s in structs)

    def test_encoder_source_fuses_scalar_runs(self):
        source, structs = codegen.encoder_source(FMT)
        assert any(s.format == "<iqd" for s in structs)
        assert "_ext" in source

    def test_decoder_source_compiles_standalone(self):
        source, _ = codegen.decoder_source(FMT)
        compile(source, "<test>", "exec")  # must be valid Python

    def test_source_mentions_format_name(self):
        source, _ = codegen.decoder_source(FMT)
        assert "Mixed" in source


class TestEquivalenceWithGenericPath:
    def test_encoder_matches_generic(self):
        assert codegen.make_encoder(FMT)(REC) == encode_record(FMT, REC)

    def test_decoder_matches_generic(self):
        wire = encode_record(FMT, REC)
        generated = codegen.make_decoder(FMT)(wire)
        generic = decode_record(FMT, wire)
        assert generated == generic
        assert records_equal(generated, REC)

    def test_roundtrip_through_generated_pair(self):
        encode = codegen.make_encoder(FMT)
        decode = codegen.make_decoder(FMT)
        assert records_equal(decode(encode(REC)), REC)

    def test_decoded_records_are_records(self):
        decode = codegen.make_decoder(FMT)
        out = decode(encode_record(FMT, REC))
        assert isinstance(out, Record)
        assert isinstance(out["subs"][0], Record)
        assert out.subs[1].v == -20  # attribute access works


class TestGeneratedErrors:
    def test_wrong_format_id_rejected(self):
        other = IOFormat("Other", [IOField("x", "integer")])
        wire = encode_record(other, {"x": 1})
        with pytest.raises(DecodeError, match="does not match"):
            codegen.make_decoder(FMT)(wire)

    def test_truncated_message(self):
        wire = encode_record(FMT, REC)
        from repro.pbio.buffer import pack_header, HEADER_SIZE

        chopped = pack_header(FMT.format_id, 4) + wire[HEADER_SIZE : HEADER_SIZE + 4]
        with pytest.raises(DecodeError):
            codegen.make_decoder(FMT)(chopped)

    def test_missing_record_field(self):
        bad = dict(REC)
        del bad["name"]
        with pytest.raises(EncodeError, match="conform"):
            codegen.make_encoder(FMT)(bad)

    def test_count_mismatch(self):
        bad = FMT.make_record(**{**REC, "n": 9})
        with pytest.raises(EncodeError, match="count field"):
            codegen.make_encoder(FMT)(bad)

    def test_fixed_array_mismatch(self):
        fmt = IOFormat("F", [IOField("xs", "integer", array=ArraySpec(fixed_length=2))])
        with pytest.raises(EncodeError, match="fixed array"):
            codegen.make_payload_encoder(fmt)({"xs": [1, 2, 3]})

    def test_char_length_checked(self):
        fmt = IOFormat("C", [IOField("c", "char")])
        with pytest.raises(EncodeError, match="1 character"):
            codegen.make_encoder(fmt)({"c": "ab"})

    def test_out_of_range_scalar_becomes_encode_error(self):
        fmt = IOFormat("I", [IOField("i", "integer", 1)])
        with pytest.raises(EncodeError):
            codegen.make_encoder(fmt)({"i": 5000})

    def test_truncated_string_detected(self):
        fmt = IOFormat("S", [IOField("s", "string")])
        wire = bytearray(codegen.make_encoder(fmt)({"s": "hello"}))
        # corrupt the string length prefix to point past the payload
        import struct
        from repro.pbio.buffer import HEADER_SIZE

        struct.pack_into("<I", wire, HEADER_SIZE, 10_000)
        with pytest.raises(DecodeError):
            codegen.make_decoder(fmt)(bytes(wire))


class TestEdgeShapes:
    def test_format_of_only_strings(self):
        fmt = IOFormat("Strs", [IOField("a", "string"), IOField("b", "string")])
        rec = {"a": "x", "b": ""}
        wire = codegen.make_encoder(fmt)(rec)
        assert codegen.make_decoder(fmt)(wire) == rec

    def test_single_scalar(self):
        fmt = IOFormat("One", [IOField("x", "integer")])
        wire = codegen.make_encoder(fmt)({"x": -7})
        assert codegen.make_decoder(fmt)(wire) == {"x": -7}

    def test_nested_variable_arrays(self):
        inner = IOFormat(
            "Inner",
            [
                IOField("m", "integer"),
                IOField("vals", "float", array=ArraySpec(length_field="m")),
            ],
        )
        outer = IOFormat(
            "Outer",
            [
                IOField("n", "integer"),
                IOField("rows", "complex", subformat=inner,
                        array=ArraySpec(length_field="n")),
            ],
        )
        rec = outer.make_record(
            n=2,
            rows=[{"m": 1, "vals": [0.5]}, {"m": 3, "vals": [1.0, 2.0, 3.0]}],
        )
        wire = codegen.make_encoder(outer)(rec)
        assert records_equal(codegen.make_decoder(outer)(wire), rec)

    def test_fixed_array_of_complex(self):
        pair = IOFormat("Pair", [IOField("a", "integer"), IOField("b", "integer")])
        fmt = IOFormat(
            "F",
            [IOField("ps", "complex", subformat=pair, array=ArraySpec(fixed_length=2))],
        )
        rec = {"ps": [{"a": 1, "b": 2}, {"a": 3, "b": 4}]}
        wire = codegen.make_encoder(fmt)(rec)
        assert codegen.make_decoder(fmt)(wire) == rec

    def test_zero_length_fixed_array(self):
        fmt = IOFormat(
            "Z",
            [
                IOField("xs", "integer", array=ArraySpec(fixed_length=0)),
                IOField("tail", "integer"),
            ],
        )
        wire = codegen.make_encoder(fmt)({"xs": [], "tail": 5})
        assert codegen.make_decoder(fmt)(wire) == {"xs": [], "tail": 5}
