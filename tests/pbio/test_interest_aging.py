"""Interest aging: TTL leases on projection interests, heartbeat-driven
re-announcement, and the proactive sweep.

A projection interest is a claim about a *live* subscriber.  When the
subscriber crashes, nobody retracts the claim, and without aging the
group's union projection stays narrowed forever — the format server
would keep dropping fields a future (or recovered) subscriber needs.
With ``interest_ttl`` set, every interest is a lease the holder renews
by re-announcing (``reannounce_interests`` rides the owner's heartbeat
cadence); stale leases age out lazily on the next touch or proactively
via ``sweep_interests``, widening the projection back.
"""

from __future__ import annotations

from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.server import CachingFormatResolver, FormatServer

EVT = IOFormat(
    "AgedEvt",
    [IOField("n", "integer"), IOField("x", "integer"),
     IOField("y", "integer")],
    version="1.0",
)


def _noop():
    pass


def build(interest_ttl=1.0):
    net = Network(default_link=LinkSpec(latency=0.001))
    big = 1_000_000
    server = FormatServer(
        net, "fs-a", breaker_threshold=big, interest_ttl=interest_ttl
    )
    # A small request timeout matters here: the resolver's timeout
    # timer drains on every net.run(), advancing the virtual clock by
    # that much — it must stay well under the TTLs being tested.
    options = {"request_timeout": 0.05, "breaker_threshold": big}
    sub_a = CachingFormatResolver(net, "sub-a", ["fs-a"], **options)
    sub_b = CachingFormatResolver(net, "sub-b", ["fs-a"], **options)
    return net, server, sub_a, sub_b


def advance(net, seconds):
    net.call_later(seconds, _noop)
    net.run()


class TestInterestTTL:
    def test_stale_interest_ages_out_on_next_touch(self):
        net, server, sub_a, sub_b = build(interest_ttl=1.0)
        sub_a.announce_interest("grp", EVT, ["n"])
        net.run()
        key = (EVT.format_id, "grp")
        assert "sub-a" in server._interests[key]

        advance(net, 2.0)  # past the TTL with no renewal
        sub_b.announce_interest("grp", EVT, ["x"])
        net.run()
        # the lazy path expired sub-a when the group was next touched
        assert "sub-a" not in server._interests[key]
        assert server._interests[key]["sub-b"] == ["x"]
        assert server.stats["interest_expirations"] == 1

    def test_reannounce_renews_the_lease(self):
        net, server, sub_a, sub_b = build(interest_ttl=1.0)
        sub_a.announce_interest("grp", EVT, ["n"])
        net.run()
        advance(net, 0.8)
        assert sub_a.reannounce_interests() == 1
        net.run()
        advance(net, 0.8)  # 1.6s since the first announce, 0.8 since renewal
        sub_b.announce_interest("grp", EVT, ["x"])
        net.run()
        key = (EVT.format_id, "grp")
        # the renewed lease survived: both interests stand
        assert set(server._interests[key]) == {"sub-a", "sub-b"}
        assert server.stats["interest_expirations"] == 0
        assert sub_a.stats["interest_reannounces"] == 1

    def test_sweep_expires_untouched_groups(self):
        net, server, sub_a, _sub_b = build(interest_ttl=1.0)
        sub_a.announce_interest("grp", EVT, ["n"])
        net.run()
        advance(net, 2.0)
        # nothing touched the group — only the proactive pass can age it
        assert server.sweep_interests() == 1
        net.run()
        key = (EVT.format_id, "grp")
        assert server._interests.get(key) == {}
        assert server.stats["interest_expirations"] == 1
        # sweeping again is a no-op
        assert server.sweep_interests() == 0

    def test_no_ttl_means_no_expiry(self):
        net, server, sub_a, sub_b = build(interest_ttl=None)
        sub_a.announce_interest("grp", EVT, ["n"])
        net.run()
        advance(net, 100.0)
        sub_b.announce_interest("grp", EVT, ["x"])
        net.run()
        key = (EVT.format_id, "grp")
        assert set(server._interests[key]) == {"sub-a", "sub-b"}
        assert server.sweep_interests() == 0


class TestReannounce:
    def test_retract_removes_the_announcement_from_replay(self):
        net, _server, sub_a, _sub_b = build()
        sub_a.announce_interest("grp", EVT, ["n"])
        net.run()
        sub_a.announce_interest("grp", EVT, None, retract=True)
        net.run()
        assert sub_a.reannounce_interests() == 0

    def test_reannounce_is_a_noop_while_degraded(self):
        net, _server, sub_a, _sub_b = build()
        sub_a.announce_interest("grp", EVT, ["n"])
        net.run()
        sub_a.degraded = True
        assert sub_a.reannounce_interests() == 0

    def test_full_format_interest_replays_as_full(self):
        net, server, sub_a, _sub_b = build()
        sub_a.announce_interest("grp", EVT, None)  # needs every field
        net.run()
        assert sub_a.reannounce_interests() == 1
        net.run()
        key = (EVT.format_id, "grp")
        assert server._interests[key]["sub-a"] is None


class TestHeartbeatWiring:
    def test_fabric_worker_heartbeat_reannounces(self):
        """The worker's lease renewal doubles as the interest lease
        renewal: an accepted heartbeat replays the resolver's live
        announcements."""
        from repro.fabric import EventFabric
        from repro.pbio.registry import FormatRegistry

        net = Network(default_link=LinkSpec(latency=0.001))
        fabric = EventFabric(
            net, registry=FormatRegistry(), lease_timeout=10.0
        )
        worker = fabric.add_worker("w1")

        calls = []

        class StubResolver:
            def reannounce_interests(self):
                calls.append("reannounce")
                return 1

        worker.resolver = StubResolver()
        assert worker.heartbeat() is True
        assert calls == ["reannounce"]

    def test_echo_process_heartbeat_reannounces(self):
        from repro.echo.process import EChoProcess
        from repro.pbio.registry import FormatRegistry

        net = Network(default_link=LinkSpec(latency=0.001))
        process = EChoProcess(net, "echo-1", FormatRegistry())
        assert process.heartbeat() == 0  # no resolver: nothing to renew

        calls = []

        class StubResolver:
            def reannounce_interests(self):
                calls.append("reannounce")
                return 2

        process.resolver = StubResolver()
        assert process.heartbeat() == 2
        assert calls == ["reannounce"]
