"""Unit tests for the PBIO type system."""

import pytest

from repro.errors import FormatError
from repro.pbio.types import (
    DEFAULT_SIZES,
    LEGAL_SIZES,
    STRUCT_CODES,
    TypeKind,
    coerce_value,
    default_value,
    validate_size,
)


class TestTypeKind:
    def test_all_scalars_are_basic(self):
        for kind in TypeKind:
            assert kind.is_basic == (kind is not TypeKind.COMPLEX)

    def test_kind_from_string(self):
        assert TypeKind("integer") is TypeKind.INTEGER
        assert TypeKind("string") is TypeKind.STRING

    def test_every_scalar_kind_has_default_size(self):
        for kind in TypeKind:
            if kind is TypeKind.COMPLEX:
                continue
            assert kind in DEFAULT_SIZES
            assert DEFAULT_SIZES[kind] in LEGAL_SIZES[kind] or kind is TypeKind.STRING


class TestValidateSize:
    def test_zero_selects_default(self):
        assert validate_size(TypeKind.INTEGER, 0) == 4
        assert validate_size(TypeKind.FLOAT, 0) == 8

    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_integer_sizes(self, size):
        assert validate_size(TypeKind.INTEGER, size) == size

    @pytest.mark.parametrize("size", [3, 5, 16, -1])
    def test_illegal_integer_size(self, size):
        with pytest.raises(FormatError):
            validate_size(TypeKind.INTEGER, size)

    def test_float_rejects_two_bytes(self):
        with pytest.raises(FormatError):
            validate_size(TypeKind.FLOAT, 2)

    def test_complex_has_no_size(self):
        with pytest.raises(FormatError):
            validate_size(TypeKind.COMPLEX, 4)

    def test_char_only_one_byte(self):
        assert validate_size(TypeKind.CHAR, 1) == 1
        with pytest.raises(FormatError):
            validate_size(TypeKind.CHAR, 2)


class TestStructCodes:
    def test_every_legal_scalar_size_has_a_code(self):
        for kind, sizes in LEGAL_SIZES.items():
            if kind is TypeKind.STRING:
                continue
            for size in sizes:
                assert (kind, size) in STRUCT_CODES


class TestDefaults:
    def test_numeric_defaults_are_zero(self):
        assert default_value(TypeKind.INTEGER) == 0
        assert default_value(TypeKind.UNSIGNED) == 0
        assert default_value(TypeKind.ENUMERATION) == 0
        assert default_value(TypeKind.FLOAT) == 0.0

    def test_boolean_default_false(self):
        assert default_value(TypeKind.BOOLEAN) is False

    def test_string_default_empty(self):
        assert default_value(TypeKind.STRING) == ""

    def test_char_default_nul(self):
        assert default_value(TypeKind.CHAR) == "\x00"

    def test_complex_has_no_scalar_default(self):
        with pytest.raises(FormatError):
            default_value(TypeKind.COMPLEX)


class TestCoerceValue:
    def test_int_kinds_coerce_to_int(self):
        assert coerce_value(TypeKind.INTEGER, 3.9) == 3
        assert coerce_value(TypeKind.UNSIGNED, True) == 1
        assert coerce_value(TypeKind.ENUMERATION, "7") == 7

    def test_float_coerces(self):
        assert coerce_value(TypeKind.FLOAT, 3) == 3.0
        assert isinstance(coerce_value(TypeKind.FLOAT, 3), float)

    def test_boolean_coerces_truthiness(self):
        assert coerce_value(TypeKind.BOOLEAN, 2) is True
        assert coerce_value(TypeKind.BOOLEAN, 0) is False

    def test_char_requires_single_character(self):
        assert coerce_value(TypeKind.CHAR, "x") == "x"
        with pytest.raises(FormatError):
            coerce_value(TypeKind.CHAR, "xy")
        with pytest.raises(FormatError):
            coerce_value(TypeKind.CHAR, "")

    def test_char_accepts_bytes(self):
        assert coerce_value(TypeKind.CHAR, b"z") == "z"

    def test_string_coerces_via_str(self):
        assert coerce_value(TypeKind.STRING, 42) == "42"

    def test_complex_not_coercible(self):
        with pytest.raises(FormatError):
            coerce_value(TypeKind.COMPLEX, {})
