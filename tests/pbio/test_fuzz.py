"""Fuzz-style robustness properties: hostile bytes must fail with the
library's own exceptions, never with raw Python errors, and never hang.

A middleware decode path is directly exposed to the network; these
properties pin down its total failure behaviour.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import response_v2
from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2, V2_TO_V1_TRANSFORM
from repro.errors import ReproError
from repro.morph.receiver import MorphReceiver
from repro.pbio import codegen
from repro.pbio.buffer import unpack_header
from repro.pbio.context import PBIOContext
from repro.pbio.decode import decode_record
from repro.pbio.registry import FormatRegistry

from tests.strategies import io_formats


@given(st.binary(max_size=200))
@settings(max_examples=200)
def test_unpack_header_total(data):
    try:
        unpack_header(data)
    except ReproError:
        pass  # DecodeError is the only acceptable failure


@given(io_formats(), st.binary(max_size=300))
def test_generic_decode_total(fmt, data):
    try:
        decode_record(fmt, data)
    except ReproError:
        pass


@given(io_formats(), st.binary(max_size=300))
@settings(max_examples=60)
def test_generated_decode_total(fmt, data):
    decoder = codegen.make_decoder(fmt)
    try:
        decoder(data)
    except ReproError:
        pass


@given(st.binary(min_size=1, max_size=200), st.integers(0, 400))
@settings(max_examples=100)
def test_bitflipped_real_message_total(noise, position):
    """Take a real wire message, corrupt it, decode: either a clean
    library error or a structurally valid (if wrong) record."""
    registry = FormatRegistry()
    registry.register_transform(V2_TO_V1_TRANSFORM)
    sender = PBIOContext(registry)
    wire = bytearray(sender.encode(RESPONSE_V2, response_v2(2)))
    position %= len(wire)
    wire[position : position + len(noise)] = noise
    receiver = MorphReceiver(registry)
    receiver.register_handler(RESPONSE_V1, lambda rec: rec)
    try:
        record = receiver.process(bytes(wire))
    except ReproError:
        return
    except (UnicodeDecodeError, OverflowError, MemoryError):
        # struct/codec-level failures wrapped imperfectly would show up
        # here; the decode layer must translate them
        raise AssertionError("decode leaked a non-library exception")
    if isinstance(record, dict):
        assert "member_count" in record


@given(io_formats())
@settings(max_examples=40)
def test_truncation_sweep_total(fmt):
    """Every prefix of a valid message fails cleanly (or, for the full
    length, decodes exactly)."""
    from repro.pbio.encode import encode_record
    from repro.pbio.record import records_equal

    rec = fmt.default_record()
    wire = encode_record(fmt, rec)
    decoder = codegen.make_decoder(fmt)
    for cut in range(0, len(wire), max(1, len(wire) // 16)):
        try:
            decoder(wire[:cut])
        except ReproError:
            pass
    assert records_equal(decoder(wire), rec)
