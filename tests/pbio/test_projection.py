"""ProjectionFormat: derived field-subset formats with provenance.

Covers derivation (field order, auto-included array counters, error
cases), the project/widen record helpers the differential oracle and
the receiver's staged path rely on, wire round-trips through both codec
paths, serialization with the provenance block, and the content-aware
``FormatRegistry.replace`` that authoritative refreshes go through.
"""

import pytest

from repro.errors import FormatError
from repro.pbio.codegen import make_decoder, make_encoder
from repro.pbio.decode import decode_record
from repro.pbio.encode import encode_record
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.projection import (
    ProjectionFormat,
    project_format,
    project_record,
    projection_ratio,
    projection_version,
    widen_record,
)
from repro.pbio.registry import FormatRegistry
from repro.pbio.serialization import format_from_dict, format_to_dict


PARENT = IOFormat(
    "Telemetry",
    [
        IOField("seq", "integer"),
        IOField("count", "integer"),
        IOField("samples", "integer", array=ArraySpec(length_field="count")),
        IOField("tag", "integer"),
        IOField("pad", "integer", array=ArraySpec(fixed_length=4)),
    ],
    version="1.0",
)


def record(seq=1, samples=(5, 6), tag=9):
    return PARENT.make_record(
        seq=seq, count=len(samples), samples=list(samples), tag=tag,
        pad=[0, 0, 0, 0],
    )


class TestProjectFormat:
    def test_keeps_parent_field_order(self):
        proj = project_format(PARENT, ["tag", "seq"], epoch=1)
        assert proj.field_names() == ["seq", "tag"]

    def test_auto_includes_variable_array_counters(self):
        proj = project_format(PARENT, ["samples"], epoch=1)
        assert proj.field_names() == ["count", "samples"]

    def test_carries_provenance_to_the_parent(self):
        proj = project_format(PARENT, ["seq"], epoch=3)
        assert isinstance(proj, ProjectionFormat)
        assert proj.parent_format_id == PARENT.format_id
        assert proj.projection_epoch == 3
        assert proj.version == projection_version(PARENT, 3) == "1.0+p3"

    def test_epochs_get_distinct_wire_ids(self):
        one = project_format(PARENT, ["seq"], epoch=1)
        two = project_format(PARENT, ["seq"], epoch=2)
        assert one.format_id != two.format_id
        assert one.format_id != PARENT.format_id

    def test_unknown_field_rejected(self):
        with pytest.raises(FormatError):
            project_format(PARENT, ["nope"], epoch=1)

    def test_empty_selection_rejected(self):
        with pytest.raises(FormatError):
            project_format(PARENT, [], epoch=1)

    def test_ratio(self):
        proj = project_format(PARENT, ["seq"], epoch=1)
        assert projection_ratio(proj, PARENT) == pytest.approx(1 / 5)


class TestRecordHelpers:
    def test_project_record_restricts_to_projection_fields(self):
        proj = project_format(PARENT, ["seq", "samples"], epoch=1)
        projected = project_record(proj, record(seq=7, samples=(1, 2, 3)))
        assert dict(projected) == {"seq": 7, "count": 3, "samples": [1, 2, 3]}

    def test_widen_record_fills_parent_defaults(self):
        proj = project_format(PARENT, ["seq"], epoch=1)
        widened = widen_record(proj, PARENT, {"seq": 4})
        assert widened["seq"] == 4
        assert widened["count"] == 0
        assert widened["samples"] == []
        assert widened["pad"] == [0, 0, 0, 0]

    def test_widen_record_never_resyncs_counters(self):
        # A projected record can legitimately carry a counter whose
        # array was dropped; widening must keep the transmitted value
        # verbatim instead of re-deriving it from the defaulted array.
        proj = project_format(PARENT, ["count"], epoch=1)
        widened = widen_record(proj, PARENT, {"count": 17})
        assert widened["count"] == 17
        assert widened["samples"] == []


class TestWire:
    def test_roundtrip_generic_and_specialized_agree(self):
        proj = project_format(PARENT, ["seq", "samples"], epoch=2)
        rec = record(seq=11, samples=(3, 1, 4, 1))
        for order in ("little", "big"):
            wire = encode_record(proj, rec, byte_order=order)
            assert make_encoder(proj, byte_order=order)(rec) == wire
            decoded = decode_record(proj, wire)
            assert dict(decoded) == dict(project_record(proj, rec))
            assert dict(make_decoder(proj)(wire)) == dict(decoded)

    def test_projected_wire_is_smaller(self):
        proj = project_format(PARENT, ["seq"], epoch=1)
        rec = record()
        assert len(encode_record(proj, rec)) < len(encode_record(PARENT, rec))


class TestSerialization:
    def test_provenance_survives_the_wire_dict(self):
        proj = project_format(PARENT, ["seq", "tag"], epoch=5)
        clone = format_from_dict(format_to_dict(proj))
        assert isinstance(clone, ProjectionFormat)
        assert clone.parent_format_id == PARENT.format_id
        assert clone.projection_epoch == 5
        assert clone.format_id == proj.format_id

    def test_plain_formats_carry_no_projection_block(self):
        assert "projection" not in format_to_dict(PARENT)

    def test_malformed_projection_block_rejected(self):
        payload = format_to_dict(project_format(PARENT, ["seq"], epoch=1))
        payload["projection"] = {"parent_format_id": "not-a-number"}
        with pytest.raises(FormatError):
            format_from_dict(payload)


class TestRegistryReplace:
    def test_replace_registers_fresh_content(self):
        registry = FormatRegistry()
        assert registry.replace(PARENT) is False
        assert registry.lookup_id(PARENT.format_id) is PARENT

    def test_replace_is_idempotent_for_equal_content(self):
        registry = FormatRegistry()
        registry.register(PARENT)
        assert registry.replace(PARENT) is False

    def test_replace_displaces_on_default_change(self):
        # Field defaults are invisible to the fingerprint id, so both
        # revisions share a wire id — the refresh must still win.
        a = IOFormat("Evt", [IOField("n", "integer")], version="1.0")
        b = IOFormat(
            "Evt", [IOField("n", "integer", default=7)], version="1.0"
        )
        assert a.format_id == b.format_id
        registry = FormatRegistry()
        registry.register(a)
        assert registry.replace(b) is True
        assert registry.lookup_id(a.format_id) is b

    def test_replace_displaces_plain_clone_of_a_projection(self):
        # Same structural signature, but only one carries provenance:
        # the projection-aware entry must displace the plain clone.
        proj = project_format(PARENT, ["seq"], epoch=1)
        plain = IOFormat(proj.name, list(proj.fields), version=proj.version)
        assert plain.format_id == proj.format_id
        registry = FormatRegistry()
        registry.register(plain)
        assert registry.replace(proj) is True
        assert isinstance(registry.lookup_id(proj.format_id), ProjectionFormat)

    def test_replace_drops_transforms_of_the_displaced_entry(self):
        from repro.pbio.registry import TransformSpec

        a = IOFormat("Evt", [IOField("n", "integer")], version="1.0")
        b = IOFormat(
            "Evt", [IOField("n", "integer", default=7)], version="1.0"
        )
        target = IOFormat("Evt", [IOField("n", "integer")], version="0.0")
        registry = FormatRegistry()
        registry.register_transform(TransformSpec(
            source=a, target=target, code="old.n = new.n;"
        ))
        assert registry.transforms_from(a)
        registry.replace(b)
        assert registry.transforms_from(b) == []
