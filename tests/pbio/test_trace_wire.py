"""Wire-level trace-context block tests (ISSUE 5 tentpole).

Covers the layout contract: the 26-byte block sits between the PBIO
header and the payload behind ``FLAG_TRACE``; every decoder slices the
payload by ``header.body_offset``; and — the acceptance-critical
property — a message encoded with tracing disabled is **byte-identical**
to one from a build that never heard of tracing.
"""

import pytest

from repro import obs
from repro.errors import DecodeError, EncodeError
from repro.obs.tracectx import TRACE_BLOCK_SIZE, TraceContext, make_context
from repro.pbio.buffer import (
    FLAG_TRACE,
    HEADER_SIZE,
    attach_trace,
    pack_header,
    peek_trace,
    strip_trace,
    unpack_header,
)
from repro.pbio.context import PBIOContext
from repro.pbio.decode import decode_record
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.registry import FormatRegistry

FMT = IOFormat(
    "TraceWire",
    [IOField("n", "integer"), IOField("label", "string")],
    version="1",
)

CTX = TraceContext(trace_id=0x1122334455667788_99AABBCCDDEEFF00,
                   span_id=0xDEADBEEFCAFEF00D)


def _encode(use_codegen: bool) -> bytes:
    registry = FormatRegistry()
    context = PBIOContext(registry, use_codegen=use_codegen)
    return context.encode(FMT, FMT.make_record(n=7, label="hello"))


class TestAttachStripPeek:
    def test_attach_sets_flag_and_inserts_block(self):
        wire = _encode(use_codegen=False)
        traced = attach_trace(wire, CTX)
        assert len(traced) == len(wire) + TRACE_BLOCK_SIZE
        header = unpack_header(traced)
        assert header.flags & FLAG_TRACE
        assert header.trace == CTX
        assert header.body_offset == HEADER_SIZE + TRACE_BLOCK_SIZE
        # payload bytes are untouched, just shifted
        assert traced[header.body_offset:] == wire[HEADER_SIZE:]

    def test_strip_restores_original_bytes(self):
        wire = _encode(use_codegen=False)
        stripped, ctx = strip_trace(attach_trace(wire, CTX))
        assert stripped == wire
        assert ctx == CTX

    def test_strip_untraced_is_identity(self):
        wire = _encode(use_codegen=False)
        stripped, ctx = strip_trace(wire)
        assert stripped == wire
        assert ctx is None

    def test_peek_traced_and_untraced(self):
        wire = _encode(use_codegen=False)
        assert peek_trace(wire) is None
        assert peek_trace(attach_trace(wire, CTX)) == CTX

    def test_peek_never_raises_on_garbage(self):
        assert peek_trace(b"") is None
        assert peek_trace(b"\x00" * 100) is None
        assert peek_trace(b"RLP1" + b"\xff" * 60) is None

    def test_peek_at_offset(self):
        wire = attach_trace(_encode(use_codegen=False), CTX)
        framed = b"\x00" * 13 + wire
        assert peek_trace(framed, 13) == CTX

    def test_double_attach_rejected(self):
        traced = attach_trace(_encode(use_codegen=False), CTX)
        with pytest.raises(EncodeError, match="already carries"):
            attach_trace(traced, CTX)

    def test_attach_to_truncated_rejected(self):
        with pytest.raises(EncodeError):
            attach_trace(b"\x00" * 4, CTX)


class TestDecodeWithTraceBlock:
    @pytest.mark.parametrize("use_codegen", [False, True])
    def test_traced_wire_decodes_identically(self, use_codegen):
        registry = FormatRegistry()
        context = PBIOContext(registry, use_codegen=use_codegen)
        wire = context.encode(FMT, FMT.make_record(n=41, label="zz"))
        plain = context.decode_as(FMT, wire)
        traced = context.decode_as(FMT, attach_trace(wire, CTX))
        assert traced == plain

    def test_generic_decode_record_uses_body_offset(self):
        wire = attach_trace(_encode(use_codegen=False), CTX)
        record = decode_record(FMT, wire)
        assert record["n"] == 7
        assert record["label"] == "hello"

    def test_corrupt_block_version_is_decode_error(self):
        wire = bytearray(attach_trace(_encode(use_codegen=False), CTX))
        wire[HEADER_SIZE] = 99  # block version byte
        with pytest.raises(DecodeError, match="trace-context version"):
            unpack_header(bytes(wire))

    def test_flag_without_block_is_decode_error(self):
        # a fuzz mutation can flip FLAG_TRACE on an untraced message:
        # both decode paths must agree it is malformed
        wire = bytearray(pack_header(FMT.format_id, 0))
        wire[5] |= FLAG_TRACE
        with pytest.raises(DecodeError):
            unpack_header(bytes(wire))


class TestByteIdenticalWhenDisabled:
    def test_encode_is_byte_identical_with_tracing_machinery_disabled(self):
        """The acceptance property: with tracing disabled the wire
        carries zero extra bytes — encode output is byte-identical
        whether or not observability was ever enabled in the process."""
        baseline = _encode(use_codegen=False)
        obs.enable()
        obs.disable(reset=True)
        assert _encode(use_codegen=False) == baseline
        assert _encode(use_codegen=True) == baseline

    def test_untraced_submit_produces_untraced_wire(self):
        """With tracing disabled, EChoProcess.submit sets no trace flag
        anywhere in the datagram."""
        from repro.echo.process import EChoProcess
        from repro.net.transport import Network

        registry = FormatRegistry()
        registry.register(FMT)
        net = Network()
        a = EChoProcess(net, "A", registry)
        b = EChoProcess(net, "B", registry)
        a.create_channel("ch")
        b.open_channel("ch", "A", as_sink=True)
        net.run()
        captured = []
        b.node.set_handler(lambda src, data: captured.append(data))
        a.submit("ch", FMT, FMT.make_record(n=1, label="x"))
        net.run()
        assert captured
        for datagram in captured:
            header = unpack_header(datagram)
            assert not header.flags & FLAG_TRACE
            assert header.trace is None
            assert header.body_offset == HEADER_SIZE
