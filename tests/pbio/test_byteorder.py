"""Byte-order tests: PBIO's receiver-makes-right conversion.

The writer encodes in its native order (recorded in the header flags);
the reader converts only when the incoming order differs from its own,
generating an opposite-order decode routine on first need.
"""

import struct

import pytest
from hypothesis import given

from repro.errors import EncodeError
from repro.pbio import codegen
from repro.pbio.buffer import FLAG_BIG_ENDIAN, HEADER_SIZE, unpack_header
from repro.pbio.context import PBIOContext
from repro.pbio.decode import decode_record
from repro.pbio.encode import encode_record
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import records_equal
from repro.pbio.registry import FormatRegistry

from tests.strategies import format_and_record

FMT = IOFormat(
    "Mix",
    [
        IOField("i", "integer"),
        IOField("f", "float"),
        IOField("s", "string"),
        IOField("n", "integer"),
        IOField("xs", "unsigned", 2, array=ArraySpec(length_field="n")),
    ],
)
REC = FMT.make_record(i=-123456, f=2.5, s="héllo", n=3, xs=[1, 2, 60000])


class TestWireFlag:
    def test_little_endian_default_flag_clear(self):
        wire = encode_record(FMT, REC)
        assert unpack_header(wire).flags & FLAG_BIG_ENDIAN == 0

    def test_big_endian_sets_flag(self):
        wire = encode_record(FMT, REC, byte_order="big")
        assert unpack_header(wire).flags & FLAG_BIG_ENDIAN

    def test_unknown_order_rejected(self):
        with pytest.raises(EncodeError, match="byte order"):
            encode_record(FMT, REC, byte_order="middle")
        with pytest.raises(EncodeError, match="byte order"):
            codegen.make_encoder(FMT, byte_order="pdp")

    def test_payload_bytes_actually_differ(self):
        little = encode_record(FMT, REC)
        big = encode_record(FMT, REC, byte_order="big")
        assert little[HEADER_SIZE:] != big[HEADER_SIZE:]
        # first field: i32 = -123456
        (le_val,) = struct.unpack_from("<i", little, HEADER_SIZE)
        (be_val,) = struct.unpack_from(">i", big, HEADER_SIZE)
        assert le_val == be_val == -123456


class TestReceiverMakesRight:
    def test_generic_decoder_honours_flag(self):
        wire = encode_record(FMT, REC, byte_order="big")
        assert records_equal(decode_record(FMT, wire), REC)

    def test_generated_decoder_honours_flag(self):
        decode = codegen.make_decoder(FMT)
        for order in ("little", "big"):
            wire = encode_record(FMT, REC, byte_order=order)
            assert records_equal(decode(wire), REC)

    def test_generated_encoder_roundtrip_big(self):
        encode = codegen.make_encoder(FMT, byte_order="big")
        decode = codegen.make_decoder(FMT)
        assert records_equal(decode(encode(REC)), REC)

    def test_generated_big_encoder_matches_generic(self):
        encode = codegen.make_encoder(FMT, byte_order="big")
        assert encode(REC) == encode_record(FMT, REC, byte_order="big")

    def test_cross_order_contexts(self):
        registry = FormatRegistry()
        big_endian_host = PBIOContext(registry, byte_order="big")
        little_endian_host = PBIOContext(registry, byte_order="little")
        wire = big_endian_host.encode(FMT, REC)
        fmt, record = little_endian_host.decode(wire)
        assert fmt == FMT and records_equal(record, REC)
        # and the reverse direction
        wire2 = little_endian_host.encode(FMT, REC)
        _, record2 = big_endian_host.decode(wire2)
        assert records_equal(record2, REC)

    def test_morphing_across_byte_orders(self):
        """A big-endian v2.0 writer, a little-endian v1.0 reader: both
        the order conversion and the format morph happen receiver-side."""
        from repro.bench.workloads import response_v1_from_v2, response_v2
        from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2, V2_TO_V1_TRANSFORM
        from repro.morph.receiver import MorphReceiver

        registry = FormatRegistry()
        registry.register_transform(V2_TO_V1_TRANSFORM)
        writer = PBIOContext(registry, byte_order="big")
        receiver = MorphReceiver(registry)
        got = []
        receiver.register_handler(RESPONSE_V1, got.append)
        incoming = response_v2(3)
        receiver.process(writer.encode(RESPONSE_V2, incoming))
        assert records_equal(got[0], response_v1_from_v2(incoming))


class TestPropertyRoundtrip:
    @given(format_and_record())
    def test_big_endian_roundtrip(self, fmt_rec):
        fmt, rec = fmt_rec
        wire = encode_record(fmt, rec, byte_order="big")
        assert records_equal(decode_record(fmt, wire), rec)

    @given(format_and_record())
    def test_generated_big_endian_agrees_with_generic(self, fmt_rec):
        fmt, rec = fmt_rec
        generated = codegen.make_encoder(fmt, byte_order="big")(rec)
        assert generated == encode_record(fmt, rec, byte_order="big")
        assert records_equal(codegen.make_decoder(fmt)(generated), rec)
