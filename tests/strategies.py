"""Hypothesis strategies for random PBIO formats and conforming records.

Used by the property-based suites: round-trips (encode ∘ decode = id,
generic == generated), diff metric laws, coercion totality, XML
symmetry.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.check.gen import (
    NAME_ALPHABET as _NAME_ALPHABET,
    SCALAR_KINDS as _SCALAR_KINDS,
    SIGNED_BOUNDS as _SIGNED_BOUNDS,
    SIZES as _SIZES,
    UNSIGNED_BOUNDS as _UNSIGNED_BOUNDS,
)
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.types import TypeKind


@st.composite
def io_formats(draw, depth: int = 2, name: "str | None" = None) -> IOFormat:
    """A random IOFormat with nested complex fields and both array
    flavors; variable arrays always have a preceding integer count."""
    field_count = draw(st.integers(min_value=1, max_value=5))
    fields = []
    for index in range(field_count):
        suffix = draw(st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=4))
        field_name = f"f{index}_{suffix}"
        kind_pool = list(_SCALAR_KINDS)
        shapes = ["scalar", "fixed_array", "var_array"]
        if depth > 0:
            shapes += ["complex", "complex_var_array"]
        shape = draw(st.sampled_from(shapes))
        if shape == "scalar":
            kind = draw(st.sampled_from(kind_pool))
            fields.append(IOField(field_name, kind, draw(st.sampled_from(_SIZES[kind]))))
        elif shape == "fixed_array":
            kind = draw(st.sampled_from(kind_pool))
            fields.append(
                IOField(
                    field_name,
                    kind,
                    draw(st.sampled_from(_SIZES[kind])),
                    array=ArraySpec(fixed_length=draw(st.integers(0, 3))),
                )
            )
        elif shape == "var_array":
            kind = draw(st.sampled_from(kind_pool))
            count_name = f"n{index}"
            fields.append(IOField(count_name, TypeKind.INTEGER, 4))
            fields.append(
                IOField(
                    field_name,
                    kind,
                    draw(st.sampled_from(_SIZES[kind])),
                    array=ArraySpec(length_field=count_name),
                )
            )
        elif shape == "complex":
            sub = draw(io_formats(depth=depth - 1, name=f"Sub_{field_name}"))
            fields.append(IOField(field_name, TypeKind.COMPLEX, subformat=sub))
        else:  # complex_var_array
            sub = draw(io_formats(depth=depth - 1, name=f"Sub_{field_name}"))
            count_name = f"n{index}"
            fields.append(IOField(count_name, TypeKind.INTEGER, 4))
            fields.append(
                IOField(
                    field_name,
                    TypeKind.COMPLEX,
                    subformat=sub,
                    array=ArraySpec(length_field=count_name),
                )
            )
    format_name = name if name is not None else "Fmt_" + draw(
        st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=6)
    )
    version = draw(st.sampled_from([None, "1.0", "2.0"]))
    return IOFormat(format_name, fields, version=version)


#: Strings restricted to XML-transparent text so the same records can
#: drive the XML round-trip suite (control chars are not XML-encodable).
_TEXT = st.text(
    alphabet=st.characters(
        min_codepoint=0x20, max_codepoint=0x7E
    ),
    max_size=12,
)

_CHARS = st.characters(min_codepoint=0x20, max_codepoint=0x7E)


def _scalar_strategy(field: IOField):
    kind = field.kind
    if kind is TypeKind.INTEGER:
        bound = _SIGNED_BOUNDS[field.size]
        return st.integers(min_value=-bound - 1, max_value=bound)
    if kind in (TypeKind.UNSIGNED, TypeKind.ENUMERATION):
        return st.integers(min_value=0, max_value=_UNSIGNED_BOUNDS[field.size])
    if kind is TypeKind.FLOAT:
        return st.floats(
            allow_nan=False,
            allow_infinity=False,
            width=32 if field.size == 4 else 64,
        )
    if kind is TypeKind.BOOLEAN:
        return st.booleans()
    if kind is TypeKind.CHAR:
        return _CHARS
    return _TEXT


@st.composite
def records_for(draw, fmt: IOFormat):
    """A random record conforming to *fmt* (variable-array counts are
    forced consistent after drawing)."""
    rec = {}
    for field in fmt.fields:
        if field.is_complex:
            element = lambda f=field: draw(records_for(f.subformat))
        else:
            element = lambda f=field: draw(_scalar_strategy(f))
        if field.is_array:
            spec = field.array
            if spec.fixed_length is not None:
                rec[field.name] = [element() for _ in range(spec.fixed_length)]
            else:
                count = draw(st.integers(min_value=0, max_value=3))
                rec[field.name] = [element() for _ in range(count)]
        else:
            rec[field.name] = element()
    for field in fmt.fields:
        spec = field.array
        if spec is not None and spec.length_field is not None:
            rec[spec.length_field] = len(rec[field.name])
    from repro.pbio.record import Record

    return Record(rec)


@st.composite
def format_and_record(draw, depth: int = 2):
    fmt = draw(io_formats(depth=depth))
    rec = draw(records_for(fmt))
    return fmt, rec
