"""Unit tests for the XML element tree."""

from repro.xmlrep.tree import XMLElement, escape_attr, escape_text


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a & b < c > d") == "a &amp; b &lt; c &gt; d"

    def test_attr_also_escapes_quotes(self):
        assert escape_attr('say "hi"') == "say &quot;hi&quot;"

    def test_ampersand_escaped_first(self):
        assert escape_text("&lt;") == "&amp;lt;"


class TestNavigation:
    def build(self):
        root = XMLElement("root")
        root.append(XMLElement("a", children=["one"]))
        root.append("text between")
        root.append(XMLElement("a", children=["two"]))
        root.append(XMLElement("b", {"k": "v"}))
        return root

    def test_element_children_skip_text(self):
        root = self.build()
        assert [c.tag for c in root.element_children()] == ["a", "a", "b"]

    def test_children_by_tag(self):
        root = self.build()
        assert len(root.children_by_tag("a")) == 2
        assert root.children_by_tag("zzz") == []

    def test_first_child(self):
        root = self.build()
        assert root.first_child("b").attributes == {"k": "v"}
        assert root.first_child("zzz") is None

    def test_text_concatenates_recursively(self):
        root = self.build()
        assert root.text() == "onetext betweentwo"

    def test_parent_links(self):
        root = self.build()
        for child in root.element_children():
            assert child.parent is root
        assert root.parent is None

    def test_iter_preorder(self):
        root = self.build()
        tags = [e.tag for e in root.iter()]
        assert tags == ["root", "a", "a", "b"]


class TestSerialization:
    def test_empty_element_self_closes(self):
        assert XMLElement("e").serialize() == "<e/>"

    def test_attributes_and_children(self):
        e = XMLElement("e", {"x": "1"}, children=[XMLElement("c"), "hi"])
        assert e.serialize() == '<e x="1"><c/>hi</e>'

    def test_text_is_escaped(self):
        e = XMLElement("e", children=["a < b"])
        assert e.serialize() == "<e>a &lt; b</e>"

    def test_attr_is_escaped(self):
        e = XMLElement("e", {"q": 'say "hi" & bye'})
        assert 'q="say &quot;hi&quot; &amp; bye"' in e.serialize()

    def test_deepcopy_is_independent(self):
        root = XMLElement("r", children=[XMLElement("c", {"a": "1"})])
        clone = root.deepcopy()
        clone.children[0].attributes["a"] = "2"
        assert root.children[0].attributes["a"] == "1"
        assert clone.serialize() != root.serialize()
