"""Unit tests for the mini-XSLT engine."""

import pytest

from repro.bench.workloads import (
    V2_TO_V1_STYLESHEET,
    response_v1_from_v2,
    response_v2,
)
from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2
from repro.errors import XSLTError
from repro.pbio.record import records_equal
from repro.xmlrep.decode import record_from_tree
from repro.xmlrep.encode import encode_xml
from repro.xmlrep.parse import parse_xml
from repro.xmlrep.xslt import Stylesheet


def transform(stylesheet_text, doc_text):
    return Stylesheet.from_string(stylesheet_text).transform(parse_xml(doc_text))


class TestStylesheetParsing:
    def test_requires_stylesheet_root(self):
        with pytest.raises(XSLTError, match="not a stylesheet"):
            Stylesheet.from_string("<html/>")

    def test_requires_templates(self):
        with pytest.raises(XSLTError, match="no templates"):
            Stylesheet.from_string("<xsl:stylesheet/>")

    def test_template_requires_match(self):
        with pytest.raises(XSLTError, match="match"):
            Stylesheet.from_string(
                "<xsl:stylesheet><xsl:template>x</xsl:template></xsl:stylesheet>"
            )

    def test_xsl_transform_alias(self):
        sheet = Stylesheet.from_string(
            '<xsl:transform><xsl:template match="a"><b/></xsl:template></xsl:transform>'
        )
        assert sheet.transform(parse_xml("<a/>")).tag == "b"


class TestInstructions:
    def test_value_of(self):
        out = transform(
            '<xsl:stylesheet><xsl:template match="a">'
            '<r><xsl:value-of select="x"/></r>'
            "</xsl:template></xsl:stylesheet>",
            "<a><x>42</x></a>",
        )
        assert out.serialize() == "<r>42</r>"

    def test_for_each(self):
        out = transform(
            '<xsl:stylesheet><xsl:template match="a">'
            '<r><xsl:for-each select="i"><v><xsl:value-of select="."/></v>'
            "</xsl:for-each></r></xsl:template></xsl:stylesheet>",
            "<a><i>1</i><i>2</i></a>",
        )
        assert out.serialize() == "<r><v>1</v><v>2</v></r>"

    def test_for_each_with_predicate(self):
        out = transform(
            '<xsl:stylesheet><xsl:template match="a">'
            "<r><xsl:for-each select=\"i[@k='y']\">"
            '<v><xsl:value-of select="."/></v></xsl:for-each></r>'
            "</xsl:template></xsl:stylesheet>",
            '<a><i k="x">1</i><i k="y">2</i></a>',
        )
        assert out.serialize() == "<r><v>2</v></r>"

    def test_if(self):
        sheet = (
            '<xsl:stylesheet><xsl:template match="a">'
            '<r><xsl:if test="flag=\'1\'"><yes/></xsl:if></r>'
            "</xsl:template></xsl:stylesheet>"
        )
        assert transform(sheet, "<a><flag>1</flag></a>").serialize() == "<r><yes/></r>"
        assert transform(sheet, "<a><flag>0</flag></a>").serialize() == "<r/>"

    def test_if_existence(self):
        sheet = (
            '<xsl:stylesheet><xsl:template match="a">'
            '<r><xsl:if test="opt"><yes/></xsl:if></r>'
            "</xsl:template></xsl:stylesheet>"
        )
        assert transform(sheet, "<a><opt/></a>").serialize() == "<r><yes/></r>"
        assert transform(sheet, "<a/>").serialize() == "<r/>"

    def test_choose(self):
        sheet = (
            '<xsl:stylesheet><xsl:template match="a"><r>'
            "<xsl:choose>"
            "<xsl:when test=\"v='1'\">one</xsl:when>"
            "<xsl:when test=\"v='2'\">two</xsl:when>"
            "<xsl:otherwise>many</xsl:otherwise>"
            "</xsl:choose></r></xsl:template></xsl:stylesheet>"
        )
        assert transform(sheet, "<a><v>2</v></a>").text() == "two"
        assert transform(sheet, "<a><v>9</v></a>").text() == "many"

    def test_apply_templates_with_select(self):
        sheet = (
            "<xsl:stylesheet>"
            '<xsl:template match="a"><r><xsl:apply-templates select="i"/></r>'
            "</xsl:template>"
            '<xsl:template match="i"><v><xsl:value-of select="."/></v></xsl:template>'
            "</xsl:stylesheet>"
        )
        assert transform(sheet, "<a><i>1</i><skip/><i>2</i></a>").serialize() == (
            "<r><v>1</v><v>2</v></r>"
        )

    def test_builtin_rule_recurses(self):
        sheet = (
            "<xsl:stylesheet>"
            '<xsl:template match="leaf"><L/></xsl:template>'
            '<xsl:template match="root"><R><xsl:apply-templates/></R></xsl:template>'
            "</xsl:stylesheet>"
        )
        # 'mid' has no template: builtin rule descends into its children
        out = transform(sheet, "<root><mid><leaf/></mid></root>")
        assert out.serialize() == "<R><L/></R>"

    def test_copy_of(self):
        sheet = (
            '<xsl:stylesheet><xsl:template match="a">'
            '<r><xsl:copy-of select="sub"/></r></xsl:template></xsl:stylesheet>'
        )
        out = transform(sheet, '<a><sub k="v"><x>1</x></sub></a>')
        assert out.serialize() == '<r><sub k="v"><x>1</x></sub></r>'

    def test_xsl_text_preserves_whitespace(self):
        sheet = (
            '<xsl:stylesheet><xsl:template match="a">'
            "<r><xsl:text>  spaced  </xsl:text></r></xsl:template></xsl:stylesheet>"
        )
        assert transform(sheet, "<a/>").text() == "  spaced  "

    def test_attribute_value_templates(self):
        sheet = (
            '<xsl:stylesheet><xsl:template match="a">'
            '<r id="x-{@id}"/></xsl:template></xsl:stylesheet>'
        )
        assert transform(sheet, '<a id="9"/>').attributes["id"] == "x-9"

    def test_xsl_attribute(self):
        sheet = (
            '<xsl:stylesheet><xsl:template match="a">'
            '<r><xsl:attribute name="k"><xsl:value-of select="v"/></xsl:attribute>'
            "</r></xsl:template></xsl:stylesheet>"
        )
        assert transform(sheet, "<a><v>7</v></a>").attributes["k"] == "7"

    def test_priority_explicit_beats_specificity(self):
        sheet = (
            "<xsl:stylesheet>"
            '<xsl:template match="x/i"><specific/></xsl:template>'
            '<xsl:template match="i" priority="10"><forced/></xsl:template>'
            "</xsl:stylesheet>"
        )
        out = Stylesheet.from_string(sheet).transform(parse_xml("<x><i/></x>"))
        assert out.tag == "forced"

    def test_unsupported_instruction(self):
        with pytest.raises(XSLTError, match="unsupported instruction"):
            transform(
                '<xsl:stylesheet><xsl:template match="a">'
                '<xsl:number/></xsl:template></xsl:stylesheet>',
                "<a/>",
            )

    def test_multiple_result_roots_rejected(self):
        with pytest.raises(XSLTError, match="root elements"):
            transform(
                '<xsl:stylesheet><xsl:template match="a"><x/><y/>'
                "</xsl:template></xsl:stylesheet>",
                "<a/>",
            )


class TestPaperTransformation:
    def test_v2_to_v1_stylesheet_matches_reference(self):
        incoming = response_v2(5)
        xml_text = encode_xml(RESPONSE_V2, incoming)
        sheet = Stylesheet.from_string(V2_TO_V1_STYLESHEET)
        transformed = sheet.transform(parse_xml(xml_text))
        out = record_from_tree(RESPONSE_V1, transformed)
        assert records_equal(out, response_v1_from_v2(incoming))

    def test_v2_to_v1_agrees_with_ecode_transform(self):
        from repro.echo.protocol import V2_TO_V1_TRANSFORM
        from repro.morph.transform import Transformation

        incoming = response_v2(7)
        via_ecode = Transformation(V2_TO_V1_TRANSFORM).apply(incoming)
        sheet = Stylesheet.from_string(V2_TO_V1_STYLESHEET)
        tree = parse_xml(encode_xml(RESPONSE_V2, incoming))
        via_xslt = record_from_tree(RESPONSE_V1, sheet.transform(tree))
        assert records_equal(via_ecode, via_xslt)

    def test_empty_member_list(self):
        incoming = RESPONSE_V2.make_record(channel_id="c", member_count=0,
                                           member_list=[])
        sheet = Stylesheet.from_string(V2_TO_V1_STYLESHEET)
        tree = parse_xml(encode_xml(RESPONSE_V2, incoming))
        out = record_from_tree(RESPONSE_V1, sheet.transform(tree))
        assert out["member_count"] == 0
        assert out["src_count"] == 0 and out["sink_count"] == 0
