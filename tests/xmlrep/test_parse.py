"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmlrep.parse import parse_xml
from repro.xmlrep.tree import XMLElement


class TestWellFormed:
    def test_minimal(self):
        root = parse_xml("<a/>")
        assert root.tag == "a"
        assert root.children == []

    def test_nested_elements_and_text(self):
        root = parse_xml("<a><b>one</b>mid<b>two</b></a>")
        assert [c.tag for c in root.element_children()] == ["b", "b"]
        assert root.text() == "onemidtwo"

    def test_attributes(self):
        root = parse_xml('<a x="1" y=\'two\'/>')
        assert root.attributes == {"x": "1", "y": "two"}

    def test_xml_declaration_skipped(self):
        root = parse_xml('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert root.tag == "a"

    def test_doctype_skipped(self):
        root = parse_xml("<!DOCTYPE html><a/>")
        assert root.tag == "a"

    def test_comments_skipped(self):
        root = parse_xml("<!-- lead --><a>x<!-- in -->y</a><!-- tail -->")
        assert root.text() == "xy"

    def test_cdata_passes_raw_text(self):
        root = parse_xml("<a><![CDATA[x < y & z]]></a>")
        assert root.text() == "x < y & z"

    def test_processing_instruction_in_content(self):
        root = parse_xml("<a>x<?php nope ?>y</a>")
        assert root.text() == "xy"

    def test_whitespace_around_document(self):
        assert parse_xml("  \n <a/> \n ").tag == "a"

    def test_entities(self):
        root = parse_xml("<a>&lt;&gt;&amp;&quot;&apos;</a>")
        assert root.text() == "<>&\"'"

    def test_numeric_character_references(self):
        root = parse_xml("<a>&#65;&#x42;</a>")
        assert root.text() == "AB"

    def test_entities_in_attributes(self):
        root = parse_xml('<a v="&amp;&#33;"/>')
        assert root.attributes["v"] == "&!"

    def test_deep_nesting(self):
        xml = "<a>" * 50 + "</a>" * 50
        root = parse_xml(xml)
        depth = 0
        node = root
        while list(node.element_children()):
            node = next(node.element_children())
            depth += 1
        assert depth == 49

    def test_name_characters(self):
        root = parse_xml("<ns:tag-name_1.x/>")
        assert root.tag == "ns:tag-name_1.x"

    def test_roundtrip_serialize_parse(self):
        text = '<r a="1"><c>x &amp; y</c><d/></r>'
        assert parse_xml(text).serialize() == text


class TestMalformed:
    @pytest.mark.parametrize(
        "text,match",
        [
            ("", "expected '<'"),
            ("<a>", "unterminated element"),
            ("<a></b>", "mismatched close tag"),
            ("<a><b></a></b>", "mismatched"),
            ("<a/><b/>", "content after document"),
            ("plain text", "expected"),
            ("<a x=1/>", "quoted"),
            ("<a x='1' x='2'/>", "duplicate attribute"),
            ("<a x></a>", "missing '='"),
            ("<a>&unknown;</a>", "unknown entity"),
            ("<a>&#xGG;</a>", "bad character reference"),
            ("<a>&noend</a>", "unterminated entity"),
            ("<!-- never closed", "unterminated comment"),
            ("<a><!-- never closed</a>", "unterminated comment"),
            ("<a><![CDATA[never closed</a>", "unterminated CDATA"),
            ("<?xml never closed", "unterminated processing"),
            ("<a", "unterminated start tag"),
            ("<1tag/>", "expected a name"),
            ('<a x="never closed/>', "unterminated attribute"),
        ],
    )
    def test_rejects(self, text, match):
        with pytest.raises(XMLParseError, match=match):
            parse_xml(text)

    def test_error_carries_offset(self):
        try:
            parse_xml("<a></b>")
        except XMLParseError as exc:
            assert exc.position > 0
        else:  # pragma: no cover
            pytest.fail("expected XMLParseError")


class TestSerializeParseFixpoint:
    """serialize(parse(x)) is a fixpoint: one round normalizes, further
    rounds are identity."""

    from hypothesis import given, settings

    from tests.strategies import format_and_record

    @given(format_and_record())
    @settings(max_examples=40)
    def test_fixpoint(self, fmt_rec):
        from repro.xmlrep.encode import encode_xml

        fmt, rec = fmt_rec
        text = encode_xml(fmt, rec)
        once = parse_xml(text).serialize()
        twice = parse_xml(once).serialize()
        assert once == twice
