"""XML encode/decode round-trips against PBIO formats (incl. property
tests mirroring the PBIO round-trip suite)."""

import pytest
from hypothesis import given

from repro.errors import DecodeError, EncodeError
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import records_equal
from repro.xmlrep.decode import decode_xml
from repro.xmlrep.encode import encode_xml, xml_size

from tests.strategies import format_and_record


FMT = IOFormat(
    "Sample",
    [
        IOField("n", "integer"),
        IOField(
            "entries",
            "complex",
            subformat=IOFormat(
                "E", [IOField("name", "string"), IOField("score", "float")]
            ),
            array=ArraySpec(length_field="n"),
        ),
        IOField("flag", "boolean"),
        IOField("c", "char"),
    ],
    version="9",
)

REC = FMT.make_record(
    n=2,
    entries=[{"name": "a&b", "score": 1.5}, {"name": "<tag>", "score": -2.0}],
    flag=True,
    c="x",
)


class TestEncode:
    def test_root_carries_name_and_version(self):
        text = encode_xml(FMT, REC)
        assert text.startswith('<Sample version="9">')
        assert text.endswith("</Sample>")

    def test_arrays_repeat_elements(self):
        assert encode_xml(FMT, REC).count("<entries>") == 2

    def test_special_characters_escaped(self):
        text = encode_xml(FMT, REC)
        assert "a&amp;b" in text
        assert "&lt;tag&gt;" in text

    def test_booleans_encode_as_01(self):
        assert "<flag>1</flag>" in encode_xml(FMT, REC)

    def test_missing_field_raises(self):
        with pytest.raises(EncodeError, match="missing field"):
            encode_xml(FMT, {"n": 0})

    def test_xml_size_is_utf8_bytes(self):
        assert xml_size(FMT, REC) == len(encode_xml(FMT, REC).encode("utf-8"))

    def test_xml_significantly_larger_than_native(self):
        from repro.pbio.encode import native_size

        assert xml_size(FMT, REC) > 2 * native_size(FMT, REC)


class TestDecode:
    def test_roundtrip(self):
        out = decode_xml(FMT, encode_xml(FMT, REC))
        assert records_equal(out, REC)

    def test_missing_child_raises(self):
        with pytest.raises(DecodeError, match="missing child"):
            decode_xml(FMT, "<Sample><n>0</n></Sample>")

    def test_count_mismatch_detected(self):
        text = (
            '<Sample version="9"><n>5</n>'
            "<flag>0</flag><c>x</c></Sample>"
        )
        with pytest.raises(DecodeError, match="count mismatch"):
            decode_xml(FMT, text)

    def test_bad_scalar_text(self):
        fmt = IOFormat("T", [IOField("x", "integer")])
        with pytest.raises(DecodeError, match="bad scalar"):
            decode_xml(fmt, "<T><x>noise</x></T>")

    def test_boolean_text_forms(self):
        fmt = IOFormat("T", [IOField("b", "boolean")])
        assert decode_xml(fmt, "<T><b>1</b></T>")["b"] is True
        assert decode_xml(fmt, "<T><b>true</b></T>")["b"] is True
        assert decode_xml(fmt, "<T><b>0</b></T>")["b"] is False

    def test_empty_numeric_text_defaults_to_zero(self):
        fmt = IOFormat("T", [IOField("x", "integer"), IOField("f", "float")])
        assert decode_xml(fmt, "<T><x></x><f/></T>") == {"x": 0, "f": 0.0}


class TestPropertyRoundtrip:
    @given(format_and_record())
    def test_xml_roundtrip(self, fmt_rec):
        fmt, rec = fmt_rec
        out = decode_xml(fmt, encode_xml(fmt, rec))
        assert records_equal(out, rec)
