"""Tests for message morphing over XML (XSLT transforms driven by the
same MaxMatch machinery)."""

import pytest

from repro.bench.workloads import (
    V2_TO_V1_STYLESHEET,
    response_v1_from_v2,
    response_v2,
)
from repro.echo.protocol import RESPONSE_V0, RESPONSE_V1, RESPONSE_V2
from repro.errors import NoMatchError, UnknownFormatError, XSLTError
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.pbio.record import records_equal
from repro.xmlrep.encode import encode_xml
from repro.xmlrep.morph import XMLMorphReceiver, XSLTTransformSpec

V1_TO_V0_STYLESHEET = """\
<xsl:stylesheet version="1.0">
  <xsl:template match="ChannelOpenResponse">
    <ChannelOpenResponse version="0.0">
      <channel_id><xsl:value-of select="channel_id"/></channel_id>
      <member_count><xsl:value-of select="member_count"/></member_count>
      <xsl:for-each select="member_list">
        <member_list>
          <info><xsl:value-of select="info"/></info>
          <ID><xsl:value-of select="ID"/></ID>
        </member_list>
      </xsl:for-each>
    </ChannelOpenResponse>
  </xsl:template>
</xsl:stylesheet>
"""


def build_receiver():
    receiver = XMLMorphReceiver()
    receiver.register_transform(
        XSLTTransformSpec(RESPONSE_V2, RESPONSE_V1, V2_TO_V1_STYLESHEET)
    )
    receiver.register_transform(
        XSLTTransformSpec(RESPONSE_V1, RESPONSE_V0, V1_TO_V0_STYLESHEET)
    )
    return receiver


class TestExactMatch:
    def test_same_version_dispatches(self):
        receiver = build_receiver()
        got = []
        receiver.register_handler(RESPONSE_V2, got.append)
        incoming = response_v2(2)
        receiver.process(encode_xml(RESPONSE_V2, incoming))
        assert records_equal(got[0], incoming)
        assert receiver.morphed == 0


class TestMorphing:
    def test_v2_document_to_v1_reader(self):
        receiver = build_receiver()
        got = []
        receiver.register_handler(RESPONSE_V1, got.append)
        incoming = response_v2(4)
        receiver.process(encode_xml(RESPONSE_V2, incoming))
        assert records_equal(got[0], response_v1_from_v2(incoming))
        assert receiver.morphed == 1

    def test_chained_stylesheets_to_v0(self):
        receiver = build_receiver()
        got = []
        receiver.register_handler(RESPONSE_V0, got.append)
        receiver.process(encode_xml(RESPONSE_V2, response_v2(3)))
        out = got[0]
        assert out["member_count"] == 3
        assert set(out.keys()) == {"channel_id", "member_count", "member_list"}

    def test_routes_cached(self):
        receiver = build_receiver()
        receiver.register_handler(RESPONSE_V1, lambda rec: rec)
        text = encode_xml(RESPONSE_V2, response_v2(2))
        receiver.process(text)
        receiver.process(text)
        assert receiver.cache_hits == 1

    def test_agrees_with_binary_morphing(self):
        """The XML pipeline and the PBIO/ECode pipeline deliver the same
        v1.0 record for the same logical message."""
        from repro.echo.protocol import V2_TO_V1_TRANSFORM
        from repro.morph.transform import Transformation

        incoming = response_v2(5)
        receiver = build_receiver()
        got = []
        receiver.register_handler(RESPONSE_V1, got.append)
        receiver.process(encode_xml(RESPONSE_V2, incoming))
        via_binary = Transformation(V2_TO_V1_TRANSFORM).apply(incoming)
        assert records_equal(got[0], via_binary)


class TestReconciliation:
    def test_imperfect_match_fills_and_drops(self):
        src = IOFormat("T", [IOField("x", "integer"), IOField("gone", "string")],
                       version="new")
        dst = IOFormat("T", [IOField("x", "integer"), IOField("fresh", "float")],
                       version="old")
        receiver = XMLMorphReceiver()
        receiver.declare_format(src)
        got = []
        receiver.register_handler(dst, got.append)
        receiver.process(encode_xml(src, {"x": 5, "gone": "bye"}))
        assert got == [{"x": 5, "fresh": 0.0}]


class TestRejection:
    def test_undeclared_root_tag(self):
        receiver = build_receiver()
        receiver.register_handler(RESPONSE_V1, lambda rec: rec)
        with pytest.raises(UnknownFormatError):
            receiver.process("<Mystery/>")

    def test_no_match_raises(self):
        alien = IOFormat("ChannelOpenResponse", [IOField("blob", "string")],
                         version="alien")
        receiver = XMLMorphReceiver(diff_threshold=0, mismatch_threshold=0.0)
        receiver.declare_format(alien)
        receiver.register_handler(RESPONSE_V1, lambda rec: rec)
        with pytest.raises(NoMatchError):
            receiver.process(encode_xml(alien, {"blob": "?"}))

    def test_bad_stylesheet_fails_at_registration(self):
        receiver = XMLMorphReceiver()
        with pytest.raises(XSLTError):
            receiver.register_transform(
                XSLTTransformSpec(RESPONSE_V2, RESPONSE_V1, "<not-xsl/>")
            )
