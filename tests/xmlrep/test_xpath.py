"""Unit tests for the XPath-lite evaluator."""

import pytest

from repro.errors import XSLTError
from repro.xmlrep.parse import parse_xml
from repro.xmlrep.xpath import (
    compile_path,
    matches,
    pattern_specificity,
    select,
    string_value,
)

DOC = parse_xml(
    """
    <order id="7">
      <customer tier="gold"><name>Ada</name></customer>
      <line><sku>A</sku><qty>2</qty><price>10</price></line>
      <line><sku>B</sku><qty>1</qty><price>5</price><gift/></line>
      <line><sku>C</sku><qty>4</qty><price>2.5</price></line>
      <total>30</total>
    </order>
    """
)


class TestSelect:
    def test_child_step(self):
        assert len(select(DOC, "line")) == 3

    def test_nested_path(self):
        assert select(DOC, "customer/name")[0].text() == "Ada"

    def test_dot_is_context(self):
        assert select(DOC, ".") == [DOC]

    def test_wildcard(self):
        assert len(select(DOC, "*")) == 5

    def test_no_match_returns_empty(self):
        assert select(DOC, "nothing/here") == []

    def test_predicate_equality(self):
        lines = select(DOC, "line[sku='B']")
        assert len(lines) == 1
        assert lines[0].first_child("qty").text() == "1"

    def test_predicate_existence(self):
        assert len(select(DOC, "line[gift]")) == 1

    def test_attribute_predicate(self):
        assert len(select(DOC, "customer[@tier='gold']")) == 1
        assert select(DOC, "customer[@tier='tin']") == []

    def test_multiple_predicates(self):
        assert len(select(DOC, "line[sku='A'][qty='2']")) == 1
        assert select(DOC, "line[sku='A'][qty='9']") == []

    def test_document_order_preserved(self):
        skus = [e.first_child("sku").text() for e in select(DOC, "line")]
        assert skus == ["A", "B", "C"]


class TestCompilePath:
    def test_cached(self):
        assert compile_path("a/b") is compile_path("a/b")

    @pytest.mark.parametrize("bad", ["", "a//b", "a[", "a[x=unquoted]", "a[]"])
    def test_malformed(self, bad):
        with pytest.raises(XSLTError):
            compile_path(bad)


class TestStringValue:
    def test_path_takes_first_match(self):
        assert string_value(DOC, "line/sku") == "A"

    def test_attribute(self):
        assert string_value(DOC, "@id") == "7"
        assert string_value(DOC, "customer/@tier") == "gold"
        assert string_value(DOC, "@missing") == ""

    def test_text_function(self):
        assert string_value(DOC, "total/text()") == "30"

    def test_dot(self):
        assert string_value(select(DOC, "total")[0], ".") == "30"

    def test_count(self):
        assert string_value(DOC, "count(line)") == "3"
        assert string_value(DOC, "count(line[gift])") == "1"

    def test_sum(self):
        assert string_value(DOC, "sum(line/qty)") == "7"
        assert string_value(DOC, "sum(line/price)") == "17.5"

    def test_arithmetic(self):
        assert string_value(DOC, "total * 2") == "60"
        assert string_value(DOC, "total + 5 - 1") == "34"
        assert string_value(DOC, "total div 4") == "7.5"

    def test_round_and_floor(self):
        assert string_value(DOC, "round(total div 4)") == "8"
        assert string_value(DOC, "floor(total div 4)") == "7"

    def test_concat(self):
        assert string_value(DOC, "concat('#', @id, '!')") == "#7!"

    def test_string_literal(self):
        assert string_value(DOC, "'verbatim'") == "verbatim"

    def test_number_literal(self):
        assert string_value(DOC, "42") == "42"

    def test_missing_path_is_empty_string(self):
        assert string_value(DOC, "nonexistent") == ""

    def test_non_numeric_arithmetic_raises(self):
        with pytest.raises(XSLTError, match="non-numeric"):
            string_value(DOC, "customer/name * 2")

    def test_division_by_zero(self):
        with pytest.raises(XSLTError, match="zero"):
            string_value(DOC, "total div 0")


class TestMatches:
    def test_tag_pattern(self):
        line = select(DOC, "line")[0]
        assert matches(line, "line")
        assert not matches(line, "order")

    def test_path_pattern_checks_ancestors(self):
        name = select(DOC, "customer/name")[0]
        assert matches(name, "customer/name")
        assert matches(name, "order/customer/name")
        assert not matches(name, "line/name")

    def test_wildcard_pattern(self):
        assert matches(select(DOC, "line")[0], "*")

    def test_root_pattern(self):
        assert matches(DOC, "/")
        assert not matches(select(DOC, "line")[0], "/")

    def test_predicate_in_pattern(self):
        gift_line = select(DOC, "line[gift]")[0]
        assert matches(gift_line, "line[gift]")
        plain_line = select(DOC, "line[sku='A']")[0]
        assert not matches(plain_line, "line[gift]")


class TestSpecificity:
    def test_longer_paths_win(self):
        assert pattern_specificity("a/b") > pattern_specificity("b")
        assert pattern_specificity("b") > pattern_specificity("*")
