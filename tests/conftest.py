"""Shared fixtures: the ECho evaluation formats and canned records."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.bench.workloads import response_v2
from repro.echo.protocol import (
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    V1_TO_V0_TRANSFORM,
    V1_TO_V2_TRANSFORM,
    V2_TO_V1_TRANSFORM,
)
from repro.pbio.registry import FormatRegistry

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=50,
)
settings.load_profile("repro")


@pytest.fixture
def response_v2_record():
    """A 6-member v2.0 ChannelOpenResponse covering all role combos."""
    return response_v2(6)


@pytest.fixture
def echo_registry():
    """Registry with the full ECho retro-transform graph registered."""
    registry = FormatRegistry()
    registry.register_transform(V2_TO_V1_TRANSFORM)
    registry.register_transform(V1_TO_V0_TRANSFORM)
    registry.register_transform(V1_TO_V2_TRANSFORM)
    return registry


@pytest.fixture
def v0():
    return RESPONSE_V0


@pytest.fixture
def v1():
    return RESPONSE_V1


@pytest.fixture
def v2():
    return RESPONSE_V2
