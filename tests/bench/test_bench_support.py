"""Unit tests for the benchmark support modules (workloads, timing,
reporting) — the harness itself must be trustworthy."""

import pytest

from repro.bench.reporting import format_kb, format_ms, format_table
from repro.bench.timing import Measurement, measure
from repro.bench.workloads import (
    FIGURE_SIZES,
    make_member,
    members_for_size,
    response_v1_from_v2,
    response_v2,
    response_v2_of_size,
)
from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2
from repro.pbio.encode import native_size


class TestWorkloads:
    def test_members_are_deterministic(self):
        assert make_member(7) == make_member(7)
        assert make_member(7) != make_member(8)

    def test_role_densities(self):
        members = [make_member(i) for i in range(300)]
        sources = sum(1 for m in members if m["is_Source"])
        sinks = sum(1 for m in members if m["is_Sink"])
        assert sources == 200  # 2/3
        assert sinks == 150  # 1/2

    def test_records_validate(self):
        record = response_v2(5)
        RESPONSE_V2.validate_record(record)
        RESPONSE_V1.validate_record(response_v1_from_v2(record))

    @pytest.mark.parametrize("target", sorted(FIGURE_SIZES.values()))
    def test_sizes_within_tolerance(self, target):
        record = response_v2_of_size(target)
        actual = native_size(RESPONSE_V2, record)
        # within one member entry of the target (and never absurdly off)
        assert abs(actual - target) < 120 or actual / target > 0.85

    def test_members_for_size_monotone(self):
        counts = [members_for_size(t) for t in (100, 1_000, 10_000, 100_000)]
        assert counts == sorted(counts)
        assert counts[0] >= 1

    def test_v1_reference_rollback_counts(self):
        record = response_v2(6)
        v1 = response_v1_from_v2(record)
        assert v1["src_count"] == len(v1["src_list"])
        assert v1["sink_count"] == len(v1["sink_list"])
        assert v1["member_count"] == 6
        assert all("is_Source" not in m for m in v1["member_list"])


class TestTiming:
    def test_measure_returns_sane_numbers(self):
        result = measure(lambda: sum(range(100)), rounds=3, number=50)
        assert isinstance(result, Measurement)
        assert 0 < result.best <= result.mean
        assert result.rounds == 3 and result.number == 50
        assert result.best_ms == result.best * 1e3

    def test_autocalibration_picks_a_number(self):
        result = measure(lambda: None, rounds=2)
        assert result.number >= 1

    def test_slow_callable_low_iteration_count(self):
        import time

        result = measure(lambda: time.sleep(0.01), rounds=2)
        assert result.number <= 8
        assert result.best >= 0.009


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "n"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])
        assert "bbbb" in lines[3]

    def test_format_ms_precision_bands(self):
        assert format_ms(0.250) == "250"
        assert format_ms(0.0042) == "4.20"
        assert format_ms(0.0000042) == "0.0042"

    def test_format_kb_bands(self):
        assert format_kb(250_000) == "250"
        assert format_kb(2_500) == "2.5"
        assert format_kb(120) == "0.12"


class TestFigureFunctions:
    def test_fig8_rows_have_shape(self):
        from repro.bench.figures import fig8_encoding

        rows = fig8_encoding({"1KB": 1_000}, rounds=1)
        assert len(rows) == 1
        row = rows[0]
        assert row.label == "1KB"
        assert row.ratio == row.xml.best / row.pbio.best

    def test_table1_columns(self):
        from repro.bench.figures import table1_sizes

        rows = table1_sizes([1.0])
        row = rows[0]
        assert row.target_kb == 1.0
        assert row.unencoded_v2 < row.pbio_v2 < row.xml_v2

    def test_fusion_ablation_rows_have_shape(self):
        from repro.bench.figures import fig_fusion_ablation

        rows = fig_fusion_ablation({"1KB": 1_000}, rounds=1)
        assert len(rows) == 1
        row = rows[0]
        assert row.label == "1KB"
        assert row.speedup == row.staged.best / row.fused.best
        # the interpreted arm pays for everything codegen removes
        assert row.interpreted.best > row.fused.best

    def test_batching_rows_have_shape(self):
        from repro.bench.figures import fig_batching

        rows = fig_batching(messages=64, batch_sizes=(8, 32), rounds=1)
        assert [r.label for r in rows] == ["single", "batch8", "batch32"]
        single, b8, b32 = rows
        assert single.batch_size == 1 and single.frames == 64
        assert b8.frames == 8 and b32.frames == 2
        for row in rows:
            assert row.messages == 64
            assert row.per_message_seconds > 0
        # an arm that loses or reorders messages raises inside the
        # figure function; reaching here means every arm delivered all
        # 64 events in order


class TestRegressionGate:
    def _payload(self, seconds):
        return {
            "BENCH_fig9": {
                "figure": "fig9_decoding",
                "workloads": [
                    {"label": "1KB", "timings": {"pbio_seconds": seconds}},
                ],
            },
            "BENCH_fusion": {
                "figure": "fusion_ablation",
                "workloads": [
                    {"label": "1KB", "timings": {"fused_seconds": seconds}},
                ],
            },
        }

    def test_within_tolerance_passes(self):
        from repro.bench.__main__ import _compare_to_baseline

        geomeans, failures = _compare_to_baseline(
            self._payload(1.05), self._payload(1.0)
        )
        assert failures == []
        assert geomeans["BENCH_fig9"] == pytest.approx(1.05)
        assert geomeans["BENCH_fusion"] == pytest.approx(1.05)

    def test_slowdown_fails_per_figure(self):
        from repro.bench.__main__ import _compare_to_baseline

        payload = self._payload(1.0)
        payload["BENCH_fig9"]["workloads"][0]["timings"]["pbio_seconds"] = 1.3
        geomeans, failures = _compare_to_baseline(payload, self._payload(1.0))
        assert len(failures) == 1 and "BENCH_fig9" in failures[0]

    def test_fused_relative_cost_outranks_raw_seconds(self):
        from repro.bench.__main__ import _compare_to_baseline

        def doc(cost, seconds):
            return {
                "BENCH_fusion": {
                    "figure": "fusion_ablation",
                    "workloads": [
                        {
                            "label": "1KB",
                            "timings": {
                                "fused_relative_cost": cost,
                                "fused_seconds": seconds,
                            },
                        },
                    ],
                },
            }

        # Raw wall time 40% slower (host drift) but the fused/staged
        # ratio held: the self-normalized metric wins, gate passes.
        geomeans, failures = _compare_to_baseline(
            doc(0.6, 1.4), doc(0.6, 1.0)
        )
        assert failures == []
        assert geomeans["BENCH_fusion"] == pytest.approx(1.0)

    def test_missing_figures_and_labels_are_skipped(self):
        from repro.bench.__main__ import _compare_to_baseline

        payload = self._payload(10.0)
        baseline = {
            "BENCH_fig9": {
                "figure": "fig9_decoding",
                "workloads": [
                    {"label": "1MB", "timings": {"pbio_seconds": 1.0}},
                ],
            },
        }
        geomeans, failures = _compare_to_baseline(payload, baseline)
        assert geomeans == {} and failures == []


class TestFabricBenchSupport:
    def test_balanced_channels_spread_ownership_evenly(self):
        from repro.bench.fabric import balanced_channels
        from repro.fabric import HashRing, shard_of

        fleet = ["w1", "w2", "w3", "w4"]
        channels = balanced_channels(fleet, per_worker=4)
        assert len(channels) == 16
        assert len(set(channels)) == 16
        ring = HashRing()
        for address in fleet:
            ring.add(address)
        assignment = ring.assign(128)
        per_owner = {address: 0 for address in fleet}
        for channel_id in channels:
            per_owner[assignment[shard_of(channel_id)]] += 1
        assert per_owner == {address: 4 for address in fleet}

    def test_fabric_scaling_cost_participates_in_the_gate(self):
        from repro.bench.__main__ import _compare_to_baseline

        def doc(scale):
            return {
                "BENCH_fabric": {
                    "figure": "fabric_scaling",
                    "workloads": [
                        {
                            "label": "2w",
                            "timings": {"fabric_scaling_cost": 0.5 * scale},
                            "metrics": {"delivered": 100},
                        },
                    ],
                },
            }

        # Inside the widened multiprocess tolerance: no failure.
        geomeans, failures = _compare_to_baseline(doc(1.3), doc(1.0))
        assert failures == []
        assert abs(geomeans["BENCH_fabric"] - 1.3) < 1e-9

        # A genuine scaling loss blows straight through it.
        geomeans, failures = _compare_to_baseline(doc(1.5), doc(1.0))
        assert len(failures) == 1 and "BENCH_fabric" in failures[0]

    def test_churn_record_is_exactly_once(self):
        from repro.bench.fabric import bench_fabric_churn

        result = bench_fabric_churn(rounds=3)
        assert result.exactly_once
        assert result.handoffs > 0
        assert result.epochs >= 4
