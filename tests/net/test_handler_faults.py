"""Behaviour of the simulated network when handlers misbehave.

Handler failures are contained: an exception escaping a node's receive
callback is counted (on the node, on the network, and in ``repro.obs``),
recorded in the delivery trace, and kept as ``last_handler_error`` for
inspection — but it never unwinds out of :meth:`Network.run`.  A
crashing receiver is an endpoint failure, not a fabric failure.
"""

from repro import obs
from repro.net.link import LinkSpec
from repro.net.transport import Network


class TestHandlerFaults:
    def test_handler_exception_is_contained_and_counted(self):
        net = Network()
        net.add_node("a")
        net.add_node("b")

        def bad_handler(_source, _data):
            raise ValueError("application bug")

        net.node("b").set_handler(bad_handler)
        net.send("a", "b", b"x")
        net.run()  # must not raise
        assert net.handler_errors == 1
        assert net.node("b").handler_errors == 1
        destination, error = net.last_handler_error
        assert destination == "b"
        assert isinstance(error, ValueError)
        assert "application bug" in str(error)
        assert [d.handler_error for d in net.trace] == [True]

    def test_traffic_keeps_flowing_after_a_crash(self):
        net = Network(default_link=LinkSpec(latency=0.1, bandwidth=0))
        net.add_node("a")
        net.add_node("b")
        calls = []

        def flaky(_source, data):
            calls.append(data)
            if len(calls) == 1:
                raise RuntimeError("first delivery crashes")

        net.node("b").set_handler(flaky)
        net.send("a", "b", b"one")
        net.send("a", "b", b"two")
        net.run()
        # the crash on delivery one never stalls delivery two
        assert calls == [b"one", b"two"]
        assert net.handler_errors == 1
        assert [d.handler_error for d in net.trace] == [True, False]

    def test_healthy_nodes_unaffected_by_neighbour_crash(self):
        net = Network()
        net.add_node("a")
        net.add_node("sick")
        healthy = []
        net.node("sick").set_handler(
            lambda _s, _d: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        sink = net.add_node("well")
        sink.set_handler(lambda _s, d: healthy.append(d))
        net.send("a", "sick", b"poison")
        net.send("a", "well", b"fine")
        net.run()
        assert healthy == [b"fine"]
        assert net.node("well").handler_errors == 0
        assert net.node("sick").handler_errors == 1

    def test_contained_errors_surface_in_obs(self):
        obs.enable()
        try:
            net = Network()
            net.add_node("a")
            net.add_node("b")
            net.node("b").set_handler(
                lambda _s, _d: (_ for _ in ()).throw(ValueError("bug"))
            )
            net.send("a", "b", b"x")
            net.run()
            counter = obs.OBS.metrics.counter(
                "net.transport.handler_errors", node="b"
            )
            assert counter.value == 1
        finally:
            obs.disable()

    def test_virtual_time_monotone_across_many_messages(self):
        net = Network(default_link=LinkSpec(latency=0.001, bandwidth=1000))
        net.add_node("a")
        sink = net.add_node("b")
        times = []
        sink.set_handler(lambda _s, _d: times.append(net.now))
        for i in range(20):
            net.send("a", "b", bytes(i + 1))
        net.run()
        assert times == sorted(times)
        assert len(times) == 20
