"""Behaviour of the simulated network when handlers misbehave."""

import pytest

from repro.net.link import LinkSpec
from repro.net.transport import Network


class TestHandlerFaults:
    def test_handler_exception_propagates_out_of_run(self):
        """A crashing handler surfaces at run() — the simulator never
        swallows application bugs (tests would silently pass otherwise)."""
        net = Network()
        net.add_node("a")
        net.add_node("b")

        def bad_handler(_source, _data):
            raise ValueError("application bug")

        net.node("b").set_handler(bad_handler)
        net.send("a", "b", b"x")
        with pytest.raises(ValueError, match="application bug"):
            net.run()

    def test_messages_after_crash_remain_queued(self):
        net = Network(default_link=LinkSpec(latency=0.1, bandwidth=0))
        net.add_node("a")
        net.add_node("b")
        calls = []

        def flaky(_source, data):
            calls.append(data)
            if len(calls) == 1:
                raise RuntimeError("first delivery crashes")

        net.node("b").set_handler(flaky)
        net.send("a", "b", b"one")
        net.send("a", "b", b"two")
        with pytest.raises(RuntimeError):
            net.run()
        assert net.pending == 1  # second message survived the crash
        net.run()
        assert calls == [b"one", b"two"]

    def test_virtual_time_monotone_across_many_messages(self):
        net = Network(default_link=LinkSpec(latency=0.001, bandwidth=1000))
        net.add_node("a")
        sink = net.add_node("b")
        times = []
        sink.set_handler(lambda _s, _d: times.append(net.now))
        for i in range(20):
            net.send("a", "b", bytes(i + 1))
        net.run()
        assert times == sorted(times)
        assert len(times) == 20
