"""Link-level fault injection: seeded loss and jitter-driven reordering."""

import pytest

from repro.errors import TransportError
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro import obs
from repro.obs.metrics import Registry


def lossy_net(seed=0, loss_rate=0.5, jitter=0.0):
    net = Network(
        default_link=LinkSpec(loss_rate=loss_rate, jitter=jitter), seed=seed
    )
    net.add_node("a")
    net.add_node("b")
    return net


class TestLinkSpecValidation:
    def test_defaults_are_fault_free(self):
        link = LinkSpec()
        assert link.loss_rate == 0.0
        assert link.jitter == 0.0

    @pytest.mark.parametrize("loss", [-0.1, 1.1])
    def test_bad_loss_rate_rejected(self, loss):
        with pytest.raises(TransportError, match="loss_rate"):
            LinkSpec(loss_rate=loss)

    def test_negative_jitter_rejected(self):
        with pytest.raises(TransportError, match="jitter"):
            LinkSpec(jitter=-0.001)


class TestLoss:
    def test_lost_messages_are_counted_not_delivered(self):
        net = lossy_net(seed=1, loss_rate=0.5)
        for index in range(40):
            net.node("a").send("b", bytes([index]))
        delivered = net.run()
        assert delivered + net.lost == 40 == net.messages_sent
        assert 0 < net.lost < 40  # 0.5 loss on 40 sends: both sides hit
        assert len(net.node("b").received) == delivered

    def test_losses_are_seed_deterministic(self):
        def lost_set(seed):
            net = lossy_net(seed=seed, loss_rate=0.5)
            for index in range(30):
                net.node("a").send("b", bytes([index]))
            net.run()
            return {data[0] for _src, data in net.node("b").received}

        assert lost_set(7) == lost_set(7)
        assert lost_set(7) != lost_set(8)  # overwhelmingly likely

    def test_lost_messages_recorded_in_trace_as_dropped(self):
        net = lossy_net(seed=1, loss_rate=1.0)
        net.node("a").send("b", b"x")
        net.run()
        assert net.lost == 1
        assert len(net.trace) == 1
        assert net.trace[0].dropped is True

    def test_obs_counter_tracks_losses(self):
        prior = (obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer)
        metrics = Registry()
        obs.enable(registry=metrics)
        try:
            net = lossy_net(seed=3, loss_rate=0.5)
            for _ in range(20):
                net.node("a").send("b", b"payload")
            net.run()
            counted = metrics.counter(
                "net.transport.lost", source="a", destination="b"
            ).value
        finally:
            obs.OBS.enabled, obs.OBS.metrics, obs.OBS.tracer = prior
        assert counted == net.lost > 0


class TestJitterReordering:
    def test_jitter_can_reorder_messages(self):
        net = lossy_net(seed=5, loss_rate=0.0, jitter=0.05)
        for index in range(30):
            net.node("a").send("b", bytes([index]))
        net.run()
        got = [data[0] for _src, data in net.node("b").received]
        assert sorted(got) == list(range(30))  # nothing lost
        assert got != list(range(30))  # ...but order scrambled

    def test_zero_jitter_preserves_fifo(self):
        net = lossy_net(seed=5, loss_rate=0.0, jitter=0.0)
        for index in range(30):
            net.node("a").send("b", bytes([index]))
        net.run()
        got = [data[0] for _src, data in net.node("b").received]
        assert got == list(range(30))
