"""Unit tests for the link model."""

import pytest

from repro.errors import TransportError
from repro.net.link import GIGABIT_LAN, WAN, WIRELESS_11MBPS, LinkSpec


class TestLinkSpec:
    def test_transmission_time_combines_latency_and_serialization(self):
        link = LinkSpec(latency=0.01, bandwidth=1000)
        assert link.transmission_time(500) == pytest.approx(0.01 + 0.5)

    def test_zero_bandwidth_means_infinite(self):
        link = LinkSpec(latency=0.001, bandwidth=0)
        assert link.transmission_time(10**9) == pytest.approx(0.001)

    def test_zero_byte_message_costs_latency_only(self):
        link = LinkSpec(latency=0.002, bandwidth=100)
        assert link.transmission_time(0) == pytest.approx(0.002)

    def test_negative_values_rejected(self):
        with pytest.raises(TransportError):
            LinkSpec(latency=-1)
        with pytest.raises(TransportError):
            LinkSpec(bandwidth=-1)
        with pytest.raises(TransportError):
            LinkSpec().transmission_time(-1)

    def test_size_matters_more_on_slow_links(self):
        # the Table 1 discussion: XML's size inflation costs real latency
        # on constrained links
        small, large = 1_000, 12_000  # representative PBIO vs XML sizes
        lan_penalty = GIGABIT_LAN.transmission_time(large) / GIGABIT_LAN.transmission_time(small)
        wifi_penalty = WIRELESS_11MBPS.transmission_time(large) / WIRELESS_11MBPS.transmission_time(small)
        assert wifi_penalty > lan_penalty

    def test_presets_ordered_by_speed(self):
        size = 100_000
        assert (
            GIGABIT_LAN.transmission_time(size)
            < WIRELESS_11MBPS.transmission_time(size)
            < WAN.transmission_time(size)
        )
