"""ReliableEndpoint: ack/retry determinism, ordering, breaker states."""

import pytest

from repro.net.link import LinkSpec
from repro.net.reliable import CircuitBreaker, ReliableEndpoint
from repro.net.transport import Network


def lossy_pair(loss_rate=0.0, jitter=0.0, net_seed=0, **options):
    net = Network(
        default_link=LinkSpec(latency=0.001, loss_rate=loss_rate,
                              jitter=jitter),
        seed=net_seed,
    )
    a = ReliableEndpoint(net, "a", **options)
    b = ReliableEndpoint(net, "b", **options)
    return net, a, b


class TestBackoffSchedule:
    def test_retry_times_follow_exponential_backoff(self):
        # No receiver node handler needed: the peer simply never acks.
        net = Network(default_link=LinkSpec(latency=0.001))
        a = ReliableEndpoint(net, "a", base_timeout=0.05, backoff_factor=2.0,
                             retry_jitter=0.0, max_retries=3)
        net.add_node("void").close()
        ticket = a.send("void", b"x")
        net.run()
        assert ticket.state == "failed"
        assert ticket.attempts == 4  # initial + max_retries
        gaps = [
            t2 - t1
            for t1, t2 in zip(ticket.retry_times, ticket.retry_times[1:])
        ]
        # each wait doubles: 0.05, 0.10, 0.20
        assert gaps == pytest.approx([0.05, 0.10, 0.20])

    def test_schedule_is_deterministic_for_a_seed(self):
        def run_once():
            net, a, _b = lossy_pair(loss_rate=0.3, net_seed=7, seed=5,
                                    max_retries=6)
            tickets = [a.send("b", bytes([n])) for n in range(10)]
            net.run()
            return [tuple(t.retry_times) for t in tickets]

        assert run_once() == run_once()

    def test_jitter_draws_differ_between_endpoints(self):
        net, a, b = lossy_pair(retry_jitter=0.01, seed=0)
        net.add_node("void").close()
        ta = a.send("void", b"x")
        tb = b.send("void", b"x")
        net.run()
        # same seed, but the per-address RNG decorrelates the schedules
        assert ta.retry_times != tb.retry_times


class TestDelivery:
    def test_lossy_link_still_delivers_everything(self):
        net, a, b = lossy_pair(loss_rate=0.3, net_seed=3)
        seen = []
        b.set_handler(lambda _s, data: seen.append(data))
        tickets = [a.send("b", bytes([n])) for n in range(20)]
        net.run()
        assert seen == [bytes([n]) for n in range(20)]
        assert all(t.state == "acked" for t in tickets)
        assert a.retries > 0  # the loss rate made it work for it
        assert a.in_flight == 0

    def test_in_order_delivery_under_jitter_and_loss(self):
        # jitter reorders frames in flight; retransmits arrive very late.
        # The application must still observe submission order.
        net, a, b = lossy_pair(loss_rate=0.2, jitter=0.01, net_seed=11)
        seen = []
        b.set_handler(lambda _s, data: seen.append(data))
        for n in range(30):
            a.send("b", bytes([n]))
        net.run()
        assert seen == [bytes([n]) for n in range(30)]
        assert b.dup_drops + b.reordered > 0  # the fault injection bit

    def test_duplicate_suppression_counts(self):
        net, a, b = lossy_pair(loss_rate=0.4, net_seed=1)
        seen = []
        b.set_handler(lambda _s, data: seen.append(data))
        for n in range(10):
            a.send("b", bytes([n]))
        net.run()
        assert seen == [bytes([n]) for n in range(10)]
        # lost acks force retransmits of already-delivered frames
        assert b.delivered == 10

    def test_raw_traffic_passes_through(self):
        net, _a, b = lossy_pair()
        seen = []
        b.set_handler(lambda source, data: seen.append((source, data)))
        net.add_node("legacy")
        net.send("legacy", "b", b"no header here")
        net.run()
        assert seen == [("legacy", b"no header here")]
        assert b.passthrough == 1


class TestGapRecovery:
    def test_giving_up_sends_gap_so_stream_continues(self):
        # b's node drops one specific frame forever by being closed only
        # for the first transmission window: instead, emulate a send that
        # fails by pointing it at a dead peer is not possible here (same
        # peer must receive later traffic), so shrink the retry budget
        # and lean on loss to kill one seq -- deterministic via seed.
        net, a, b = lossy_pair(loss_rate=0.9, net_seed=5, max_retries=1,
                               base_timeout=0.05, retry_jitter=0.0,
                               breaker_threshold=1_000_000)
        seen = []
        b.set_handler(lambda _s, data: seen.append(data))
        tickets = [a.send("b", bytes([n])) for n in range(12)]
        net.run()
        failed = [t for t in tickets if t.state == "failed"]
        acked = [t.payload for t in tickets if t.state == "acked"]
        assert failed, "expected the 90% loss to defeat a 1-retry budget"
        # every acked frame reached the app (an acked send is a promise);
        # a failed one may still have arrived (only its acks were lost)
        assert set(acked) <= set(seen)
        # and in-order delivery held across the holes
        assert seen == sorted(seen)

    def test_hole_readvertising_unwedges_after_peer_downtime(self):
        # The sender gives up while the peer is down (GAP lost with it);
        # the hole rides along with the next transmit, so the stream
        # recovers on first contact instead of waiting out the watchdog.
        net = Network(default_link=LinkSpec(latency=0.001))
        a = ReliableEndpoint(net, "a", max_retries=1, base_timeout=0.05,
                             retry_jitter=0.0, breaker_threshold=1_000_000)
        b = ReliableEndpoint(net, "b")
        seen = []
        b.set_handler(lambda _s, data: seen.append(data))
        a.send("b", b"before")
        net.run()
        b.node.close()
        dead = a.send("b", b"while down")
        net.run()
        assert dead.state == "failed"
        b.node.reopen()
        late = a.send("b", b"after reopen")
        net.run()
        assert late.state == "acked"
        assert seen == [b"before", b"after reopen"]
        assert b.gap_skips == 1
        assert b.stall_skips == 0
        # the gap-ack pruned the hole: no more re-advertising needed
        assert not a._holes

    def test_stall_timeout_is_the_last_resort_unwedger(self):
        # A sender that crashes mid-stream never retransmits and never
        # advertises its holes; the receiver-side watchdog must step
        # over the gap on its own.
        from repro.net.reliable import MAGIC, _FRAME_DATA, _HEADER

        net = Network(default_link=LinkSpec(latency=0.001))
        b = ReliableEndpoint(net, "b")
        seen = []
        b.set_handler(lambda _s, data: seen.append(data))
        net.add_node("ghost")
        # seq 1 arrives; seq 0 died with the sender
        net.send("ghost", "b", _HEADER.pack(MAGIC, _FRAME_DATA, 1) + b"late")
        net.run()
        assert seen == [b"late"]
        assert b.stall_skips == 1
        assert net.now >= b.stall_timeout

    def test_breaker_reject_does_not_burn_a_seq(self):
        # A fail-fast rejected send must not leave a hole that would
        # stall the peer's in-order pipeline.
        net = Network(default_link=LinkSpec(latency=0.001))
        a = ReliableEndpoint(net, "a", max_retries=0, base_timeout=0.05,
                             breaker_threshold=1, breaker_cooldown=10.0)
        b = ReliableEndpoint(net, "b")
        seen = []
        b.set_handler(lambda _s, data: seen.append(data))
        b.node.close()
        a.send("b", b"x")  # times out, opens the breaker
        net.run()
        rejected = a.send("b", b"y")
        assert rejected.state == "rejected"
        b.node.reopen()
        net.call_later(15.0, lambda: None)  # let the cooldown elapse
        net.run()
        ok = a.send("b", b"z")
        net.run()
        assert ok.state == "acked"
        assert seen[-1] == b"z"


class TestCircuitBreaker:
    def test_state_machine_transitions(self):
        breaker = CircuitBreaker(threshold=2, cooldown=1.0)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(0.1)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1
        assert not breaker.allow(0.5)  # cooling down
        assert breaker.allow(1.2)      # half-open probe admitted
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow(1.2)  # only one probe at a time
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1.0)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.allow(1.5)
        breaker.record_failure(1.6)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2

    def test_endpoint_fails_fast_when_peer_is_down(self):
        net = Network(default_link=LinkSpec(latency=0.001))
        a = ReliableEndpoint(net, "a", max_retries=0, base_timeout=0.05,
                             breaker_threshold=2, breaker_cooldown=5.0)
        net.add_node("down").close()
        a.send("down", b"1")
        net.run()
        a.send("down", b"2")
        net.run()
        assert a.breaker("down").state == CircuitBreaker.OPEN
        assert a.breaker_opens == 1
        ticket = a.send("down", b"3")
        assert ticket.state == "rejected"
        assert a.rejected == 1

    def test_counters_reconcile_on_clean_run(self):
        net, a, b = lossy_pair(loss_rate=0.1, net_seed=2)
        b.set_handler(lambda _s, _d: None)
        for n in range(15):
            a.send("b", bytes([n]))
        net.run()
        counters = a.counters()
        assert counters["sent"] == 15
        assert counters["acked"] == 15
        assert counters["failed"] == 0
        assert counters["rejected"] == 0
        assert a.in_flight == 0
