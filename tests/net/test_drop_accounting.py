"""Message loss is never silent: per-node drop counts, trace entries
flagged ``dropped=True``, and (when enabled) obs counters."""

from __future__ import annotations

import pytest

from repro import obs
from repro.net.transport import Network


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable(reset=True)
    yield
    obs.disable(reset=True)


def _drop_some():
    net = Network()
    net.add_node("a")
    b = net.add_node("b")
    c = net.add_node("c")
    net.send("a", "b", b"ok")
    net.run()
    b.close()
    c.close()
    net.send("a", "b", b"lost-1")
    net.send("a", "b", b"lost-2")
    net.send("a", "c", b"lost-3")
    net.run()
    return net, b, c


def test_drops_counted_per_node_and_network_wide():
    net, b, c = _drop_some()
    assert b.drops == 2
    assert c.drops == 1
    assert net.dropped == 3
    assert net.drops_by_node() == {"b": 2, "c": 1}
    # the successful delivery is not counted anywhere
    assert b.received == [("a", b"ok")]


def test_trace_flags_dropped_deliveries():
    net, _, _ = _drop_some()
    assert len(net.trace) == 4  # drops still traced, not vanished
    flags = [(e.destination, e.dropped) for e in net.trace]
    assert flags == [("b", False), ("b", True), ("b", True), ("c", True)]
    dropped_sizes = [e.size for e in net.trace if e.dropped]
    assert dropped_sizes == [6, 6, 6]


def test_drops_surface_as_obs_counters():
    obs.enable()
    net, _, _ = _drop_some()
    metrics = obs.get_registry()
    assert metrics.counter("net.transport.dropped", node="b").value == 2
    assert metrics.counter("net.transport.dropped", node="c").value == 1
    sent = metrics.counter(
        "net.transport.messages", source="a", destination="b"
    )
    assert sent.value == 3  # sends counted whether or not they land


def test_no_obs_counters_when_disabled():
    assert not obs.is_enabled()
    _drop_some()
    assert len(obs.get_registry()) == 0
