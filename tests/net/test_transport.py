"""Unit tests for the simulated network fabric."""

import pytest

from repro.errors import TransportError
from repro.net.link import LinkSpec
from repro.net.transport import Network


class TestTopology:
    def test_add_and_get_node(self):
        net = Network()
        node = net.add_node("a")
        assert net.node("a") is node

    def test_duplicate_address_rejected(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(TransportError, match="already in use"):
            net.add_node("a")

    def test_unknown_node_lookup(self):
        with pytest.raises(TransportError, match="no node"):
            Network().node("ghost")

    def test_send_to_unknown_destination(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(TransportError, match="no node"):
            net.send("a", "ghost", b"x")

    def test_per_pair_links(self):
        net = Network(default_link=LinkSpec(latency=0.001, bandwidth=0))
        slow = LinkSpec(latency=1.0, bandwidth=0)
        net.set_link("a", "b", slow)
        assert net.link_between("a", "b") is slow
        assert net.link_between("b", "a") is slow
        assert net.link_between("a", "c") is net.default_link


class TestDelivery:
    def test_polling_inbox(self):
        net = Network()
        net.add_node("a")
        b = net.add_node("b")
        net.send("a", "b", b"hello")
        net.run()
        assert b.received == [("a", b"hello")]

    def test_handler_invoked(self):
        net = Network()
        a = net.add_node("a")
        net.add_node("b")
        got = []
        net.node("b").set_handler(lambda src, data: got.append((src, data)))
        a.send("b", b"ping")
        net.run()
        assert got == [("a", b"ping")]

    def test_timestamp_order(self):
        net = Network(default_link=LinkSpec(latency=0.0, bandwidth=1000))
        net.add_node("a")
        b = net.add_node("b")
        net.send("a", "b", b"x" * 500)   # 0.5s
        net.send("a", "b", b"y" * 100)   # 0.1s -> arrives first
        net.run()
        assert [data[:1] for _src, data in b.received] == [b"y", b"x"]

    def test_fifo_tiebreak_for_equal_timestamps(self):
        net = Network(default_link=LinkSpec(latency=0.0, bandwidth=0))
        net.add_node("a")
        b = net.add_node("b")
        for i in range(5):
            net.send("a", "b", bytes([i]))
        net.run()
        assert [data[0] for _src, data in b.received] == [0, 1, 2, 3, 4]

    def test_handler_may_send_more(self):
        net = Network()
        net.add_node("client")
        net.add_node("server")
        got = []
        net.node("server").set_handler(
            lambda src, data: net.send("server", src, b"pong")
        )
        net.node("client").set_handler(lambda src, data: got.append(data))
        net.send("client", "server", b"ping")
        net.run()
        assert got == [b"pong"]

    def test_virtual_time_advances(self):
        net = Network(default_link=LinkSpec(latency=0.25, bandwidth=0))
        net.add_node("a")
        net.add_node("b")
        net.send("a", "b", b"x")
        net.run()
        assert net.now == pytest.approx(0.25)

    def test_max_time_leaves_future_messages_queued(self):
        net = Network(default_link=LinkSpec(latency=1.0, bandwidth=0))
        net.add_node("a")
        b = net.add_node("b")
        net.send("a", "b", b"x")
        delivered = net.run(max_time=0.5)
        assert delivered == 0 and net.pending == 1
        net.run()
        assert b.received

    def test_message_loop_guard(self):
        net = Network()
        net.add_node("a")
        net.add_node("b")
        net.node("b").set_handler(lambda src, d: net.send("b", "a", d))
        net.node("a").set_handler(lambda src, d: net.send("a", "b", d))
        net.send("a", "b", b"bounce")
        with pytest.raises(TransportError, match="quiesce"):
            net.run(max_events=100)


class TestFailureInjection:
    def test_closed_node_drops_messages(self):
        net = Network()
        net.add_node("a")
        b = net.add_node("b")
        b.close()
        net.send("a", "b", b"lost")
        net.run()
        assert b.received == []
        assert net.dropped == 1


class TestAccounting:
    def test_stats_and_trace(self):
        net = Network()
        net.add_node("a")
        net.add_node("b")
        net.send("a", "b", b"12345")
        net.run()
        assert net.bytes_sent == 5
        assert net.messages_sent == 1
        assert len(net.trace) == 1
        entry = net.trace[0]
        assert (entry.source, entry.destination, entry.size) == ("a", "b", 5)
