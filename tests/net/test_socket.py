"""Socket-transport tests: the asyncio UDP loopback fabric honors the
same node/timer contract as the simulated network, so the layers above
(reliable endpoints, ECho morphing) run unchanged over real datagrams.

Wall-clock budgets are kept tight: each test drives the loop for tens
of milliseconds of real time.
"""

import pytest

from repro.errors import TransportError
from repro.net.link import LinkSpec
from repro.net.socket import SocketNetwork
from repro.net.reliable import ReliableEndpoint


@pytest.fixture
def net():
    with SocketNetwork(seed=1) as network:
        yield network


class TestTopology:
    def test_add_and_get_node(self, net):
        node = net.add_node("a")
        assert net.node("a") is node
        assert node.port > 0

    def test_duplicate_address_rejected(self, net):
        net.add_node("a")
        with pytest.raises(TransportError, match="already in use"):
            net.add_node("a")

    def test_unknown_destination(self, net):
        net.add_node("a")
        with pytest.raises(TransportError, match="no node"):
            net.send("a", "ghost", b"x")

    def test_each_node_gets_its_own_port(self, net):
        a = net.add_node("a")
        b = net.add_node("b")
        assert a.port != b.port


class TestDelivery:
    def test_send_and_receive(self, net):
        net.add_node("a")
        b = net.add_node("b")
        got = []
        b.set_handler(lambda src, data: got.append((src, data)))
        net.send("a", "b", b"hello")
        net.run(max_time=2.0)
        assert got == [("a", b"hello")]

    def test_unhandled_messages_accumulate(self, net):
        net.add_node("a")
        b = net.add_node("b")
        net.send("a", "b", b"payload")
        net.run(max_time=2.0)
        assert b.received == [("a", b"payload")]

    def test_closed_node_drops_and_counts(self, net):
        net.add_node("a")
        b = net.add_node("b")
        b.close()
        net.send("a", "b", b"x")
        net.run(max_time=2.0)
        assert b.drops == 1
        assert net.drops_by_node() == {"b": 1}
        b.reopen()
        net.send("a", "b", b"y")
        net.run(max_time=2.0)
        assert b.received == [("a", b"y")]

    def test_handler_exception_is_contained(self, net):
        net.add_node("a")
        b = net.add_node("b")

        def bad(_src, _data):
            raise ValueError("boom")

        b.set_handler(bad)
        net.send("a", "b", b"x")
        net.run(max_time=2.0)
        assert b.handler_errors == 1
        assert net.handler_errors == 1
        assert isinstance(net.last_handler_error[1], ValueError)

    def test_delivery_trace_recorded(self, net):
        net.add_node("a")
        net.add_node("b")
        net.send("a", "b", b"x")
        net.run(max_time=2.0)
        assert [
            (d.source, d.destination) for d in net.trace if not d.dropped
        ] == [("a", "b")]


class TestFaultInjection:
    def test_seeded_loss_is_deterministic(self):
        decisions = []
        for _attempt in range(2):
            with SocketNetwork(
                seed=42, default_link=LinkSpec(loss_rate=0.5)
            ) as net:
                net.add_node("a")
                b = net.add_node("b")
                got = []
                b.set_handler(lambda src, data: got.append(data))
                for i in range(20):
                    net.send("a", "b", bytes([i]))
                net.run(max_time=2.0)
                decisions.append((net.lost, sorted(got)))
        assert decisions[0] == decisions[1]
        assert decisions[0][0] > 0  # some datagrams actually lost

    def test_latency_is_a_real_delay(self):
        with SocketNetwork(
            default_link=LinkSpec(latency=0.05, bandwidth=0.0)
        ) as net:
            net.add_node("a")
            b = net.add_node("b")
            sent_at = net.now
            net.send("a", "b", b"x")
            net.run(max_time=2.0)
            assert b.received
            arrival = next(
                d.time for d in net.trace if d.destination == "b"
            )
            assert arrival - sent_at >= 0.05

    def test_per_pair_links(self, net):
        lossy = LinkSpec(loss_rate=1.0)
        net.set_link("a", "b", lossy)
        assert net.link_between("a", "b") is lossy
        assert net.link_between("b", "a") is lossy
        net.add_node("a")
        b = net.add_node("b")
        net.send("a", "b", b"x")
        net.run(max_time=1.0)
        assert net.lost == 1
        assert not b.received


class TestTimers:
    def test_call_later_fires(self, net):
        fired = []
        net.call_later(0.02, lambda: fired.append(net.now))
        net.run(max_time=2.0)
        assert fired and fired[0] >= 0.02

    def test_cancelled_timer_does_not_fire(self, net):
        fired = []
        timer = net.call_later(0.02, lambda: fired.append(True))
        timer.cancel()
        net.run(max_time=0.3)
        assert not fired
        assert net.pending == 0

    def test_negative_delay_rejected(self, net):
        with pytest.raises(TransportError, match="must be >= 0"):
            net.call_later(-0.1, lambda: None)

    def test_run_waits_for_armed_timers(self, net):
        """Quiesce detection must not declare idle while a timer is
        armed — retransmission schedules depend on it."""
        fired = []
        net.call_later(0.15, lambda: fired.append(True))
        net.run(max_time=5.0)
        assert fired


class TestLifecycle:
    def test_close_is_idempotent(self):
        net = SocketNetwork()
        net.add_node("a")
        net.close()
        net.close()
        with pytest.raises(TransportError, match="closed"):
            net.add_node("b")

    def test_context_manager_closes(self):
        with SocketNetwork() as net:
            net.add_node("a")
        with pytest.raises(TransportError, match="closed"):
            net.run()


class TestReliableOverSockets:
    def test_exactly_once_under_loss(self):
        """The reliable endpoint's retransmission schedule runs on the
        socket transport's timers: every message arrives exactly once
        despite 30% injected loss."""
        with SocketNetwork(
            seed=9, default_link=LinkSpec(loss_rate=0.3)
        ) as net:
            sender = ReliableEndpoint(net, address="S")
            receiver = ReliableEndpoint(net, address="R")
            got = []
            receiver.set_handler(lambda src, data: got.append(data))
            for i in range(10):
                sender.send("R", b"m%d" % i)
            net.run(max_time=10.0)
            assert sorted(got) == [b"m%d" % i for i in range(10)]
            assert net.lost > 0  # loss actually happened


class TestEchoOverSockets:
    def test_morphing_chain_over_udp(self):
        """The flagship scenario on real datagrams: a v2.0 publisher, a
        v1.0 sink and a v0.0 sink reconcile over lossy UDP with
        reliable endpoints — transport-pluggability end to end."""
        from repro.echo.process import EChoProcess
        from repro.echo.protocol import (
            RESPONSE_V0,
            RESPONSE_V1,
            RESPONSE_V2,
            register_protocol,
        )
        from repro.pbio.registry import FormatRegistry

        registry = FormatRegistry()
        register_protocol(registry, "2.0")
        with SocketNetwork(
            seed=5, default_link=LinkSpec(loss_rate=0.1)
        ) as net:
            creator = EChoProcess(net, "C", registry, version="2.0",
                                  reliable=True)
            sink1 = EChoProcess(net, "S1", registry, version="1.0",
                                reliable=True)
            sink0 = EChoProcess(net, "S0", registry, version="0.0",
                                reliable=True)
            creator.create_channel("ch")
            sink1.open_channel("ch", "C", as_sink=True)
            sink0.open_channel("ch", "C", as_sink=True)
            net.run(max_time=10.0)
            got1, got0 = [], []
            sink1.subscribe("ch", RESPONSE_V1, got1.append)
            sink0.subscribe("ch", RESPONSE_V0, got0.append)
            record = RESPONSE_V2.make_record(
                channel_id="ch",
                member_count=1,
                member_list=[{
                    "info": "C", "ID": 1,
                    "is_Source": True, "is_Sink": False,
                }],
            )
            for _ in range(4):
                creator.submit("ch", RESPONSE_V2, record)
            net.run(max_time=15.0)
            assert len(got1) == 4
            assert len(got0) == 4
            # the v1 sink saw the Figure 5 retro-transform applied
            assert got1[0]["src_count"] == 1
