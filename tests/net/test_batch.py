"""BATCH1 frame layer: roundtrip, zero-copy segments, hostile shapes.

The frame decoder's contract mirrors every other wire surface: any
malformed buffer — truncation anywhere, lying counts, unknown flags, a
trace flag without its block, trailing bytes — is a clean
:class:`~repro.errors.DecodeError`, never a raw ``struct.error`` or an
allocation blow-up.
"""

import struct

import pytest

from repro import obs
from repro.errors import DecodeError
from repro.net.batch import (
    BATCH_FLAG_TRACE,
    BATCH_HEADER_SIZE,
    BATCH_MAGIC,
    is_batch,
    iter_batch,
    pack_batch,
    peek_batch_trace,
    unpack_batch,
)
from repro.obs.tracectx import TRACE_BLOCK_SIZE, make_context

MESSAGES = [b"alpha-message", b"b", b"gamma" * 20]


def make_frame(messages=None, ctx=None):
    return pack_batch(MESSAGES if messages is None else messages, ctx)


class TestRoundtrip:
    def test_segments_recover_every_message_in_order(self):
        frame = make_frame()
        parsed = unpack_batch(frame)
        assert parsed.count == len(MESSAGES)
        assert parsed.trace is None
        recovered = [
            frame[off:off + length] for off, length in parsed.segments
        ]
        assert recovered == MESSAGES

    def test_iter_batch_yields_zero_copy_views(self):
        frame = bytearray(make_frame())
        views = list(iter_batch(frame))
        assert [bytes(v) for v in views] == MESSAGES
        for view in views:
            assert isinstance(view, memoryview)
            assert view.obj is frame  # a slice of the frame, not a copy

    def test_single_message_frame(self):
        parsed = unpack_batch(make_frame([b"only"]))
        assert parsed.count == 1

    def test_is_batch_routing_check(self):
        assert is_batch(make_frame())
        assert not is_batch(b"PBIO-ish bytes")
        assert not is_batch(b"")

    def test_trace_block_roundtrips(self):
        ctx = make_context()
        frame = make_frame(ctx=ctx)
        parsed = unpack_batch(frame)
        assert parsed.trace == ctx
        assert peek_batch_trace(frame) == ctx
        recovered = [
            frame[off:off + length] for off, length in parsed.segments
        ]
        assert recovered == MESSAGES

    def test_unpack_accepts_memoryview_and_offset(self):
        frame = make_frame()
        padded = b"\x00" * 7 + frame
        parsed = unpack_batch(memoryview(padded), offset=7)
        assert [
            bytes(padded[off:off + length]) for off, length in parsed.segments
        ] == MESSAGES

    def test_empty_batch_cannot_be_packed(self):
        with pytest.raises(DecodeError):
            pack_batch([])


class TestHostileFrames:
    """Every mandated hostile shape fails with DecodeError — and only
    DecodeError."""

    def _expect_decode_error(self, frame):
        with pytest.raises(DecodeError):
            unpack_batch(frame)

    def test_truncated_header(self):
        for cut in range(BATCH_HEADER_SIZE):
            self._expect_decode_error(make_frame()[:cut])

    def test_truncated_mid_message(self):
        frame = make_frame()
        # every possible truncation point past the header: inside length
        # prefixes and inside message bodies alike
        for cut in range(BATCH_HEADER_SIZE, len(frame)):
            self._expect_decode_error(frame[:cut])

    def test_count_exceeds_payload(self):
        buf = bytearray(make_frame())
        for lied in (len(buf), 2**16, 2**31 - 1, 2**32 - 1):
            struct.pack_into(">I", buf, 8, lied)
            self._expect_decode_error(bytes(buf))

    def test_zero_count(self):
        buf = bytearray(make_frame())
        struct.pack_into(">I", buf, 8, 0)
        self._expect_decode_error(bytes(buf))

    def test_trace_flag_without_trace_block(self):
        # a frame claiming a trace block it does not carry
        header = struct.pack(
            ">6sBBI", BATCH_MAGIC, 1, BATCH_FLAG_TRACE, 1
        )
        self._expect_decode_error(header)
        # ... and one whose block is cut short
        real = make_frame(ctx=make_context())
        self._expect_decode_error(
            real[:BATCH_HEADER_SIZE + TRACE_BLOCK_SIZE - 1]
        )

    def test_bad_magic(self):
        buf = bytearray(make_frame())
        buf[0] ^= 0xFF
        self._expect_decode_error(bytes(buf))

    def test_unsupported_version(self):
        buf = bytearray(make_frame())
        buf[6] = 9
        self._expect_decode_error(bytes(buf))

    def test_unknown_flag_bits(self):
        buf = bytearray(make_frame())
        buf[7] |= 0x80
        self._expect_decode_error(bytes(buf))

    def test_trailing_bytes(self):
        self._expect_decode_error(make_frame() + b"x")

    def test_message_length_overclaim(self):
        frame = make_frame([b"abcd"])
        buf = bytearray(frame)
        struct.pack_into(">I", buf, BATCH_HEADER_SIZE, 2**31)
        self._expect_decode_error(bytes(buf))


class TestPeekNeverRaises:
    def test_garbage_and_truncations_return_none(self):
        assert peek_batch_trace(b"") is None
        assert peek_batch_trace(b"garbage") is None
        assert peek_batch_trace(make_frame()) is None  # no trace flag
        traced = make_frame(ctx=make_context())
        for cut in range(len(traced)):
            peek_batch_trace(traced[:cut])  # must not raise


class TestObsMetrics:
    def test_pack_and_unpack_count_frames_and_messages(self):
        registry = obs.Registry()
        obs.enable(registry=registry)
        try:
            unpack_batch(make_frame())
            assert registry.counter("net.batch.packed_frames").value == 1
            assert registry.counter("net.batch.packed_messages").value == len(
                MESSAGES
            )
            assert registry.counter("net.batch.unpacked_frames").value == 1
            assert registry.counter(
                "net.batch.unpacked_messages"
            ).value == len(MESSAGES)
        finally:
            obs.disable(reset=True)
