"""Unit tests for the shared event-loop scheduler abstraction.

The :class:`VirtualScheduler` is the timing heart of the simulated
transport; these tests pin the ordering contract both transports rely
on: strictly non-decreasing virtual time, FIFO tie-breaking at equal
timestamps, and cancelled timers staying in the heap but never firing.
"""

import pytest

from repro.errors import TransportError
from repro.net.scheduler import Timer, VirtualScheduler


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualScheduler().now == 0.0

    def test_pop_advances_the_clock(self):
        sched = VirtualScheduler()
        sched.schedule(1.5, "a")
        when, payload = sched.pop()
        assert (when, payload) == (1.5, "a")
        assert sched.now == 1.5

    def test_clock_never_rewinds(self):
        sched = VirtualScheduler()
        sched.schedule(2.0, "late")
        sched.pop()
        # an event scheduled in the past pops at its recorded time but
        # cannot pull the clock backwards
        sched.schedule(1.0, "past")
        when, payload = sched.pop()
        assert payload == "past"
        assert when == 1.0
        assert sched.now == 2.0


class TestOrdering:
    def test_equal_timestamps_are_fifo(self):
        sched = VirtualScheduler()
        for label in ("first", "second", "third"):
            sched.schedule(1.0, label)
        assert [sched.pop()[1] for _ in range(3)] == [
            "first", "second", "third"
        ]

    def test_peek_does_not_pop(self):
        sched = VirtualScheduler()
        sched.schedule(3.0, "x")
        assert sched.peek_when() == 3.0
        assert len(sched) == 1
        assert sched.now == 0.0

    def test_len_and_truthiness(self):
        sched = VirtualScheduler()
        assert not sched
        sched.schedule(1.0, "x")
        assert sched
        assert len(sched) == 1
        sched.pop()
        assert not sched


class TestTimers:
    def test_call_later_relative_to_now(self):
        sched = VirtualScheduler()
        sched.schedule(5.0, "advance")
        sched.pop()
        fired = []
        timer = sched.call_later(1.0, lambda: fired.append(True))
        assert isinstance(timer, Timer)
        assert timer.when == 6.0

    def test_call_at_clamps_to_now(self):
        sched = VirtualScheduler()
        sched.schedule(5.0, "advance")
        sched.pop()
        timer = sched.call_at(1.0, lambda: None)
        assert timer.when == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(TransportError, match="must be >= 0"):
            VirtualScheduler().call_later(-0.1, lambda: None)

    def test_cancelled_timer_stays_queued_but_marked(self):
        sched = VirtualScheduler()
        timer = sched.call_later(1.0, lambda: None)
        timer.cancel()
        assert timer.cancelled
        # cancellation is lazy: the heap entry remains, the run loop is
        # responsible for skipping it
        assert len(sched) == 1
        _when, payload = sched.pop()
        assert payload is timer
        assert payload.cancelled

    def test_timers_interleave_with_messages(self):
        sched = VirtualScheduler()
        order = []
        sched.schedule(1.0, "msg@1")
        sched.call_at(0.5, lambda: order.append("timer@0.5"))
        sched.schedule(2.0, "msg@2")
        while sched:
            _when, payload = sched.pop()
            if isinstance(payload, Timer):
                if not payload.cancelled:
                    payload.callback()
            else:
                order.append(payload)
        assert order == ["timer@0.5", "msg@1", "msg@2"]
