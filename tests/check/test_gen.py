"""repro.check.gen: determinism, validity and coverage of the generators."""

import random

from repro.check import gen
from repro.ecode import compile_procedure, interpret_procedure
from repro.pbio.decode import decode_record
from repro.pbio.encode import encode_record
from repro.pbio.record import records_equal
from repro.pbio.types import TypeKind


class TestDeterminism:
    def test_same_seed_same_format(self):
        a = gen.random_format(random.Random(42))
        b = gen.random_format(random.Random(42))
        assert a == b
        assert a.format_id == b.format_id

    def test_same_seed_same_record(self):
        fmt = gen.random_format(random.Random(1))
        ra = gen.random_record(random.Random(2), fmt)
        rb = gen.random_record(random.Random(2), fmt)
        assert ra == rb

    def test_same_seed_same_program(self):
        assert gen.random_program(random.Random(3)) == gen.random_program(
            random.Random(3)
        )


class TestValidity:
    def test_generated_records_validate_and_roundtrip(self):
        rng = random.Random(7)
        for _ in range(25):
            fmt = gen.random_format(rng)
            rec = gen.random_record(rng, fmt)
            fmt.validate_record(rec)  # no FormatError
            wire = encode_record(fmt, rec)
            assert records_equal(decode_record(fmt, wire), rec)

    def test_generated_programs_run_in_both_arms(self):
        from repro.pbio.record import Record

        rng = random.Random(11)
        for _ in range(10):
            source = gen.random_program(rng)
            compiled = compile_procedure(source)
            interp = interpret_procedure(source)
            inputs = {"a": 3, "b": -2, "c": 7}
            from repro.errors import ECodeError

            def run(proc):
                try:
                    return proc(Record(dict(inputs)), Record({"a": 0, "b": 0, "c": 0}))
                except ECodeError:
                    return "raised"

            assert run(compiled) == run(interp)

    def test_f32_values_are_canonical(self):
        value = gen.canonical_f32(0.1)
        assert gen.canonical_f32(value) == value


class TestCoverage:
    def test_format_space_reaches_every_scalar_kind(self):
        rng = random.Random(0)
        seen = set()

        def visit(fmt):
            for field in fmt.fields:
                if field.is_complex:
                    visit(field.subformat)
                else:
                    seen.add(field.kind)

        for _ in range(60):
            visit(gen.random_format(rng))
        assert seen >= set(gen.SCALAR_KINDS)

    def test_format_space_reaches_arrays_and_nesting(self):
        rng = random.Random(0)
        saw_fixed = saw_var = saw_complex = False
        for _ in range(60):
            fmt = gen.random_format(rng)
            for field in fmt.fields:
                if field.is_complex:
                    saw_complex = True
                if field.array is not None:
                    if field.array.fixed_length is not None:
                        saw_fixed = True
                    else:
                        saw_var = True
        assert saw_fixed and saw_var and saw_complex

    def test_tables_are_shared_with_hypothesis_strategies(self):
        # tests/strategies.py must fuzz the same space as repro.check.gen.
        import tests.strategies as strategies

        assert strategies._SCALAR_KINDS is gen.SCALAR_KINDS
        assert strategies._SIZES is gen.SIZES
        assert strategies._SIGNED_BOUNDS is gen.SIGNED_BOUNDS
        assert strategies._UNSIGNED_BOUNDS is gen.UNSIGNED_BOUNDS
        assert TypeKind.COMPLEX not in gen.SCALAR_KINDS
