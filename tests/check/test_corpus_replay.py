"""Crash corpus: persistence, minimization, and replay of the committed
regression corpus under ``tests/check/corpus/``."""

import json
import os

import pytest

from repro.check.corpus import Corpus, minimize_wire
from repro.check.runner import replay_corpus, replay_entry

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


class TestCorpusStore:
    def test_add_is_idempotent(self, tmp_path):
        corpus = Corpus(str(tmp_path / "c"))
        entry = {"kind": "ecode", "program": "return 1;",
                 "expectation": "interp_matches_codegen"}
        path_a = corpus.add(entry)
        path_b = corpus.add(dict(entry))
        assert path_a == path_b
        assert len(corpus) == 1

    def test_entries_round_trip_json(self, tmp_path):
        corpus = Corpus(str(tmp_path / "c"))
        entry = {"kind": "mutation", "wire_hex": "00ff", "expectation": "x"}
        corpus.add(entry)
        assert corpus.entries() == [entry]

    def test_missing_directory_is_empty(self, tmp_path):
        corpus = Corpus(str(tmp_path / "never_created"))
        assert corpus.paths() == []
        assert len(corpus) == 0


class TestMinimizer:
    def test_minimizes_to_failing_core(self):
        # "Fails" whenever the byte 0xAB survives: the minimizer should
        # strip everything else.
        data = bytes(range(200)) + b"\xab" + bytes(range(50))
        shrunk = minimize_wire(data, lambda d: b"\xab" in d)
        assert b"\xab" in shrunk
        assert len(shrunk) <= 4

    def test_never_returns_non_failing_input(self):
        data = bytes(100)
        shrunk = minimize_wire(data, lambda d: len(d) >= 10)
        assert len(shrunk) >= 10

    def test_predicate_exception_treated_as_not_failing(self):
        def bomb(d):
            raise RuntimeError("predicate bug")
        data = b"keep me"
        assert minimize_wire(data, bomb) == data


class TestCommittedCorpus:
    """Every committed crash entry must stay fixed: replay runs the exact
    invariant that once failed and asserts it no longer fires."""

    def test_corpus_is_nonempty(self):
        assert len(Corpus(CORPUS_DIR)) >= 3

    @pytest.mark.parametrize(
        "path",
        sorted(
            os.path.join(CORPUS_DIR, name)
            for name in os.listdir(CORPUS_DIR)
            if name.endswith(".json")
        ),
        ids=os.path.basename,
    )
    def test_entry_no_longer_fails(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        findings = replay_entry(entry)
        assert findings == [], [f.detail for f in findings]

    def test_replay_corpus_summary(self):
        summary = replay_corpus(Corpus(CORPUS_DIR))
        assert summary["ok"] is True
        assert summary["entries"] == len(Corpus(CORPUS_DIR))
        assert summary["still_failing"] == 0
