"""The crash chaos oracle: kill/partition/ablation scenarios, the
journaling A/B contract, focus mode, and corpus replay."""

import pytest

from repro.check.oracles import check_crash, check_crash_chaos
from repro.check.runner import replay_entry, run_check
from repro.errors import ReproError


class TestScenarios:
    def test_kill_is_clean_on_known_good_seeds(self):
        for net_seed in (0, 12345):
            findings = check_crash_chaos(
                net_seed, loss_rate=0.05, jitter=0.005, messages=6,
                scenario="kill",
            )
            assert findings == [], [f.detail for f in findings]

    def test_partition_fences_the_stale_owner_cleanly(self):
        findings = check_crash_chaos(
            net_seed=12345, loss_rate=0.05, jitter=0.005, messages=6,
            scenario="partition",
        )
        assert findings == [], [f.detail for f in findings]

    def test_ablation_arm_holds_its_weak_invariants(self):
        """Without journaling, loss is expected — the oracle only
        asserts no invented or double-delivered events."""
        findings = check_crash_chaos(
            net_seed=12345, loss_rate=0.05, jitter=0.005, messages=6,
            scenario="ablation",
        )
        assert findings == [], [f.detail for f in findings]

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(ReproError):
            check_crash_chaos(0, 0.0, 0.0, 4, scenario="meteor")

    def test_randomized_case_is_reproducible(self):
        import random

        first = check_crash(random.Random(5), messages=4)
        second = check_crash(random.Random(5), messages=4)
        assert [f.detail for f in first] == [f.detail for f in second]


class TestJournalingContract:
    def test_ablation_actually_loses_on_the_journaled_kill_seed(self):
        """The A/B the tentpole promises: on a seed where the journaled
        kill run is exactly-once, the same schedule without the journal
        loses (or re-delivers) events.  Run both arms through the
        deployment the oracle uses and compare delivered counts."""
        from repro.bench.fabric import bench_fabric_recovery

        rows = bench_fabric_recovery(messages=24, crash_fractions=(0.5,))
        journaled = next(r for r in rows if r.journaled)
        ablation = next(r for r in rows if not r.journaled)
        assert journaled.lost == 0
        assert journaled.delivered == journaled.published
        assert ablation.lost > 0 or ablation.tail_duplicates > 0


class TestHarnessIntegration:
    def test_focus_mode_spends_the_whole_budget_on_crash(self):
        summary = run_check(seed=0, budget=100, only="crash")
        assert summary["ok"], summary["findings"]
        assert summary["cases"]["crash"] > 0
        for oracle, count in summary["cases"].items():
            if oracle != "crash":
                assert count == 0

    def test_full_run_includes_crash_cases(self):
        summary = run_check(seed=0, budget=400)
        assert summary["cases"]["crash"] > 0

    def test_replay_reruns_a_crash_scenario_from_its_params(self):
        entry = {
            "kind": "crash", "scenario": "kill", "net_seed": 12345,
            "loss_rate": 0.05, "jitter": 0.005, "messages": 6,
            "expectation": "crash_exactly_once",
        }
        assert replay_entry(entry) == []

    def test_replay_defaults_scenario_to_kill(self):
        entry = {
            "kind": "crash", "net_seed": 12345, "loss_rate": 0.05,
            "jitter": 0.005, "messages": 6,
        }
        assert replay_entry(entry) == []
