"""The reliability oracle: chain/failover scenarios, focus mode, replay."""

from repro.check.oracles import (
    check_reliability_chain,
    check_reliability_failover,
)
from repro.check.runner import replay_entry, run_check


class TestScenarios:
    def test_chain_is_clean_on_known_good_seeds(self):
        for net_seed in (0, 1, 2):
            findings = check_reliability_chain(
                net_seed, loss_rate=0.1, jitter=0.005, messages=5
            )
            assert findings == [], [f.detail for f in findings]

    def test_failover_is_clean_with_a_crashed_primary(self):
        findings = check_reliability_failover(
            net_seed=0, loss_rate=0.05, jitter=0.0, messages=5,
            crash_primary=True,
        )
        assert findings == [], [f.detail for f in findings]

    def test_failover_is_clean_with_a_healthy_primary(self):
        findings = check_reliability_failover(
            net_seed=1, loss_rate=0.05, jitter=0.0, messages=5,
            crash_primary=False,
        )
        assert findings == [], [f.detail for f in findings]


class TestHarnessIntegration:
    def test_focus_mode_spends_the_whole_budget_on_reliability(self):
        summary = run_check(seed=0, budget=100, only="reliability")
        assert summary["ok"], summary["findings"]
        assert summary["cases"]["reliability"] > 0
        for oracle, count in summary["cases"].items():
            if oracle != "reliability":
                assert count == 0

    def test_full_run_includes_reliability_cases(self):
        summary = run_check(seed=0, budget=400)
        assert summary["cases"]["reliability"] > 0

    def test_replay_reruns_a_chain_scenario_from_its_params(self):
        entry = {
            "kind": "reliability", "scenario": "chain", "net_seed": 0,
            "loss_rate": 0.1, "jitter": 0.005, "messages": 5,
            "expectation": "exactly_once",
        }
        assert replay_entry(entry) == []

    def test_replay_reruns_a_failover_scenario_from_its_params(self):
        entry = {
            "kind": "reliability", "scenario": "failover", "net_seed": 0,
            "loss_rate": 0.05, "jitter": 0.0, "messages": 5,
            "crash_primary": True, "expectation": "exactly_once",
        }
        assert replay_entry(entry) == []
