"""The batching differential oracle: batched vs one-at-a-time arms of
the same deployment must agree on records, order, receiver stats and
trace continuity — over the lossy sim fabric and the real socket
transport — plus corpus replay and the BATCH1 mutation-table entries.
"""

import random

from repro.check.mutate import MUTATIONS, batch_count_lie, batch_truncate
from repro.check.oracles import check_batching, check_batching_parity
from repro.check.runner import BUDGET_SPLIT, replay_entry, run_check
from repro.net.batch import BATCH_HEADER_SIZE, is_batch


class TestParityScenarios:
    def test_parity_is_clean_on_known_good_seeds_over_sim(self):
        for net_seed in (0, 1, 2):
            findings = check_batching_parity(
                net_seed, loss_rate=0.05, jitter=0.005,
                messages=8, batch_size=3, transport="sim",
            )
            assert findings == [], [f.detail for f in findings]

    def test_parity_is_clean_over_the_socket_transport(self):
        findings = check_batching_parity(
            0, loss_rate=0.0, jitter=0.0, messages=6, batch_size=2,
            transport="socket",
        )
        assert findings == [], [f.detail for f in findings]

    def test_parity_is_clean_on_a_lossless_fabric(self):
        findings = check_batching_parity(
            3, loss_rate=0.0, jitter=0.0, messages=8, batch_size=4,
        )
        assert findings == [], [f.detail for f in findings]


class TestHarnessIntegration:
    def test_batching_has_a_budget_share(self):
        assert "batching" in BUDGET_SPLIT

    def test_focus_mode_spends_the_whole_budget_on_batching(self):
        summary = run_check(seed=0, budget=80, only="batching")
        assert summary["ok"], summary["findings"]
        assert summary["cases"]["batching"] > 0
        for oracle, count in summary["cases"].items():
            if oracle != "batching":
                assert count == 0

    def test_oracle_entry_point_is_seed_deterministic(self):
        findings = check_batching(random.Random("smoke:0"))
        assert findings == [], [f.detail for f in findings]

    def test_replay_reruns_a_parity_scenario_from_its_params(self):
        entry = {
            "kind": "batching", "scenario": "parity", "net_seed": 1,
            "loss_rate": 0.05, "jitter": 0.0, "messages": 6,
            "batch_size": 2, "expectation": "parity",
        }
        assert replay_entry(entry) == []


class TestBatchMutations:
    def test_batch_mutators_are_registered(self):
        for name in ("batch_splice", "batch_count_lie", "batch_truncate"):
            assert name in MUTATIONS

    def test_batch_count_lie_produces_a_batch_frame_with_a_lying_count(self):
        rng = random.Random(0)
        out = batch_count_lie(b"some-wire-message-bytes", rng)
        assert is_batch(out)
        count = int.from_bytes(out[8:12], "big")
        assert count * 4 > len(out) - BATCH_HEADER_SIZE

    def test_batch_truncate_produces_short_frames(self):
        rng = random.Random(1)
        wire = b"a-valid-message" * 3
        for _ in range(20):
            assert len(batch_truncate(wire, rng)) < len(wire) * 2 + 64

    def test_mutation_oracle_survives_the_batch_mutators(self):
        summary = run_check(seed=7, budget=120, only="mutation")
        assert summary["ok"], summary["findings"]
        assert summary["mutations_applied"] > 0
