"""End-to-end harness tests: the seed-0 smoke run, the CLI contract, and
the acceptance regression — a length field pointing past the payload end
must raise DecodeError on *both* decode paths."""

import json
import struct
import subprocess
import sys

import pytest

from repro.check.runner import CheckRunner, run_check
from repro.errors import DecodeError
from repro.pbio import codegen
from repro.pbio.buffer import HEADER_SIZE
from repro.pbio.decode import decode_record
from repro.pbio.encode import encode_record
from repro.pbio.field import ArraySpec, IOField
from repro.pbio.format import IOFormat


class TestSmokeRun:
    def test_seed0_small_budget_is_clean(self):
        summary = run_check(seed=0, budget=60)
        assert summary["ok"] is True
        assert summary["finding_count"] == 0
        assert summary["cases_total"] > 0
        assert summary["mutations_applied"] > 0
        assert set(summary["cases"]) == {
            "roundtrip", "mutation", "ecode", "fusion", "morph",
            "reliability", "batching", "projection", "crash",
        }

    def test_runs_are_seed_deterministic(self):
        a = CheckRunner(seed=3, budget=40).run()
        b = CheckRunner(seed=3, budget=40).run()
        assert a == b

    def test_summary_is_json_serializable(self):
        summary = CheckRunner(seed=1, budget=20).run()
        parsed = json.loads(json.dumps(summary))
        assert parsed["seed"] == 1


class TestCLI:
    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.check", "--seed", "0",
             "--budget", "30"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["ok"] is True
        assert summary["seed"] == 0


@pytest.fixture
def telemetry_fmt():
    return IOFormat("Telemetry", [
        IOField("n", "integer", 4),
        IOField("samples", "unsigned", 8, array=ArraySpec(length_field="n")),
    ], version="1.0")


class TestLengthFieldPastPayloadEnd:
    """The acceptance-criterion regression: corrupt a count/length field
    to point far past the payload end; both decode paths must reject with
    DecodeError — not over-allocate, not over-read, not leak raw errors."""

    def hostile_count_wire(self, fmt, count):
        wire = bytearray(encode_record(fmt, {"n": 2, "samples": [7, 9]}))
        struct.pack_into("<i", wire, HEADER_SIZE, count)
        return bytes(wire)

    @pytest.mark.parametrize("count", [3, 1000, 2**28, 2**31 - 1])
    def test_array_count_past_end_rejected_by_generic(self, telemetry_fmt, count):
        wire = self.hostile_count_wire(telemetry_fmt, count)
        with pytest.raises(DecodeError):
            decode_record(telemetry_fmt, wire)

    @pytest.mark.parametrize("count", [3, 1000, 2**28, 2**31 - 1])
    def test_array_count_past_end_rejected_by_specialized(self, telemetry_fmt, count):
        wire = self.hostile_count_wire(telemetry_fmt, count)
        with pytest.raises(DecodeError):
            codegen.make_decoder(telemetry_fmt)(wire)

    def test_string_length_past_end_rejected_on_both_paths(self):
        fmt = IOFormat("Named", [IOField("name", "string")], version="1.0")
        wire = bytearray(encode_record(fmt, {"name": "abc"}))
        struct.pack_into("<I", wire, HEADER_SIZE, 2**31 - 1)
        wire = bytes(wire)
        with pytest.raises(DecodeError):
            decode_record(fmt, wire)
        with pytest.raises(DecodeError):
            codegen.make_decoder(fmt)(wire)

    def test_zero_size_element_count_is_capped(self):
        # An element that occupies zero wire bytes gives no byte budget to
        # check against; the decoder must still bound the count.
        sub = IOFormat("Empty", [
            IOField("pad", "unsigned", 1, array=ArraySpec(fixed_length=0)),
        ])
        fmt = IOFormat("Caps", [
            IOField("n", "integer", 4),
            IOField("items", "complex", subformat=sub,
                    array=ArraySpec(length_field="n")),
        ])
        wire = bytearray(encode_record(fmt, {"n": 0, "items": []}))
        struct.pack_into("<i", wire, HEADER_SIZE, 2**30)
        wire = bytes(wire)
        with pytest.raises(DecodeError):
            decode_record(fmt, wire)
        with pytest.raises(DecodeError):
            codegen.make_decoder(fmt)(wire)
