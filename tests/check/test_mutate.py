"""repro.check.mutate: mutations corrupt without crashing the harness."""

import random

import pytest

from repro.check import gen
from repro.check.mutate import MUTATIONS, mutate
from repro.check.oracles import check_wire_hostility
from repro.pbio.buffer import FLAG_BIG_ENDIAN, HEADER_SIZE
from repro.pbio.encode import encode_record


def sample_wire(seed=5):
    rng = random.Random(seed)
    fmt = gen.random_format(rng)
    rec = gen.random_record(rng, fmt)
    return fmt, encode_record(fmt, rec)


class TestMutationMechanics:
    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_every_mutation_returns_bytes(self, name):
        _fmt, wire = sample_wire()
        out = MUTATIONS[name](wire, random.Random(1))
        assert isinstance(out, bytes)

    def test_bit_flip_changes_exactly_one_bit(self):
        _fmt, wire = sample_wire()
        out = MUTATIONS["bit_flip"](wire, random.Random(2))
        diff = [a ^ b for a, b in zip(wire, out)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_truncate_shortens(self):
        _fmt, wire = sample_wire()
        assert len(MUTATIONS["truncate"](wire, random.Random(3))) < len(wire)

    def test_extend_lengthens(self):
        _fmt, wire = sample_wire()
        assert len(MUTATIONS["extend"](wire, random.Random(3))) > len(wire)

    def test_endian_flag_lie_flips_header_flag(self):
        _fmt, wire = sample_wire()
        out = MUTATIONS["endian_flag_lie"](wire, random.Random(4))
        assert out[5] == wire[5] ^ FLAG_BIG_ENDIAN
        assert out[:5] == wire[:5] and out[6:] == wire[6:]

    def test_mutate_dispatch_is_seed_deterministic(self):
        _fmt, wire = sample_wire()
        assert mutate(wire, random.Random(9)) == mutate(wire, random.Random(9))


class TestHostilityContract:
    """Every mutation's output must decode cleanly (success or ReproError)
    on both paths — the invariant the fuzz loop enforces at scale."""

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_mutation_outcomes_are_clean(self, name):
        rng = random.Random(17)
        for case in range(5):
            fmt, wire = sample_wire(seed=100 + case)
            corrupted = MUTATIONS[name](wire, rng)
            assert check_wire_hostility(fmt, corrupted, mutation=name) == []

    def test_header_length_lie_lands_in_header(self):
        fmt, wire = sample_wire()
        out = MUTATIONS["header_length_lie"](wire, random.Random(6))
        assert out[:HEADER_SIZE - 4] == wire[:HEADER_SIZE - 4]
        assert len(out) == len(wire)
