"""The projection differential oracle: the negotiated push-down arm and
the plain full-format arm of the same deployment must deliver identical
records (modulo the pinned widening prime), and the push-down must
actually engage — projected sends, bytes saved, receiver projection
routes — over the lossy sim fabric and the real socket transport.
"""

import random

from repro.check.oracles import check_projection, check_projection_pushdown
from repro.check.runner import BUDGET_SPLIT, replay_entry, run_check


class TestPushdownScenarios:
    def test_pushdown_is_clean_on_known_good_seeds_over_sim(self):
        for net_seed in (0, 1, 2):
            findings = check_projection_pushdown(
                net_seed, loss_rate=0.05, jitter=0.005,
                messages=5, batch_size=3, transport="sim",
            )
            assert findings == [], [f.detail for f in findings]

    def test_pushdown_is_clean_over_the_socket_transport(self):
        findings = check_projection_pushdown(
            0, loss_rate=0.0, jitter=0.0, messages=4, batch_size=2,
            transport="socket",
        )
        assert findings == [], [f.detail for f in findings]

    def test_pushdown_is_clean_on_a_lossless_fabric(self):
        findings = check_projection_pushdown(
            3, loss_rate=0.0, jitter=0.0, messages=6, batch_size=4,
        )
        assert findings == [], [f.detail for f in findings]


class TestHarnessIntegration:
    def test_projection_has_a_budget_share(self):
        assert "projection" in BUDGET_SPLIT

    def test_focus_mode_spends_the_whole_budget_on_projection(self):
        summary = run_check(seed=0, budget=80, only="projection")
        assert summary["ok"], summary["findings"]
        assert summary["cases"]["projection"] > 0
        for oracle, count in summary["cases"].items():
            if oracle != "projection":
                assert count == 0

    def test_oracle_entry_point_is_seed_deterministic(self):
        findings = check_projection(random.Random("smoke:0"))
        assert findings == [], [f.detail for f in findings]

    def test_replay_reruns_a_pushdown_scenario_from_its_params(self):
        entry = {
            "kind": "projection", "scenario": "pushdown", "net_seed": 1,
            "loss_rate": 0.05, "jitter": 0.0, "messages": 5,
            "batch_size": 2, "expectation": "parity",
        }
        assert replay_entry(entry) == []
