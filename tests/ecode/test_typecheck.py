"""Unit tests for the ECode semantic checker."""

import pytest

from repro.ecode.parser import parse
from repro.ecode.typecheck import check
from repro.errors import ECodeTypeError


def ok(source, params=("new", "old")):
    check(parse(source), params)


def bad(source, match, params=("new", "old")):
    with pytest.raises(ECodeTypeError, match=match):
        check(parse(source), params)


class TestDeclarations:
    def test_declared_before_use(self):
        ok("int x; x = 1;")

    def test_undeclared_use_rejected(self):
        bad("x = 1;", "undeclared")
        bad("int y = x;", "undeclared")

    def test_parameters_predeclared(self):
        ok("old.a = new.b;")

    def test_redeclaration_rejected(self):
        bad("int x; int x;", "redeclaration")

    def test_shadowing_rejected(self):
        bad("int x; { int x; }", "redeclaration")

    def test_sibling_blocks_may_reuse_names(self):
        # disjoint blocks may reuse a name: declarations always emit an
        # initialization, so the flattened Python translation stays sound
        ok("{ int x; x = 1; } { int x; old.a = x; }")

    def test_initializer_sees_earlier_declarators(self):
        ok("int a = 1, b = a;")

    def test_initializer_cannot_see_later_names(self):
        bad("int a = b, b = 1;", "undeclared")

    def test_for_loop_declaration(self):
        ok("for (int i = 0; i < 3; i++) { old.x = i; }")


class TestAssignmentPositions:
    def test_statement_assignment_ok(self):
        ok("int x; x = 1; x += 2;")

    def test_assignment_as_value_rejected(self):
        bad("int x; int y = (x = 1);", "statement position")

    def test_incdec_as_value_rejected(self):
        bad("int x; int y = x++;", "statement position")

    def test_chained_plain_assignment_ok(self):
        ok("int a; int b; a = b = 0;")

    def test_chained_compound_assignment_rejected(self):
        bad("int a; int b; a += b = 1;", "chained")

    def test_incdec_in_for_update_ok(self):
        ok("int i; for (i = 0; i < 3; i++) ;")

    def test_literal_not_assignable(self):
        bad("1 = 2;", "not assignable")

    def test_call_result_not_assignable(self):
        bad("abs(1) = 2;", "not assignable")

    def test_field_and_index_are_lvalues(self):
        ok("old.a = 1; old.xs[0] = 2; old.ys[0].z = 3;")

    def test_assignment_to_undeclared_identifier(self):
        bad("zz = 1;", "undeclared")


class TestLoopsAndJumps:
    def test_break_inside_loop(self):
        ok("while (1) break;")
        ok("for (;;) break;")
        ok("do break; while (1);")

    def test_break_outside_loop_rejected(self):
        bad("break;", "outside")

    def test_continue_outside_loop_rejected(self):
        bad("continue;", "outside")

    def test_continue_in_if_inside_loop(self):
        ok("int i; for (i = 0; i < 3; i++) { if (i) continue; }")

    def test_break_in_if_outside_loop_rejected(self):
        bad("if (new.a) break;", "outside")


class TestCalls:
    def test_known_builtin(self):
        ok("int x = abs(-1) + max(1, 2);")

    def test_unknown_function_rejected(self):
        bad("int x = frobnicate(1);", "unknown function")

    def test_arity_checked(self):
        bad("int x = strlen();", "argument")
        bad('int x = strcmp("a");', "argument")

    def test_string_builtins(self):
        ok('old.s = strcat("a", "b"); old.n = strlen(new.s);')


class TestSizeof:
    def test_known_types(self):
        ok("old.a = sizeof(int) + sizeof(long) + sizeof(double);")

    def test_unknown_type_rejected(self):
        # the parser requires a type keyword, so an unknown *combination*
        # exercises the checker
        bad("old.a = sizeof(char double);", "sizeof")


class TestCustomParams:
    def test_single_param(self):
        ok("return x + 1;", params=("x",))

    def test_wrong_param_name_fails(self):
        bad("return new.a;", "undeclared", params=("x",))


class TestErrorsCarryLines:
    def test_line_number_in_message(self):
        with pytest.raises(ECodeTypeError, match="line 3"):
            check(parse("int a;\nint b;\nundeclared_name = 1;"), ("new", "old"))
