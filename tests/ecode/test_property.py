"""Property test: the compiler and the interpreter are observationally
equivalent on randomly generated ECode programs.

Two fully independent implementations (Python codegen vs AST walking)
agreeing on random inputs is the strongest evidence the C-subset
semantics are implemented consistently.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecode.codegen import compile_procedure
from repro.ecode.interp import interpret_procedure
from repro.errors import ECodeRuntimeError


@st.composite
def expressions(draw, depth: int = 3) -> str:
    """A random integer-valued ECode expression (as source text)."""
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(-100, 100)))
        if choice == 1:
            return draw(st.sampled_from(["a", "b", "c"]))
        return str(draw(st.integers(0, 5)))
    kind = draw(
        st.sampled_from(
            ["binary", "binary", "binary", "unary", "ternary", "paren", "leaf"]
        )
    )
    if kind == "leaf":
        return draw(expressions(depth=0))
    if kind == "paren":
        return f"({draw(expressions(depth=depth - 1))})"
    if kind == "unary":
        op = draw(st.sampled_from(["-", "!", "~"]))
        return f"{op}({draw(expressions(depth=depth - 1))})"
    if kind == "ternary":
        c = draw(expressions(depth=depth - 1))
        t = draw(expressions(depth=depth - 1))
        f = draw(expressions(depth=depth - 1))
        return f"(({c}) ? ({t}) : ({f}))"
    op = draw(
        st.sampled_from(
            ["+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=",
             "&&", "||", "&", "|", "^"]
        )
    )
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    return f"({left} {op} {right})"


def run(procedure, a, b, c):
    try:
        return ("ok", procedure(a, b, c))
    except ECodeRuntimeError:
        return ("error", None)


@given(
    expressions(),
    st.integers(-50, 50),
    st.integers(-50, 50),
    st.integers(-50, 50),
)
@settings(max_examples=200)
def test_compiler_interpreter_equivalence_expressions(expr, a, b, c):
    source = f"return {expr};"
    params = ("a", "b", "c")
    compiled = run(compile_procedure(source, params), a, b, c)
    interpreted = run(interpret_procedure(source, params), a, b, c)
    assert compiled == interpreted


@st.composite
def loop_programs(draw) -> str:
    """A random bounded accumulation loop."""
    start = draw(st.integers(0, 3))
    stop = draw(st.integers(0, 12))
    step_op = draw(st.sampled_from(["i++", "i += 2", "i += 3"]))
    body_expr = draw(expressions(depth=2))
    guard = draw(st.sampled_from(["", "if (i % 2) continue;", "if (s > 500) break;"]))
    return (
        f"int i; int s = 0;"
        f"for (i = {start}; i < {stop}; {step_op}) {{ {guard} s += ({body_expr}); }}"
        f"return s;"
    )


@given(loop_programs(), st.integers(-20, 20), st.integers(-20, 20), st.integers(-20, 20))
@settings(max_examples=100)
def test_compiler_interpreter_equivalence_loops(source, a, b, c):
    params = ("a", "b", "c")
    compiled = run(compile_procedure(source, params), a, b, c)
    interpreted = run(interpret_procedure(source, params), a, b, c)
    assert compiled == interpreted


@st.composite
def switch_programs(draw) -> str:
    """A random switch over an expression, with shared labels and an
    optional default arm."""
    subject = draw(expressions(depth=2))
    n_cases = draw(st.integers(1, 4))
    labels = draw(
        st.lists(
            st.integers(-5, 5), min_size=n_cases, max_size=n_cases, unique=True
        )
    )
    arms = []
    for i, label in enumerate(labels):
        extra = ""
        body = draw(expressions(depth=1))
        arms.append(f"case {label}: s = {i} + ({body}); break;")
    if draw(st.booleans()):
        arms.append(f"default: s = 777; break;")
    return (
        f"int s = -1; switch ({subject}) {{ {' '.join(arms)} }} return s;"
    )


@given(
    switch_programs(),
    st.integers(-10, 10),
    st.integers(-10, 10),
    st.integers(-10, 10),
)
@settings(max_examples=100)
def test_compiler_interpreter_equivalence_switch(source, a, b, c):
    params = ("a", "b", "c")
    compiled = run(compile_procedure(source, params), a, b, c)
    interpreted = run(interpret_procedure(source, params), a, b, c)
    assert compiled == interpreted
