"""Interpreter-vs-codegen differential tests on arithmetic edge cases.

The compiled (DCG) arm and the tree-walking interpreter are two
implementations of one semantics; anywhere they disagree, the ablation
benchmarks compare apples to oranges and the morph layer's behavior
depends on a configuration knob.  These tests pin the edges where C and
Python semantics pull apart: division/modulo sign rules, narrow-type
assignments, short-circuit evaluation, and error wrapping.
"""

import pytest

from repro.ecode import compile_procedure, interpret_procedure
from repro.errors import ECodeError, ECodeRuntimeError
from repro.pbio.record import Record


def both(source, *args, params=("new", "old")):
    """Run *source* through both arms with fresh copies of *args*;
    returns ``(compiled_result, interpreted_result)``."""
    import copy

    compiled = compile_procedure(source, params=params)
    interp = interpret_procedure(source, params=params)
    return (
        compiled(*copy.deepcopy(args)),
        interp(*copy.deepcopy(args)),
    )


def run_nullary(source):
    result_c, result_i = both(source, params=())
    assert result_c == result_i, (
        f"compiled={result_c!r} interpreted={result_i!r} for:\n{source}"
    )
    return result_c


class TestDivModSigns:
    """C truncates division toward zero; the remainder takes the
    dividend's sign.  Python floors.  Both arms must pick C."""

    @pytest.mark.parametrize("a,b,quotient,remainder", [
        (7, 2, 3, 1),
        (-7, 2, -3, -1),
        (7, -2, -3, 1),
        (-7, -2, 3, -1),
        (1, 3, 0, 1),
        (-1, 3, 0, -1),
        (6, 3, 2, 0),
        (-6, 3, -2, 0),
    ])
    def test_div_mod_pairs(self, a, b, quotient, remainder):
        assert run_nullary(f"return ({a}) / ({b});") == quotient
        assert run_nullary(f"return ({a}) % ({b});") == remainder

    def test_division_identity_holds(self):
        # (a/b)*b + a%b == a — the C guarantee, checked through both arms.
        for a in (-9, -1, 0, 1, 9):
            for b in (-4, -1, 1, 4):
                got = run_nullary(f"return (({a})/({b}))*({b}) + ({a})%({b});")
                assert got == a

    def test_integer_division_by_zero_raises_in_both(self):
        for factory in (compile_procedure, interpret_procedure):
            proc = factory("return 1 / 0;", params=())
            with pytest.raises(ECodeError):
                proc()
            proc = factory("return 1 % 0;", params=())
            with pytest.raises(ECodeError):
                proc()


class TestNarrowAssignments:
    """Narrow-typed declarations: whatever width semantics the language
    implements, the two arms must implement the *same* one."""

    @pytest.mark.parametrize("decl,value", [
        ("char", 300),
        ("short", 70000),
        ("int", 2**35),
        ("long", 2**70),
    ])
    def test_narrow_assignment_agrees(self, decl, value):
        run_nullary(f"{decl} x;\nx = {value};\nreturn x;")

    def test_compound_assignment_agrees(self):
        run_nullary("short x;\nx = 32767;\nx += 1;\nreturn x;")
        run_nullary("char c;\nc = 127;\nc *= 3;\nreturn c;")


class TestShortCircuit:
    def test_and_skips_rhs(self):
        # If && evaluated its RHS eagerly, the divide-by-zero would raise.
        assert run_nullary("return 0 && (1 / 0);") == 0

    def test_or_skips_rhs(self):
        assert run_nullary("return 1 || (1 / 0);") == 1

    def test_results_are_c_booleans(self):
        assert run_nullary("return 5 && 7;") == 1
        assert run_nullary("return 0 || 9;") == 1
        assert run_nullary("return !3;") == 0
        assert run_nullary("return !0;") == 1

    def test_guarded_division_pattern(self):
        # The idiomatic C guard: divide only when the divisor is nonzero.
        source = "return (new.d != 0) && ((new.n / new.d) > 1);"
        for divisor, expected in ((0, 0), (2, 1), (100, 0)):
            rec = Record({"n": 10, "d": divisor})
            compiled = compile_procedure(source, params=("new",))
            interp = interpret_procedure(source, params=("new",))
            assert compiled(Record(rec)) == interp(Record(rec)) == expected


class TestErrorWrapping:
    """Hostile operands must raise ECodeError from both arms — never a
    bare ValueError/TypeError leaking implementation details."""

    def test_negative_shift_raises_cleanly_in_both(self):
        source = "int n;\nn = 0 - 3;\nreturn 1 << n;"
        for factory in (compile_procedure, interpret_procedure):
            proc = factory(source, params=())
            with pytest.raises(ECodeError):
                proc()

    def test_string_minus_int_raises_cleanly_in_both(self):
        source = "return new.s - 1;"
        for factory in (compile_procedure, interpret_procedure):
            proc = factory(source, params=("new",))
            with pytest.raises(ECodeError):
                proc(Record({"s": "oops"}))

    def test_unary_minus_on_string_raises_cleanly_in_both(self):
        source = "return -new.s;"
        for factory in (compile_procedure, interpret_procedure):
            proc = factory(source, params=("new",))
            with pytest.raises(ECodeRuntimeError):
                proc(Record({"s": "oops"}))

    def test_missing_field_raises_cleanly_in_both(self):
        source = "return new.nope;"
        for factory in (compile_procedure, interpret_procedure):
            proc = factory(source, params=("new",))
            with pytest.raises(ECodeError):
                proc(Record({"s": 1}))


class TestTernaryAndPrecedence:
    def test_ternary_agrees(self):
        assert run_nullary("return 3 > 2 ? 10 : 20;") == 10
        assert run_nullary("return 0 ? (1/0) : 4;") == 4

    def test_bitwise_vs_comparison_precedence(self):
        run_nullary("return 1 & 3 == 3;")   # C parses as 1 & (3 == 3)
        run_nullary("return 2 | 1 ^ 1;")
        run_nullary("return 1 << 3 >> 1;")

    def test_mixed_sign_shifts(self):
        run_nullary("return (0 - 8) >> 1;")  # arithmetic shift of negative
        run_nullary("return (0 - 8) << 2;")
