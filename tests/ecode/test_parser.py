"""Unit tests for the ECode parser (AST shapes and syntax errors)."""

import pytest

from repro.ecode import ast
from repro.ecode.parser import parse, parse_expression
from repro.errors import ECodeSyntaxError


class TestExpressions:
    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expression("10 - 4 - 3")
        assert expr.op == "-"
        assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "-"
        assert expr.right.value == 3

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_comparison_and_logic_levels(self):
        expr = parse_expression("a < b && c == d || e")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_unary_chain(self):
        expr = parse_expression("!-x")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "!"
        assert isinstance(expr.operand, ast.UnaryOp) and expr.operand.op == "-"

    def test_ternary(self):
        expr = parse_expression("a ? b : c ? d : e")
        assert isinstance(expr, ast.TernaryOp)
        assert isinstance(expr.if_false, ast.TernaryOp)  # right associative

    def test_field_and_index_postfix(self):
        expr = parse_expression("new.member_list[i].info")
        assert isinstance(expr, ast.FieldAccess) and expr.name == "info"
        assert isinstance(expr.base, ast.IndexAccess)
        assert isinstance(expr.base.base, ast.FieldAccess)

    def test_arrow_normalized_to_field_access(self):
        dot = parse_expression("p.x")
        arrow = parse_expression("p->x")
        assert isinstance(arrow, ast.FieldAccess)
        assert arrow.name == dot.name == "x"

    def test_call_with_args(self):
        expr = parse_expression("max(a, b + 1)")
        assert isinstance(expr, ast.Call)
        assert expr.name == "max"
        assert len(expr.args) == 2

    def test_sizeof(self):
        expr = parse_expression("sizeof(unsigned long)")
        assert isinstance(expr, ast.SizeOf)
        assert expr.type_name == "unsigned long"

    def test_postfix_incdec(self):
        expr = parse_expression("i++")
        assert isinstance(expr, ast.IncDec) and not expr.prefix

    def test_prefix_incdec(self):
        expr = parse_expression("--i")
        assert isinstance(expr, ast.IncDec) and expr.prefix and expr.op == "--"

    def test_assignment_is_right_associative(self):
        expr = parse_expression("a = b = 1")
        assert isinstance(expr, ast.Assignment)
        assert isinstance(expr.value, ast.Assignment)

    def test_hex_literal_value(self):
        assert parse_expression("0xFF").value == 255

    def test_trailing_input_rejected(self):
        with pytest.raises(ECodeSyntaxError, match="trailing"):
            parse_expression("a b")


class TestStatements:
    def test_declaration_multiple_declarators(self):
        program = parse("int i, count = 0, j = i;")
        decl = program.body[0]
        assert isinstance(decl, ast.Declaration)
        assert [d.name for d in decl.declarators] == ["i", "count", "j"]
        assert decl.declarators[0].init is None
        assert decl.declarators[1].init.value == 0

    def test_pointer_declarator_accepted(self):
        decl = parse("char *name;").body[0]
        assert decl.declarators[0].name == "name"

    def test_struct_declaration(self):
        decl = parse("struct Foo x;").body[0]
        assert decl.type_name == "struct Foo"

    def test_if_else(self):
        stmt = parse("if (a) b = 1; else { b = 2; }").body[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_branch, ast.Block)

    def test_dangling_else_binds_inner(self):
        stmt = parse("if (a) if (b) x = 1; else x = 2;").body[0]
        assert stmt.else_branch is None
        assert stmt.then_branch.else_branch is not None

    def test_while_and_do_while(self):
        program = parse("while (a) x = 1; do x = 2; while (b);")
        assert isinstance(program.body[0], ast.While)
        assert isinstance(program.body[1], ast.DoWhile)

    def test_for_full(self):
        stmt = parse("for (i = 0; i < 10; i++) x = i;").body[0]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, list)
        assert stmt.condition is not None
        assert len(stmt.update) == 1

    def test_for_with_declaration_init(self):
        stmt = parse("for (int i = 0; i < 3; i++) ;").body[0]
        assert isinstance(stmt.init, ast.Declaration)

    def test_for_empty_clauses(self):
        stmt = parse("for (;;) break;").body[0]
        assert stmt.init is None and stmt.condition is None and stmt.update == []

    def test_for_comma_updates(self):
        stmt = parse("for (i = 0, j = 9; i < j; i++, j--) ;").body[0]
        assert len(stmt.init) == 2
        assert len(stmt.update) == 2

    def test_return_forms(self):
        program = parse("return; return 1 + 2;")
        assert program.body[0].value is None
        assert program.body[1].value.op == "+"

    def test_break_continue(self):
        program = parse("while (1) { break; continue; }")
        body = program.body[0].body.statements
        assert isinstance(body[0], ast.Break)
        assert isinstance(body[1], ast.Continue)

    def test_empty_statement(self):
        assert parse(";").body[0].statements == []

    def test_nested_blocks(self):
        program = parse("{ { int x = 1; } }")
        outer = program.body[0]
        assert isinstance(outer.statements[0], ast.Block)


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "int ;",
            "if a) x = 1;",
            "if (a x = 1;",
            "for (i = 0; i < 1) x = 1;",
            "while () x = 1;",
            "x = ;",
            "a = 1",  # missing semicolon
            "{ x = 1;",  # unterminated block
            "do x = 1; while (a)",  # missing semicolon
            "sizeof(banana)",
        ],
    )
    def test_malformed_sources(self, source):
        with pytest.raises(ECodeSyntaxError):
            parse(source)

    def test_error_mentions_expectation(self):
        with pytest.raises(ECodeSyntaxError, match="expected"):
            parse("if (a x = 1;")
