"""Unit tests for the ECode lexer."""

import pytest

from repro.ecode.lexer import Token, TokenType, tokenize
from repro.errors import ECodeSyntaxError


def kinds(source):
    return [(t.type, t.value) for t in tokenize(source) if t.type is not TokenType.EOF]


class TestBasics:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_identifiers_and_keywords(self):
        assert kinds("int foo _bar2") == [
            (TokenType.KEYWORD, "int"),
            (TokenType.IDENT, "foo"),
            (TokenType.IDENT, "_bar2"),
        ]

    def test_all_c_keywords_recognized(self):
        for word in ("if", "else", "for", "while", "do", "return", "break",
                     "continue", "sizeof", "struct", "unsigned", "double"):
            assert kinds(word)[0][0] is TokenType.KEYWORD


class TestNumbers:
    def test_integers(self):
        assert kinds("0 42 123456")[0] == (TokenType.INT, "0")
        assert kinds("42")[0] == (TokenType.INT, "42")

    def test_hex(self):
        assert kinds("0xFF")[0] == (TokenType.INT, "0xFF")
        assert kinds("0x1a2B")[0] == (TokenType.INT, "0x1a2B")

    def test_floats(self):
        assert kinds("3.25")[0] == (TokenType.FLOAT, "3.25")
        assert kinds(".5")[0] == (TokenType.FLOAT, ".5")
        assert kinds("1e10")[0] == (TokenType.FLOAT, "1e10")
        assert kinds("2.5e-3")[0] == (TokenType.FLOAT, "2.5e-3")

    def test_suffixes_dropped(self):
        assert kinds("10L")[0] == (TokenType.INT, "10")
        assert kinds("10UL")[0] == (TokenType.INT, "10")
        assert kinds("1.5f")[0] == (TokenType.FLOAT, "1.5")

    def test_float_suffix_on_integer_literal(self):
        # 10f is a float in C (with f suffix)
        assert kinds("10f")[0] == (TokenType.FLOAT, "10")

    def test_member_access_not_a_float(self):
        assert kinds("a.b") == [
            (TokenType.IDENT, "a"),
            (TokenType.OP, "."),
            (TokenType.IDENT, "b"),
        ]


class TestStringsAndChars:
    def test_string_literal(self):
        assert kinds('"hello"')[0] == (TokenType.STRING, "hello")

    def test_escapes(self):
        assert kinds(r'"a\nb\t\\"')[0] == (TokenType.STRING, "a\nb\t\\")

    def test_char_literal(self):
        assert kinds("'x'")[0] == (TokenType.CHAR, "x")
        assert kinds(r"'\n'")[0] == (TokenType.CHAR, "\n")
        assert kinds(r"'\0'")[0] == (TokenType.CHAR, "\x00")

    def test_unterminated_string(self):
        with pytest.raises(ECodeSyntaxError, match="unterminated string"):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(ECodeSyntaxError, match="newline"):
            tokenize('"ab\ncd"')

    def test_unterminated_char(self):
        with pytest.raises(ECodeSyntaxError, match="unterminated char"):
            tokenize("'ab'")

    def test_unknown_escape(self):
        with pytest.raises(ECodeSyntaxError, match="escape"):
            tokenize(r'"\z"')


class TestOperators:
    def test_maximal_munch(self):
        assert [v for _t, v in kinds("a<<=b")] == ["a", "<<=", "b"]
        assert [v for _t, v in kinds("a<=b")] == ["a", "<=", "b"]
        assert [v for _t, v in kinds("i++ + ++j")] == ["i", "++", "+", "++", "j"]

    def test_arrow(self):
        assert [v for _t, v in kinds("p->x")] == ["p", "->", "x"]

    def test_all_compound_assignments(self):
        for op in ("+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="):
            assert kinds(f"a {op} b")[1] == (TokenType.OP, op)

    def test_unexpected_character(self):
        with pytest.raises(ECodeSyntaxError, match="unexpected character"):
            tokenize("a ` b")


class TestComments:
    def test_line_comment(self):
        assert [v for _t, v in kinds("a // comment\nb")] == ["a", "b"]

    def test_block_comment(self):
        assert [v for _t, v in kinds("a /* x\ny */ b")] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ECodeSyntaxError, match="unterminated block"):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  bb\n c")
        a, bb, c = tokens[:3]
        assert (a.line, a.column) == (1, 1)
        assert (bb.line, bb.column) == (2, 3)
        assert (c.line, c.column) == (3, 2)

    def test_error_carries_position(self):
        try:
            tokenize("x\n  `")
        except ECodeSyntaxError as exc:
            assert exc.line == 2
            assert exc.column == 3
        else:  # pragma: no cover
            pytest.fail("expected ECodeSyntaxError")
