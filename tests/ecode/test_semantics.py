"""C-semantics tests executed through BOTH implementations.

Every case runs through the compiler (generated Python) and the
interpreter and must agree with the expected C result — two independent
implementations agreeing on a third-party expectation."""

import pytest

from repro.ecode.codegen import compile_procedure
from repro.ecode.interp import interpret_procedure
from repro.ecode.runtime import AutoList
from repro.errors import ECodeRuntimeError
from repro.pbio.record import Record


def run_both(source, *args, params=("new", "old")):
    compiled = compile_procedure(source, params)(*args)
    interpreted = interpret_procedure(source, params)(*args)
    assert compiled == interpreted, (
        f"compiler/interpreter disagree: {compiled!r} != {interpreted!r}"
    )
    return compiled


CASES = [
    # integer division truncates toward zero (C99)
    ("return 7 / 2;", 3),
    ("return -7 / 2;", -3),
    ("return 7 / -2;", -3),
    ("return -7 / -2;", 3),
    # remainder takes the dividend's sign
    ("return 7 % 3;", 1),
    ("return -7 % 3;", -1),
    ("return 7 % -3;", 1),
    # float division
    ("return 7.0 / 2;", 3.5),
    ("return 1 / 4.0;", 0.25),
    # logical operators yield 0/1
    ("return 5 && 3;", 1),
    ("return 5 && 0;", 0),
    ("return 0 || 0;", 0),
    ("return 0 || 9;", 1),
    ("return !0;", 1),
    ("return !42;", 0),
    # comparisons
    ("return (1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 5) + (5 == 5) + (6 != 6);", 3),
    # bitwise
    ("return 12 & 10;", 8),
    ("return 12 | 10;", 14),
    ("return 12 ^ 10;", 6),
    ("return ~0;", -1),
    ("return 1 << 4;", 16),
    ("return 256 >> 3;", 32),
    # precedence / associativity
    ("return 2 + 3 * 4;", 14),
    ("return (2 + 3) * 4;", 20),
    ("return 20 - 5 - 3;", 12),
    ("return 100 / 10 / 2;", 5),
    # ternary
    ("return 1 ? 10 : 20;", 10),
    ("return 0 ? 10 : 20;", 20),
    ("return 0 ? 1 : 0 ? 2 : 3;", 3),
    # unary
    ("return -(-5);", 5),
    ("return +7;", 7),
    # compound assignment
    ("int a = 10; a += 5; a -= 3; a *= 2; return a;", 24),
    ("int a = 17; a /= 5; return a;", 3),
    ("int a = -17; a /= 5; return a;", -3),
    ("int a = 17; a %= 5; return a;", 2),
    ("int a = 3; a <<= 2; return a;", 12),
    ("int a = 12; a >>= 2; return a;", 3),
    ("int a = 12; a &= 10; return a;", 8),
    ("int a = 12; a |= 3; return a;", 15),
    ("int a = 12; a ^= 10; return a;", 6),
    # inc/dec statements
    ("int a = 5; a++; ++a; a--; return a;", 6),
    # chained assignment
    ("int a; int b; int c; a = b = c = 7; return a + b + c;", 21),
    # while
    ("int i = 0; int s = 0; while (i < 5) { s += i; i++; } return s;", 10),
    # do-while runs at least once
    ("int i = 10; int n = 0; do { n++; i++; } while (i < 5); return n;", 1),
    # for with continue: continue still runs the update (C semantics)
    ("int i; int s = 0; for (i = 0; i < 10; i++) { if (i % 2) continue; s += i; } return s;", 20),
    # break skips the update
    ("int i; for (i = 0; i < 10; i++) { if (i == 3) break; } return i;", 3),
    # continue in do-while re-tests the condition (no infinite loop)
    ("int i = 0; int s = 0; do { i++; if (i == 2) continue; s += i; } while (i < 4); return s;", 8),
    # nested loops: continue binds to the inner loop
    (
        "int i; int j; int s = 0;"
        "for (i = 0; i < 3; i++) { for (j = 0; j < 3; j++) {"
        "if (j == 1) continue; s += 10 * i + j; } } return s;",
        66,
    ),
    # break binds to the inner loop
    (
        "int i; int j; int n = 0;"
        "for (i = 0; i < 3; i++) { for (j = 0; j < 10; j++) {"
        "if (j == 2) break; n++; } } return n;",
        6,
    ),
    # uninitialized locals default to their type's zero
    ("int a; return a;", 0),
    ("double d; return d;", 0.0),
    ("char c; return strlen(c);", 0),
    # sizeof
    ("return sizeof(char) + sizeof(short) + sizeof(int) + sizeof(long);", 15),
    ("return sizeof(float) + sizeof(double);", 12),
    # builtins
    ("return abs(-9) + fabs(-1.5);", 10.5),
    ("return min(3, 7) + max(3, 7);", 10),
    ("return floor(3.9) + ceil(3.1);", 7),
    ('return atoi("42") + 1;', 43),
    ('return atof("2.5") * 2;', 5.0),
    ('return strlen("hello");', 5),
    ('return strcmp("abc", "abd");', -1),
    ('return strcmp("same", "same");', 0),
    ("return sqrt(16.0);", 4.0),
    # string concat and comparison of char values
    ('return strcat("foo", "bar");', "foobar"),
    # char literals compare with string data
    ("char c = 'x'; if (c == 'x') { return 1; } return 0;", 1),
    # empty for body
    ("int i; for (i = 0; i < 3; i++) ; return i;", 3),
    # comma in for-init and update
    ("int i; int j; int s = 0; for (i = 0, j = 10; i < j; i++, j--) s++; return s;", 5),
    # hex literals
    ("return 0xFF & 0x0F;", 15),
]


@pytest.mark.parametrize("source,expected", CASES, ids=range(len(CASES)))
def test_c_semantics(source, expected):
    result = run_both(source, None, None)
    assert result == expected
    assert type(result) is type(expected) or isinstance(expected, float)


class TestRecordInteraction:
    def test_figure5_transform_shape(self):
        source = """
        int i;
        old.total = 0;
        for (i = 0; i < new.count; i++) {
            old.doubled[i] = new.values[i] * 2;
            old.total += new.values[i];
        }
        old.count = new.count;
        """
        def fresh():
            return Record(total=0, count=0, doubled=AutoList(lambda: 0))

        new = Record(count=3, values=[1, 2, 3])
        out_compiled, out_interp = fresh(), fresh()
        compile_procedure(source)(new, out_compiled)
        interpret_procedure(source)(new, out_interp)
        assert out_compiled == out_interp
        assert out_compiled == {"total": 6, "count": 3, "doubled": [2, 4, 6]}

    def test_input_record_unmodified_unless_written(self):
        source = "old.x = new.x + 1;"
        new = Record(x=1)
        old = Record(x=0)
        run = compile_procedure(source)
        run(new, old)
        assert new == {"x": 1}
        assert old == {"x": 2}

    def test_nested_field_paths(self):
        source = "old.a.b.c = new.p.q + 1;"
        new = Record(p={"q": 41})
        old = Record(a={"b": {"c": 0}})
        compile_procedure(source)(new, old)
        assert old.a.b.c == 42


class TestRuntimeErrors:
    def test_integer_division_by_zero(self):
        with pytest.raises(ECodeRuntimeError, match="division by zero"):
            compile_procedure("return 1 / 0;")(None, None)
        with pytest.raises(ECodeRuntimeError, match="division by zero"):
            interpret_procedure("return 1 / 0;")(None, None)

    def test_modulo_by_zero(self):
        with pytest.raises(ECodeRuntimeError, match="zero"):
            compile_procedure("return 1 % 0;")(None, None)

    def test_missing_field_read(self):
        with pytest.raises(ECodeRuntimeError):
            compile_procedure("return new.nothing;")(Record(), Record())
        with pytest.raises(ECodeRuntimeError):
            interpret_procedure("return new.nothing;")(Record(), Record())

    def test_wrong_arity_call(self):
        proc = compile_procedure("return 1;")
        with pytest.raises(ECodeRuntimeError, match="argument"):
            proc(1)

    def test_index_out_of_range_on_plain_list(self):
        source = "return new.xs[5];"
        with pytest.raises(ECodeRuntimeError):
            compile_procedure(source)(Record(xs=[1]), Record())


class TestLocalArrays:
    def test_histogram_with_local_array(self):
        source = """
        int counts[4];
        int i;
        old.zeros = 0;
        for (i = 0; i < new.count; i++) {
            counts[new.values[i] % 4] += 1;
        }
        for (i = 0; i < 4; i++) {
            old.bins[i] = counts[i];
        }
        """
        from repro.ecode.runtime import AutoList

        new = Record(count=5, values=[0, 1, 1, 2, 5])
        outs = []
        for factory in (compile_procedure, interpret_procedure):
            old = Record(zeros=0, bins=AutoList(lambda: 0))
            factory(source)(new, old)
            outs.append(old)
        assert outs[0] == outs[1]
        assert outs[0]["bins"] == [1, 3, 1, 0]

    def test_char_array_defaults(self):
        assert run_both("char names[3]; return strlen(names[2]);", None, None) == 0

    def test_double_array_defaults(self):
        assert run_both("double xs[2]; return xs[0] + xs[1];", None, None) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ECodeRuntimeError):
            compile_procedure("int xs[2]; return xs[5];")(None, None)

    def test_zero_length_array(self):
        assert run_both("int xs[0]; return 1;", None, None) == 1

    def test_array_initializer_rejected(self):
        from repro.errors import ECodeSyntaxError

        with pytest.raises(ECodeSyntaxError, match="initializer"):
            compile_procedure("int xs[2] = 0;")

    def test_non_constant_size_rejected(self):
        from repro.errors import ECodeSyntaxError

        with pytest.raises(ECodeSyntaxError):
            compile_procedure("int xs[n];", ("n",))
