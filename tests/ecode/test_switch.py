"""Tests for the ECode switch statement (no-fallthrough subset)."""

import pytest

from repro.ecode.codegen import compile_procedure
from repro.ecode.interp import interpret_procedure
from repro.ecode.parser import parse
from repro.ecode import ast
from repro.errors import ECodeSyntaxError, ECodeTypeError


def run_both(source, *args, params=("a", "b")):
    compiled = compile_procedure(source, params)(*args)
    interpreted = interpret_procedure(source, params)(*args)
    assert compiled == interpreted
    return compiled


SWITCH_PROGRAM = """
int out = 0;
switch (a) {
    case 0:
        out = 100;
        break;
    case 1:
    case 2:
        out = 200;
        break;
    case -3:
        out = 300;
        break;
    default:
        out = 999;
        break;
}
return out;
"""


class TestSemantics:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 100), (1, 200), (2, 200), (-3, 300), (7, 999), (100, 999)],
    )
    def test_dispatch(self, value, expected):
        assert run_both(SWITCH_PROGRAM, value, None) == expected

    def test_no_default_no_match_is_noop(self):
        source = """
        int out = 5;
        switch (a) { case 1: out = 1; break; }
        return out;
        """
        assert run_both(source, 9, None) == 5
        assert run_both(source, 1, None) == 1

    def test_return_terminates_case(self):
        source = """
        switch (a) {
            case 1: return 10;
            default: return 20;
        }
        """
        assert run_both(source, 1, None) == 10
        assert run_both(source, 2, None) == 20

    def test_char_labels(self):
        source = """
        switch (a) {
            case 'x': return 1;
            case 'y': return 2;
            default: return 0;
        }
        """
        assert run_both(source, "x", None) == 1
        assert run_both(source, "y", None) == 2
        assert run_both(source, "z", None) == 0

    def test_switch_inside_loop_continue_targets_loop(self):
        source = """
        int i;
        int s = 0;
        for (i = 0; i < 6; i++) {
            switch (i % 3) {
                case 0:
                    s += 100;
                    break;
                case 1:
                    break;
                default:
                    s += 1;
                    break;
            }
        }
        return s;
        """
        # i = 0,3 -> +100 each; i = 2,5 -> +1 each
        assert run_both(source, None, None) == 202

    def test_loop_break_inside_case_body_loop(self):
        source = """
        int s = 0;
        switch (a) {
            case 1: {
                int i;
                for (i = 0; i < 10; i++) {
                    if (i == 3) break;
                    s += 1;
                }
                break;
            }
            default:
                break;
        }
        return s;
        """
        assert run_both(source, 1, None) == 3

    def test_empty_case_body_is_noop(self):
        source = """
        int out = 7;
        switch (a) { case 1: case 2: }
        return out;
        """
        assert run_both(source, 1, None) == 7

    def test_default_only(self):
        source = "switch (a) { default: return 42; }"
        assert run_both(source, 0, None) == 42

    def test_nested_switch(self):
        source = """
        switch (a) {
            case 1:
                switch (b) {
                    case 2: return 12;
                    default: return 10;
                }
                break;
            default:
                return 0;
        }
        """
        assert run_both(source, 1, 2) == 12
        assert run_both(source, 1, 9) == 10
        assert run_both(source, 5, 2) == 0


class TestRestrictions:
    def test_fallthrough_rejected(self):
        source = """
        int out = 0;
        switch (a) {
            case 1:
                out = 1;
            case 2:
                out = 2;
                break;
        }
        """
        with pytest.raises(ECodeTypeError, match="fall-through"):
            compile_procedure(source, ("a", "b"))

    def test_non_constant_label_rejected(self):
        with pytest.raises(ECodeTypeError, match="constant"):
            compile_procedure(
                "switch (a) { case b: return 1; }", ("a", "b")
            )

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ECodeTypeError, match="duplicate"):
            compile_procedure(
                "switch (a) { case 1: break; case 1: break; }", ("a", "b")
            )

    def test_case_mixed_with_default_rejected(self):
        with pytest.raises(ECodeTypeError, match="mix"):
            compile_procedure(
                "switch (a) { case 1: default: return 1; }", ("a", "b")
            )

    def test_multiple_defaults_rejected(self):
        with pytest.raises(ECodeSyntaxError, match="default"):
            parse("switch (a) { default: break; default: break; }")

    def test_empty_switch_rejected(self):
        with pytest.raises(ECodeSyntaxError, match="at least one case"):
            parse("switch (a) { }")

    def test_statements_before_first_case_rejected(self):
        with pytest.raises(ECodeSyntaxError, match="case"):
            parse("switch (a) { int x; case 1: break; }")


class TestParsing:
    def test_shared_labels_parse_into_one_case(self):
        program = parse("switch (a) { case 1: case 2: break; }")
        switch = program.body[0]
        assert isinstance(switch, ast.Switch)
        assert len(switch.cases) == 1
        assert len(switch.cases[0].labels) == 2
