"""Unit + property tests for the ECode runtime helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecode.runtime import (
    AutoList,
    BUILTINS,
    c_div,
    c_mod,
    default_for_type,
    sizeof,
)
from repro.errors import ECodeRuntimeError


class TestAutoList:
    def test_read_past_end_grows(self):
        xs = AutoList(lambda: 0)
        assert xs[3] == 0
        assert len(xs) == 4

    def test_write_past_end_grows(self):
        xs = AutoList(lambda: 0)
        xs[2] = 9
        assert list(xs) == [0, 0, 9]

    def test_factory_produces_fresh_elements(self):
        xs = AutoList(lambda: {"v": 0})
        xs[0]["v"] = 1
        assert xs[1]["v"] == 0

    def test_negative_indices_keep_python_semantics(self):
        xs = AutoList(lambda: 0, [1, 2, 3])
        assert xs[-1] == 3
        xs[-1] = 9
        assert xs[2] == 9

    def test_is_a_list(self):
        xs = AutoList(lambda: 0, [1])
        assert isinstance(xs, list)
        assert xs == [1]

    def test_slice_read_does_not_grow(self):
        xs = AutoList(lambda: 0, [1, 2])
        assert xs[0:5] == [1, 2]

    def test_initial_contents(self):
        assert list(AutoList(lambda: 0, [7, 8])) == [7, 8]


class TestCDiv:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3), (6, 3, 2), (0, 5, 0)],
    )
    def test_truncation_toward_zero(self, a, b, expected):
        assert c_div(a, b) == expected

    def test_float_division(self):
        assert c_div(7.0, 2) == 3.5
        assert c_div(1, 4.0) == 0.25

    def test_zero_division(self):
        with pytest.raises(ECodeRuntimeError):
            c_div(1, 0)
        with pytest.raises(ECodeRuntimeError):
            c_div(1.0, 0.0)

    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    def test_matches_c_identity(self, a, b):
        if b == 0:
            return
        q, r = c_div(a, b), c_mod(a, b)
        assert q * b + r == a  # the C99 division identity
        assert abs(r) < abs(b)
        assert r == 0 or (r > 0) == (a > 0)  # remainder follows dividend

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**6))
    def test_truncation_property(self, a, b):
        import math

        assert c_div(a, b) == math.trunc(a / b) or abs(a) > 2**52


class TestCMod:
    @pytest.mark.parametrize(
        "a,b,expected", [(7, 3, 1), (-7, 3, -1), (7, -3, 1), (-7, -3, -1)]
    )
    def test_dividend_sign(self, a, b, expected):
        assert c_mod(a, b) == expected

    def test_float_fmod(self):
        assert c_mod(7.5, 2) == 1.5

    def test_zero_modulo(self):
        with pytest.raises(ECodeRuntimeError):
            c_mod(5, 0)


class TestBuiltins:
    def test_printf_returns_char_count(self, capsys):
        count = BUILTINS["printf"]("%d-%s\n", 42, "ok")
        assert capsys.readouterr().out == "42-ok\n"
        assert count == 6

    def test_printf_strips_length_modifiers(self, capsys):
        BUILTINS["printf"]("%ld %lu\n", 1, 2)
        assert capsys.readouterr().out == "1 2\n"

    def test_printf_bad_format(self):
        with pytest.raises(ECodeRuntimeError, match="printf"):
            BUILTINS["printf"]("%d", "not-an-int")

    def test_strcmp_sign_convention(self):
        strcmp = BUILTINS["strcmp"]
        assert strcmp("a", "b") == -1
        assert strcmp("b", "a") == 1
        assert strcmp("a", "a") == 0

    def test_atoi_atof_tolerate_blank(self):
        assert BUILTINS["atoi"]("") == 0
        assert BUILTINS["atof"]("  ") == 0.0


class TestSizeof:
    @pytest.mark.parametrize(
        "name,size",
        [("char", 1), ("short", 2), ("int", 4), ("long", 8), ("float", 4),
         ("double", 8), ("unsigned int", 4), ("long  long", 8)],
    )
    def test_known(self, name, size):
        assert sizeof(name) == size

    def test_unknown(self):
        with pytest.raises(ECodeRuntimeError):
            sizeof("banana")


class TestDefaults:
    def test_numeric_types(self):
        assert default_for_type("int") == 0
        assert default_for_type("unsigned long") == 0
        assert default_for_type("double") == 0.0
        assert default_for_type("float") == 0.0

    def test_char_defaults_to_empty_string(self):
        assert default_for_type("char") == ""
