"""Chunked handoff snapshots and hardened snapshot ingestion.

A hot shard accumulates per-channel subscriber lists and per-publisher
ledgers; shipping that as one message made snapshot size unbounded.
``begin_handoff`` now splits the snapshot into bounded-size parts at
channel granularity and the successor reassembles them, acking only
when all parts of the epoch have landed.  The ingestion side
(``SeqLedger.from_state`` and ``_install_channel_state``) turns every
structural surprise in network- or disk-derived state into a clean
:class:`~repro.errors.FabricError` rather than a ``KeyError`` or a
silently-merged bogus ledger.
"""

from __future__ import annotations

import json

import pytest

from repro.echo.protocol import RESPONSE_V0, RESPONSE_V2, register_protocol
from repro.errors import FabricError
from repro.fabric import EventFabric
from repro.fabric.hashing import shard_of
from repro.fabric.worker import SeqLedger
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.pbio.registry import FormatRegistry

from tests.fabric.test_fabric import v2_record


def make_registry():
    registry = FormatRegistry()
    register_protocol(registry, "2.0")
    return registry


def colliding_channels(count, num_shards):
    """Channel ids that all hash to one shard — a genuinely *hot* shard
    whose snapshot cannot fit one bounded part."""
    by_shard = {}
    candidate = 0
    while True:
        channel_id = f"bulk/{candidate}"
        candidate += 1
        shard = shard_of(channel_id, num_shards)
        group = by_shard.setdefault(shard, [])
        group.append(channel_id)
        if len(group) == count:
            return group


class TestChunkedHandoff:
    def test_large_shard_snapshot_travels_in_multiple_parts(self):
        """Regression: a shard with many busy channels hands off in
        bounded parts, and exactly-once still holds end to end."""
        net = Network(seed=9, default_link=LinkSpec(latency=0.001))
        fabric = EventFabric(net, registry=make_registry(), reliable=True)
        w1 = fabric.add_worker("w1", handoff_chunk_bytes=256)
        pub = fabric.client("pub")
        sub = fabric.client("sub")
        got = []
        channels = colliding_channels(6, fabric.directory.num_shards)
        for channel_id in channels:
            sub.subscribe(channel_id, RESPONSE_V0,
                          lambda c, p, s, r: got.append((c, s)))
        net.run()
        for round_no in range(3):
            for channel_id in channels:
                pub.publish(channel_id, RESPONSE_V2, v2_record(channel_id))
        net.run()
        assert len(got) == 18

        # the join forces every shard w1 loses to hand off its state
        w2 = fabric.add_worker("w2", handoff_chunk_bytes=256)
        net.run()
        assert w1.handoffs_sent > 0
        # bounded parts: with a 256-byte target and six busy channels
        # on one shard, that shard's snapshot had to split
        assert w1.handoff_parts_sent > w1.handoffs_sent
        assert w2.handoffs_received > 0

        # the migrated ledgers still dedupe and stay gapless
        for channel_id in channels:
            pub.publish(channel_id, RESPONSE_V2, v2_record(channel_id))
        net.run()
        assert len(got) == 24
        assert len(set(got)) == 24
        for channel_id in channels:
            seqs = sorted(s for c, s in got if c == channel_id)
            assert seqs == [1, 2, 3, 4]
        assert sub.duplicates == 0

    def test_default_chunk_size_keeps_small_shards_single_part(self):
        net = Network(seed=3, default_link=LinkSpec(latency=0.001))
        fabric = EventFabric(net, registry=make_registry(), reliable=True)
        w1 = fabric.add_worker("w1")
        pub = fabric.client("pub")
        sub = fabric.client("sub")
        sub.subscribe("solo/0", RESPONSE_V0, lambda c, p, s, r: None)
        net.run()
        pub.publish("solo/0", RESPONSE_V2, v2_record("solo/0"))
        net.run()
        fabric.add_worker("w2")
        net.run()
        # every snapshot fit the default target: one part per handoff
        assert w1.handoff_parts_sent == w1.handoffs_sent

    def test_chunk_state_splits_at_channel_granularity(self):
        net = Network(seed=1)
        fabric = EventFabric(net, registry=make_registry())
        worker = fabric.add_worker("w1", handoff_chunk_bytes=120)
        state = {"channels": {
            f"c/{i}": {
                "subscribers": [[f"sub-{i}", 7]],
                "ledgers": {"pub": {"high": i, "sparse": []}},
            }
            for i in range(6)
        }}
        parts = worker._chunk_state(state)
        assert len(parts) > 1
        merged = {}
        for part in parts:
            decoded = json.loads(part)
            assert set(decoded) == {"channels"}
            merged.update(decoded["channels"])
        assert merged == state["channels"]

    def test_empty_shard_yields_exactly_one_part(self):
        net = Network(seed=1)
        fabric = EventFabric(net, registry=make_registry())
        worker = fabric.add_worker("w1", handoff_chunk_bytes=64)
        parts = worker._chunk_state({"channels": {}})
        assert parts == ['{"channels": {}}']

    def test_oversized_single_channel_still_travels_whole(self):
        net = Network(seed=1)
        fabric = EventFabric(net, registry=make_registry())
        worker = fabric.add_worker("w1", handoff_chunk_bytes=32)
        state = {"channels": {"big/0": {
            "subscribers": [[f"sub-{i}", i] for i in range(20)],
            "ledgers": {},
        }}}
        parts = worker._chunk_state(state)
        assert len(parts) == 1
        assert json.loads(parts[0]) == state


class TestLedgerStateHardening:
    @pytest.mark.parametrize("state", [
        "not a dict",
        ["high", 3],
        {"high": "3"},
        {"high": True},
        {"high": -1},
        {"high": 2, "sparse": 5},
        {"high": 2, "sparse": ["4"]},
        {"high": 2, "sparse": [0]},
        {"high": 2, "sparse": [True]},
        {"high": 2, "sparse": [2]},  # sparse entry not beyond high
    ])
    def test_malformed_state_raises_fabric_error(self, state):
        with pytest.raises(FabricError):
            SeqLedger.from_state(state)

    def test_valid_state_round_trips(self):
        ledger = SeqLedger()
        for seq in (1, 2, 3, 7, 9):
            ledger.admit(seq)
        rebuilt = SeqLedger.from_state(ledger.to_state())
        assert rebuilt.to_state() == ledger.to_state()
        # duplicates of everything admitted are still rejected
        for seq in (1, 2, 3, 7, 9):
            assert not rebuilt.admit(seq)


class TestSnapshotIngestionHardening:
    def _worker(self):
        net = Network(seed=1)
        fabric = EventFabric(net, registry=make_registry())
        return fabric.add_worker("w1")

    @pytest.mark.parametrize("channels_state", [
        "nope",
        {42: {"subscribers": [], "ledgers": {}}},
        {"c/0": "nope"},
        {"c/0": {"subscribers": "nope", "ledgers": {}}},
        {"c/0": {"subscribers": [["sub", "7"]], "ledgers": {}}},
        {"c/0": {"subscribers": [["sub", True]], "ledgers": {}}},
        {"c/0": {"subscribers": [], "ledgers": "nope"}},
        {"c/0": {"subscribers": [], "ledgers": {"pub": {"high": -3}}}},
    ])
    def test_malformed_snapshot_raises_fabric_error(self, channels_state):
        worker = self._worker()
        with pytest.raises(FabricError):
            worker._install_channel_state(channels_state)

    def test_wellformed_snapshot_installs_and_merges(self):
        worker = self._worker()
        format_id = worker.registry.register(RESPONSE_V0)
        worker._install_channel_state({"c/0": {
            "subscribers": [["sub-a", format_id]],
            "ledgers": {"pub": {"high": 2, "sparse": [4]}},
        }})
        channel = worker._channels["c/0"]
        assert ["sub-a", format_id] in [
            list(s) for s in channel.subscribers()
        ]
        ledger = channel.ledgers["pub"]
        assert not ledger.admit(2)   # already admitted
        assert not ledger.admit(4)   # sparse entry preserved
        assert ledger.admit(3)       # the gap is genuinely open
