"""Crash-leave recovery — the tentpole acceptance scenarios.

A worker that SIGKILLs mid-stream never snapshots anything; the lease
checker declares it dead, a successor takes its shards under a bumped
ownership epoch, recovers exactly-once state from the shared ledger
journal (re-fanning-out the admitted-but-possibly-undelivered tail),
and publishers ride out the outage on bounded client-side buffers.

The A/B contract these tests pin: **with** journaling a mid-stream kill
loses zero admitted events and admits zero stale-epoch publishes;
**without** it (the ablation arm) the same seed demonstrably loses
events.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.echo.protocol import RESPONSE_V0, RESPONSE_V2, register_protocol
from repro.errors import FabricError
from repro.fabric import EventFabric, JournalStore
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.pbio.registry import FormatRegistry

from tests.fabric.test_fabric import v2_record


def make_registry():
    registry = FormatRegistry()
    register_protocol(registry, "2.0")
    return registry


def _noop():
    pass


class CrashDeployment:
    """Three journaled workers, one publisher, one V0 subscriber on
    four channels — the miniature the recovery tests share."""

    RELIABLE = {"base_timeout": 0.02, "max_retries": 5}

    def __init__(self, seed=7, journal=None, lease_timeout=0.6,
                 client_options=None):
        self.net = Network(
            seed=seed,
            default_link=LinkSpec(
                latency=0.002, loss_rate=0.05, jitter=0.005
            ),
        )
        self.fabric = EventFabric(
            self.net, registry=make_registry(), reliable=True,
            journal=journal, lease_timeout=lease_timeout,
        )
        self.workers = {
            address: self.fabric.add_worker(
                address, reliable_options=dict(self.RELIABLE)
            )
            for address in ("w1", "w2", "w3")
        }
        self.pub = self.fabric.client(
            "pub", reliable_options=dict(self.RELIABLE),
            **(client_options or {}),
        )
        self.sub = self.fabric.client(
            "sub", reliable_options=dict(self.RELIABLE)
        )
        self.channels = [f"crash/{i}" for i in range(4)]
        self.got = []
        for channel_id in self.channels:
            self.sub.subscribe(
                channel_id, RESPONSE_V0,
                lambda c, p, s, r: self.got.append((c, s)),
            )
        self.sent = 0
        self.pump(4)  # install subscriptions fleet-wide

    def pump(self, steps, step=0.05):
        # Heartbeats are driven here, not by recurring timers, so the
        # simulated network can still fully quiesce at the end.
        for _ in range(steps):
            for worker in self.workers.values():
                worker.heartbeat()
            self.fabric.directory.check_leases()
            self.net.call_later(step, _noop)
            self.net.run(max_time=self.net.now + step)

    def publish(self, count, only=None):
        for _ in range(count):
            channel_id = (
                only if only is not None
                else self.channels[self.sent % len(self.channels)]
            )
            self.pub.publish(
                channel_id, RESPONSE_V2, v2_record(channel_id)
            )
            self.sent += 1

    def victim(self):
        address = self.fabric.directory.owner(self.channels[0])
        return address, self.workers[address]


class TestKillRecovery:
    def test_journaled_kill_mid_stream_loses_nothing(self):
        d = CrashDeployment(journal=JournalStore())
        victim_address, victim = d.victim()
        d.publish(8)
        d.pump(2)  # partial drain: leave admitted work in flight
        d.fabric.crash_worker(victim_address)
        d.publish(8, only=d.channels[0])  # outage traffic
        d.pump(18)  # lease expiry + successor recovery + redrives
        assert victim_address not in d.fabric.directory.workers
        victim.restart()
        d.fabric.directory.join(victim)
        d.pump(10)
        d.net.run()

        # exactly-once at the sink across the crash
        assert d.sub.delivered == d.sent
        assert len(set(d.got)) == len(d.got)
        per_channel = {
            channel_id: sorted(s for c, s in d.got if c == channel_id)
            for channel_id in d.channels
        }
        for channel_id, seqs in per_channel.items():
            assert seqs == list(range(1, len(seqs) + 1)), channel_id
        # no buffered publish was abandoned
        assert d.pub.dropped == 0
        # the successor actually recovered from the journal
        fleet = d.workers.values()
        assert sum(w.recovered_shards for w in fleet) > 0

    def test_lease_expiry_bumps_epoch_and_records_death(self):
        d = CrashDeployment(journal=JournalStore())
        victim_address, _ = d.victim()
        epoch_before = d.fabric.directory.epoch
        d.fabric.crash_worker(victim_address)
        d.pump(18)
        assert victim_address not in d.fabric.directory.workers
        assert d.fabric.directory.epoch > epoch_before
        assert (d.fabric.directory.epoch, victim_address) in [
            (e, a) for e, a in d.fabric.directory.deaths
        ] or d.fabric.directory.deaths  # at least one death recorded
        assert d.fabric.directory.lease_expirations == 1
        # the moved shards' fencing floor is the takeover epoch
        for shard, owner in d.fabric.directory.assignment.items():
            assert owner != victim_address
            assert d.fabric.directory.shard_epoch(shard) <= (
                d.fabric.directory.epoch
            )

    def test_heartbeat_never_resurrects_an_expired_worker(self):
        d = CrashDeployment(journal=JournalStore())
        victim_address, victim = d.victim()
        d.fabric.crash_worker(victim_address)
        d.pump(18)
        assert victim_address not in d.fabric.directory.workers
        victim.restart()
        # a bare heartbeat is rejected: rejoin must be explicit
        assert victim.heartbeat() is False
        assert d.fabric.directory.lease_rejections >= 1
        assert victim_address not in d.fabric.directory.workers

    def test_restart_requires_a_crash(self):
        d = CrashDeployment()
        _, victim = d.victim()
        with pytest.raises(FabricError):
            victim.restart()

    def test_crash_is_idempotent_and_observable(self):
        d = CrashDeployment()
        victim_address, victim = d.victim()
        d.fabric.crash_worker(victim_address)
        assert victim.crashed
        victim.crash()  # second crash is a no-op
        assert victim.owned_shards() == []
        assert victim.heartbeat() is False


class TestAblationContrast:
    def test_same_seed_journal_vs_no_journal(self):
        """The acceptance A/B: identical schedule and seed, only the
        journal differs.  Journaled: zero loss.  Ablation: events are
        demonstrably lost (the successor restarts the shard empty)."""
        outcomes = {}
        for journaled in (True, False):
            d = CrashDeployment(
                journal=JournalStore() if journaled else None
            )
            victim_address, victim = d.victim()
            d.publish(8)
            d.pump(2)
            d.fabric.crash_worker(victim_address)
            d.publish(8, only=d.channels[0])
            d.pump(18)
            victim.restart()
            if victim_address not in d.fabric.directory.workers:
                d.fabric.directory.join(victim)
            d.pump(10)
            d.net.run()
            unique = len(set(d.got))
            outcomes[journaled] = {
                "published": d.sent,
                "unique": unique,
                "redelivered": len(d.got) - unique,
            }
        assert outcomes[True]["unique"] == outcomes[True]["published"]
        lost = (
            outcomes[False]["published"] - outcomes[False]["unique"]
        )
        assert lost > 0 or outcomes[False]["redelivered"] > 0
        # even in the ablation the fabric never invents deliveries
        assert outcomes[False]["unique"] <= outcomes[False]["published"]

    def test_recovery_bench_rows_pin_the_contract(self):
        from repro.bench.fabric import bench_fabric_recovery

        rows = bench_fabric_recovery(messages=24, crash_fractions=(0.5,))
        by_arm = {row.journaled: row for row in rows}
        assert by_arm[True].exactly_once
        assert by_arm[True].replayed > 0
        assert by_arm[False].lost > 0
        assert by_arm[True].unavailability_seconds > 0


class TestPartitionFencing:
    def test_resurrected_stale_owner_is_epoch_fenced(self):
        """The victim keeps serving but stops renewing its lease (a
        directory partition).  Once expired and superseded, traffic
        reaching the stale owner must be fenced, not admitted."""
        d = CrashDeployment(journal=JournalStore())
        victim_address, victim = d.victim()
        d.publish(8)
        d.pump(2)
        victim.heartbeats_suspended = True
        d.publish(8, only=d.channels[0])
        d.pump(18)
        assert victim_address not in d.fabric.directory.workers
        # stale route: hit the partitioned owner directly post-expiry
        d.pub._routes[d.channels[0]] = (victim_address, 0)
        d.publish(2, only=d.channels[0])
        d.pump(6)
        victim.heartbeats_suspended = False
        if victim_address not in d.fabric.directory.workers:
            d.fabric.directory.join(victim)
        d.pump(10)
        d.net.run()
        assert victim.fenced > 0
        # fencing did not cost exactly-once delivery
        assert d.sub.delivered == d.sent
        assert len(set(d.got)) == len(d.got)

    def test_journal_fences_stale_owner_appends(self):
        journal = JournalStore()
        d = CrashDeployment(journal=journal)
        victim_address, victim = d.victim()
        d.publish(8)
        d.pump(2)
        victim.heartbeats_suspended = True
        d.pump(18)
        assert victim_address not in d.fabric.directory.workers
        # the successor fenced every shard it recovered at its takeover
        # epoch, so the stale owner's epoch is now below the floor
        shards = [
            shard for shard, epoch in d.fabric.directory.shard_epochs.items()
        ]
        assert any(journal.fence_epoch(shard) > 0 for shard in shards)


class TestRecoveryObservability:
    def test_counters_cover_the_lease_and_recovery_path(self):
        registry = obs.Registry()
        obs.enable(registry=registry)
        try:
            d = CrashDeployment(journal=JournalStore())
            victim_address, victim = d.victim()
            d.publish(8)
            d.pump(2)
            d.fabric.crash_worker(victim_address)
            d.publish(4, only=d.channels[0])
            d.pump(18)
            d.net.run()
            names = {
                instrument.name
                for instrument in registry.instruments()
                if instrument.kind == "counter" and instrument.value
            }
        finally:
            obs.disable(reset=True)
        assert "fabric.lease.renewals" in names
        assert "fabric.lease.expired" in names
        assert "fabric.journal.appends" in names
        assert "fabric.recovery.shards" in names


class TestClientDegradation:
    def test_publish_buffer_is_bounded_and_drops_are_counted(self):
        d = CrashDeployment(
            journal=JournalStore(),
            client_options={"publish_buffer_limit": 2,
                            "redrive_max_attempts": 2},
        )
        victim_address, _ = d.victim()
        # take the whole fleet down so redrive can never succeed
        for address in list(d.workers):
            d.workers[address].crash()
        d.publish(12, only=d.channels[0])
        for _ in range(12):
            d.net.call_later(0.2, _noop)
            d.net.run(max_time=d.net.now + 0.2)
        assert d.pub.dropped > 0
        assert len(d.pub._publish_buffer) <= 2

    def test_buffered_publishes_drain_after_recovery(self):
        d = CrashDeployment(journal=JournalStore())
        victim_address, victim = d.victim()
        d.publish(4)
        d.pump(2)
        d.fabric.crash_worker(victim_address)
        d.publish(6, only=d.channels[0])
        assert d.pub.buffered > 0 or d.pub.published == d.sent
        d.pump(18)
        d.net.run()
        assert d.pub.redrives > 0
        assert d.pub.dropped == 0
        assert d.sub.delivered == d.sent
