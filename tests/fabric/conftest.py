"""Global-state hygiene for fabric tests that enable observability:
leave obs disabled with a pristine registry/tracer afterwards."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable(reset=True)
    yield
    obs.disable(reset=True)
