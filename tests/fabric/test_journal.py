"""JournalStore unit tests: append/recover round trips, epoch fencing,
compaction, on-disk persistence and corruption handling.

The journal is the crash-durability half of the fabric tentpole: a
worker appends every ledger admission and channel-state change *before*
fanning out, so a successor (or the restarted worker itself) can
recover exactly-once state for a crash-leave.  These tests exercise the
store in isolation; ``test_recovery.py`` drives it through a live
deployment.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalError
from repro.fabric.journal import JournalRecovery, JournalStore


def _admit(store, shard=3, epoch=2, seq=1, channel="chan/a", pub="pub"):
    store.append_admit(shard, epoch, channel, pub, seq, b"payload-%d" % seq)


class TestAppendRecover:
    def test_empty_shard_recovers_to_none(self):
        store = JournalStore()
        assert store.recover(7) is None

    def test_admissions_come_back_as_state_plus_tail(self):
        store = JournalStore()
        for seq in (1, 2, 3):
            _admit(store, seq=seq)
        recovery = store.recover(3)
        assert isinstance(recovery, JournalRecovery)
        ledgers = recovery.state["channels"]["chan/a"]["ledgers"]
        assert ledgers["pub"] == {"high": 3, "sparse": []}
        # every admission rides in the tail for re-fan-out, in order:
        # (channel_id, publisher, seq, payload)
        assert [seq for _, _, seq, _ in recovery.tail] == [1, 2, 3]
        assert [payload for _, _, _, payload in recovery.tail] == [
            b"payload-1", b"payload-2", b"payload-3",
        ]

    def test_subscribe_entries_rebuild_subscriber_lists(self):
        store = JournalStore()
        store.append_subscribe(3, 2, "chan/a", "sub-1", 1)
        _admit(store, seq=1)
        recovery = store.recover(3)
        channel = recovery.state["channels"]["chan/a"]
        assert ["sub-1", 1] in [
            list(entry) for entry in channel["subscribers"]
        ]

    def test_shards_are_independent(self):
        store = JournalStore()
        _admit(store, shard=1, seq=1)
        _admit(store, shard=2, seq=5)
        assert [e[2] for e in store.recover(1).tail] == [1]
        assert [e[2] for e in store.recover(2).tail] == [5]


class TestFencing:
    def test_fence_rejects_stale_epoch_appends(self):
        store = JournalStore()
        store.fence(3, epoch=5)
        _admit(store, epoch=4, seq=1)  # stale: silently fenced out
        _admit(store, epoch=5, seq=2)
        recovery = store.recover(3)
        assert [e[2] for e in recovery.tail] == [2]
        assert store.fenced_appends == 1

    def test_fence_is_monotonic(self):
        store = JournalStore()
        store.fence(3, epoch=5)
        store.fence(3, epoch=2)  # regression attempt: ignored
        assert store.fence_epoch(3) == 5

    def test_recover_skips_epoch_regressed_entries(self):
        store = JournalStore()
        _admit(store, epoch=4, seq=1)
        _admit(store, epoch=6, seq=2)
        _admit(store, epoch=5, seq=3)  # older epoch after a newer one
        recovery = store.recover(3)
        assert [e[2] for e in recovery.tail] == [1, 2]


class TestCompaction:
    def test_snapshot_replaces_entries_and_bounds_tail(self):
        store = JournalStore()
        for seq in (1, 2):
            _admit(store, seq=seq)
        state = store.recover(3).state
        store.snapshot(3, 2, state)
        _admit(store, seq=3)
        recovery = store.recover(3)
        # snapshot state survives; only post-snapshot admits in the tail
        assert recovery.state["channels"]["chan/a"]["ledgers"]["pub"] == {
            "high": 3, "sparse": [],
        }
        assert [e[2] for e in recovery.tail] == [3]

    def test_should_compact_trips_at_threshold(self):
        store = JournalStore(compact_every=4)
        for seq in range(1, 4):
            _admit(store, seq=seq)
            assert not store.should_compact(3)
        _admit(store, seq=4)
        assert store.should_compact(3)
        store.snapshot(3, 2, store.recover(3).state)
        assert not store.should_compact(3)


class TestPersistence:
    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "fabric.journal"
        store = JournalStore(path=str(path))
        for seq in (1, 2):
            _admit(store, seq=seq)
        store.fence(3, epoch=2)
        reloaded = JournalStore(path=str(path))
        recovery = reloaded.recover(3)
        assert [e[2] for e in recovery.tail] == [1, 2]
        assert reloaded.fence_epoch(3) == 2

    def test_corrupt_journal_raises_journal_error(self, tmp_path):
        path = tmp_path / "fabric.journal"
        path.write_text("this is not jsonl {{{\n", encoding="utf-8")
        with pytest.raises(JournalError):
            JournalStore(path=str(path))

    def test_truncated_record_raises_journal_error(self, tmp_path):
        path = tmp_path / "fabric.journal"
        store = JournalStore(path=str(path))
        _admit(store, seq=1)
        lines = path.read_text(encoding="utf-8").splitlines()
        entry = json.loads(lines[-1])
        del entry["seq"]
        path.write_text(json.dumps(entry) + "\n", encoding="utf-8")
        reloaded = JournalStore(path=str(path))
        with pytest.raises(JournalError):
            reloaded.recover(3)


class TestCounters:
    def test_store_counts_its_lifecycle(self):
        store = JournalStore(compact_every=2)
        for seq in (1, 2):
            _admit(store, seq=seq)
        store.fence(3, epoch=5)
        _admit(store, epoch=4, seq=3)
        store.snapshot(3, 5, {"channels": {}})
        store.recover(3)
        assert store.appends == 2
        assert store.fenced_appends == 1
        assert store.compactions == 1
        assert store.recoveries == 1
