"""Fabric core tests: exactly-once ledgers, directory membership,
morph-at-owner pub/sub, shard handoff, stale-route redirects, the ECho
directory integration, and the fabric over the socket transport."""

import pytest

from repro.echo.protocol import (
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    register_protocol,
)
from repro.errors import FabricError
from repro.fabric import (
    EventFabric,
    FabricDirectory,
    FabricWorker,
    HashRing,
    RemoteWorker,
    SeqLedger,
    shard_of,
)
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.pbio.registry import FormatRegistry


def v2_record(channel_id="ch"):
    return RESPONSE_V2.make_record(
        channel_id=channel_id,
        member_count=2,
        member_list=[
            {"info": "a", "ID": 1, "is_Source": True, "is_Sink": False},
            {"info": "b", "ID": 2, "is_Source": False, "is_Sink": True},
        ],
    )


@pytest.fixture
def registry():
    reg = FormatRegistry()
    register_protocol(reg, "2.0")  # RESPONSE formats + retro transforms
    return reg


@pytest.fixture
def net():
    return Network(seed=7)


@pytest.fixture
def fabric(net, registry):
    return EventFabric(net, registry=registry)


class TestSeqLedger:
    def test_admits_each_seq_once(self):
        ledger = SeqLedger()
        assert ledger.admit(1)
        assert not ledger.admit(1)
        assert ledger.admit(2)
        assert ledger.high == 2

    def test_out_of_order_compacts(self):
        ledger = SeqLedger()
        for seq in (3, 1, 2):
            assert ledger.admit(seq)
        assert ledger.high == 3
        assert not ledger.sparse

    def test_gap_tracked_sparsely(self):
        ledger = SeqLedger()
        ledger.admit(1)
        ledger.admit(5)
        assert ledger.high == 1
        assert ledger.sparse == {5}
        assert not ledger.admit(5)
        assert ledger.admitted == 2

    def test_round_trips_through_state(self):
        ledger = SeqLedger()
        for seq in (1, 2, 3, 7, 9):
            ledger.admit(seq)
        restored = SeqLedger.from_state(ledger.to_state())
        assert restored.high == 3
        assert restored.sparse == {7, 9}
        assert not restored.admit(7)
        assert restored.admit(4)


class TestDirectory:
    def test_epoch_bumps_on_membership_change(self, fabric):
        directory = fabric.directory
        assert directory.epoch == 0
        fabric.add_worker("w1")
        assert directory.epoch == 1
        fabric.add_worker("w2")
        assert directory.epoch == 2
        fabric.remove_worker("w1")
        assert directory.epoch == 3

    def test_owner_consistent_with_assignment(self, fabric):
        fabric.add_worker("w1")
        fabric.add_worker("w2")
        directory = fabric.directory
        owner = directory.owner("sensors/temp")
        shard = shard_of("sensors/temp", directory.num_shards)
        assert directory.assignment[shard] == owner
        assert directory.route("sensors/temp") == (owner, directory.epoch)

    def test_unassigned_shard_raises(self):
        with pytest.raises(FabricError, match="unassigned"):
            FabricDirectory().owner("ch")

    def test_double_join_rejected(self, fabric):
        worker = fabric.add_worker("w1")
        with pytest.raises(FabricError, match="already joined"):
            fabric.directory.join(worker)

    def test_last_worker_cannot_leave(self, fabric):
        fabric.add_worker("w1")
        with pytest.raises(FabricError, match="last worker"):
            fabric.remove_worker("w1")

    def test_bootstrap_matches_incremental_assignment(self, net, registry):
        """Directory replicas cold-started from the same member list
        agree with a directory that grew one join at a time — except for
        the epoch, which counts membership *changes* (one bootstrap vs
        three joins)."""
        incremental = EventFabric(net, registry=registry)
        for address in ("w1", "w2", "w3"):
            incremental.add_worker(address)
        replica = FabricDirectory()
        replica.bootstrap([RemoteWorker(a) for a in ("w3", "w1", "w2")])
        assert replica.assignment == incremental.directory.assignment
        assert replica.epoch == 1

    def test_bootstrap_requires_empty_directory(self, fabric):
        fabric.add_worker("w1")
        with pytest.raises(FabricError, match="empty"):
            fabric.directory.bootstrap([RemoteWorker("w2")])

    def test_bootstrap_grants_without_handoff_traffic(self, net, registry):
        """Cold-start generates no wire traffic: every shard is fresh,
        so the hosted worker is granted its shards directly."""
        directory = FabricDirectory()
        worker = FabricWorker(directory, net, "w1", registry=registry)
        directory.bootstrap([worker, RemoteWorker("w2")])
        assert net.pending == 0
        assert worker.handoffs_sent == 0
        expected = [
            shard for shard, owner in directory.assignment.items()
            if owner == "w1"
        ]
        assert worker.owned_shards() == sorted(expected)

    def test_all_shards_covered_after_churn(self, fabric, net):
        w1 = fabric.add_worker("w1")
        w2 = fabric.add_worker("w2")
        w3 = fabric.add_worker("w3")
        net.run()
        fabric.remove_worker("w2")
        net.run()
        owned = w1.owned_shards() + w3.owned_shards()
        assert sorted(owned) == list(range(fabric.directory.num_shards))


class TestPubSubMorphing:
    def test_morph_at_owner_fan_out(self, fabric, net):
        """One v2.0 publish reaches a v1.0 and a v0.0 subscriber, each
        re-encoded at the owning worker via the retro-transform chain."""
        fabric.add_worker("w1")
        fabric.add_worker("w2")
        pub = fabric.client("pub")
        sub1 = fabric.client("sub1")
        sub0 = fabric.client("sub0")
        got1, got0 = [], []
        sub1.subscribe("ch", RESPONSE_V1,
                       lambda c, p, s, r: got1.append((s, r)))
        sub0.subscribe("ch", RESPONSE_V0,
                       lambda c, p, s, r: got0.append((s, r)))
        net.run()
        pub.publish("ch", RESPONSE_V2, v2_record())
        net.run()
        assert len(got1) == 1 and len(got0) == 1
        seq, record = got1[0]
        assert seq == 1
        # Figure 5 applied at the owner: roles rebuilt into v1's lists
        assert record["src_count"] == 1
        assert record["sink_count"] == 1
        _seq, record0 = got0[0]
        assert record0["member_count"] == 2
        assert "src_count" not in record0  # v0 carries no role lists

    def test_same_format_subscribers_share_one_morph_group(
        self, fabric, net
    ):
        fabric.add_worker("w1")
        pub = fabric.client("pub")
        subs = [fabric.client(f"sub{i}") for i in range(3)]
        counts = [0, 0, 0]

        def make_handler(i):
            def handler(c, p, s, r):
                counts[i] += 1
            return handler

        for i, sub in enumerate(subs):
            sub.subscribe("ch", RESPONSE_V1, make_handler(i))
        net.run()
        worker = fabric.directory.worker(fabric.directory.owner("ch"))
        pub.publish("ch", RESPONSE_V2, v2_record())
        net.run()
        assert counts == [1, 1, 1]
        assert worker.deliveries == 3
        channel = worker._channels["ch"]
        assert len(channel.groups) == 1  # one format group, one morph

    def test_publisher_seq_is_per_channel(self, fabric, net):
        fabric.add_worker("w1")
        pub = fabric.client("pub")
        assert pub.publish("a", RESPONSE_V2, v2_record("a")) == 1
        assert pub.publish("b", RESPONSE_V2, v2_record("b")) == 1
        assert pub.publish("a", RESPONSE_V2, v2_record("a")) == 2

    def test_duplicate_publish_suppressed_by_owner_ledger(
        self, fabric, net
    ):
        """A replayed datagram (same publisher+seq) is dropped at the
        owner, not fanned out twice."""
        fabric.add_worker("w1")
        pub = fabric.client("pub")
        sub = fabric.client("sub")
        got = []
        sub.subscribe("ch", RESPONSE_V0, lambda c, p, s, r: got.append(s))
        net.run()
        pub.publish("ch", RESPONSE_V2, v2_record())
        net.run()
        # replay the exact publish wire (seq not advanced)
        pub._next_seq["ch"] -= 1
        pub.publish("ch", RESPONSE_V2, v2_record())
        net.run()
        worker = fabric.directory.worker(fabric.directory.owner("ch"))
        assert worker.duplicates == 1
        assert got == [1]


def moving_channel(num_shards, before_members, after_members):
    """A channel id whose owner changes between the two memberships."""
    ring_before, ring_after = HashRing(), HashRing()
    for member in before_members:
        ring_before.add(member)
    for member in after_members:
        ring_after.add(member)
    before = ring_before.assign(num_shards)
    after = ring_after.assign(num_shards)
    for i in range(500):
        candidate = f"moving-{i}"
        shard = shard_of(candidate, num_shards)
        if before[shard] != after[shard]:
            return candidate
    raise AssertionError("no channel moved between memberships")


class TestHandoff:
    def test_join_hands_off_with_state(self, fabric, net):
        fabric.add_worker("w1")
        fabric.add_worker("w2")
        channel_id = moving_channel(
            fabric.directory.num_shards, ["w1", "w2"], ["w1", "w2", "w3"]
        )
        pub = fabric.client("pub")
        sub = fabric.client("sub")
        got = []
        sub.subscribe(channel_id, RESPONSE_V0,
                      lambda c, p, s, r: got.append(s))
        net.run()
        for _ in range(3):
            pub.publish(channel_id, RESPONSE_V2, v2_record(channel_id))
        net.run()
        owner_before = fabric.directory.owner(channel_id)
        fabric.add_worker("w3")
        net.run()
        assert fabric.directory.owner(channel_id) != owner_before
        # subscriber table and ledger moved with the shard: publishing
        # with the *stale* cached route still delivers exactly once
        for _ in range(3):
            pub.publish(channel_id, RESPONSE_V2, v2_record(channel_id))
        net.run()
        assert got == [1, 2, 3, 4, 5, 6]
        assert sub.duplicates == 0

    def test_forwarding_counted_on_stale_route(self, fabric, net):
        fabric.add_worker("w1")
        fabric.add_worker("w2")
        pub = fabric.client("pub")
        sub = fabric.client("sub")
        before = dict(fabric.directory.assignment)
        channel_id = moving_channel(
            fabric.directory.num_shards, ["w1", "w2"], ["w1", "w2", "w3"]
        )
        got = []
        sub.subscribe(channel_id, RESPONSE_V0,
                      lambda c, p, s, r: got.append(s))
        net.run()
        pub.publish(channel_id, RESPONSE_V2, v2_record(channel_id))
        net.run()
        old_owner = fabric.directory.worker(before[
            shard_of(channel_id, fabric.directory.num_shards)])
        fabric.add_worker("w3")
        net.run()
        # stale cached route: the publish lands on the old owner, is
        # forwarded raw, and a redirect corrects the publisher
        pub.publish(channel_id, RESPONSE_V2, v2_record(channel_id))
        net.run()
        assert got == [1, 2]
        assert old_owner.forwarded >= 1
        assert pub.redirects >= 1
        assert pub._routes[channel_id][0] == fabric.directory.owner(
            channel_id)

    def test_graceful_leave_preserves_subscriptions(self, fabric, net):
        w1 = fabric.add_worker("w1")
        fabric.add_worker("w2")
        pub = fabric.client("pub")
        sub = fabric.client("sub")
        got = []
        sub.subscribe("ch", RESPONSE_V0, lambda c, p, s, r: got.append(s))
        net.run()
        pub.publish("ch", RESPONSE_V2, v2_record())
        net.run()
        leaver = fabric.directory.owner("ch")
        fabric.remove_worker(leaver)
        net.run()
        assert not fabric.directory.worker(
            fabric.directory.owner("ch")) is w1 or leaver != "w1"
        pub.publish("ch", RESPONSE_V2, v2_record())
        net.run()
        assert got == [1, 2]
        assert sub.duplicates == 0

    def test_redirect_never_rolls_back_epoch(self, fabric, net):
        fabric.add_worker("w1")
        client = fabric.client("c")
        client._routes["ch"] = ("w9", 5)
        client._on_redirect(
            type("R", (), {"__getitem__": lambda self, k: {
                "channel_id": "ch", "owner": "w1", "epoch": 3,
            }[k]})()
        )
        assert client._routes["ch"] == ("w9", 5)


class TestEchoDirectoryIntegration:
    def test_open_channel_resolves_creator_through_directory(
        self, fabric, net, registry
    ):
        """ECho channel routing through the fabric: create on one
        process, open from another without exchanging contact strings."""
        from repro.echo.process import EChoProcess

        fabric.add_worker("w1")
        directory = fabric.directory
        creator = EChoProcess(net, "C", registry, version="2.0",
                              directory=directory)
        sink = EChoProcess(net, "S", registry, version="2.0",
                           directory=directory)
        creator.create_channel("echo-ch")
        assert directory.owner_contact("echo-ch") == "C"
        sink.open_channel("echo-ch", as_sink=True)
        net.run()
        got = []
        sink.subscribe("echo-ch", RESPONSE_V2, got.append)
        creator.submit("echo-ch", RESPONSE_V2, v2_record("echo-ch"))
        net.run()
        assert len(got) == 1

    def test_open_without_directory_requires_creator(self, net, registry):
        from repro.echo.process import EChoProcess
        from repro.errors import ChannelError

        process = EChoProcess(net, "P", registry)
        with pytest.raises(ChannelError, match="directory"):
            process.open_channel("ch")

    def test_unregistered_channel_falls_back_to_shard_owner(self, fabric):
        fabric.add_worker("w1")
        assert fabric.directory.owner_contact("never-created") == "w1"


class TestFabricOverSockets:
    def test_pubsub_over_udp_with_loss_and_churn(self, registry):
        """The whole subsystem on the pluggable transport: reliable
        fabric traffic over lossy UDP loopback, worker join mid-run,
        zero lost and zero duplicated deliveries."""
        from repro.net.socket import SocketNetwork

        with SocketNetwork(
            seed=3, default_link=LinkSpec(loss_rate=0.1)
        ) as net:
            fabric = EventFabric(net, registry=registry, reliable=True)
            fabric.add_worker("w1")
            fabric.add_worker("w2")
            pub = fabric.client("pub")
            sub = fabric.client("sub")
            got = []
            sub.subscribe("ch", RESPONSE_V0,
                          lambda c, p, s, r: got.append(s))
            net.run(max_time=10.0)
            for _ in range(5):
                pub.publish("ch", RESPONSE_V2, v2_record())
            net.run(max_time=10.0)
            fabric.add_worker("w3")
            for _ in range(5):
                pub.publish("ch", RESPONSE_V2, v2_record())
            net.run(max_time=20.0)
            assert sorted(got) == list(range(1, 11))
            assert sub.duplicates == 0
