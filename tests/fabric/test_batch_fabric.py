"""Fabric ``publish_batch`` — batched publishes through the sharded
worker fleet.

One BATCH1 frame carries the whole group to the channel's owner; each
contained event keeps its own ``FABRIC_PUBLISH`` envelope and sequence
number, so the ledger-backed exactly-once guarantee — and its survival
across loss, retransmitted frames and mid-flight shard handoff — is
per *message*, never per frame.
"""

import random

from repro import obs
from repro.echo.protocol import (
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    register_protocol,
)
from repro.fabric import EventFabric
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.obs.tracing import find_spans
from repro.pbio.registry import FormatRegistry

from tests.fabric.test_fabric import v2_record


def make_registry():
    registry = FormatRegistry()
    register_protocol(registry, "2.0")
    return registry


def batched_fleet(net_seed=7, loss_rate=0.15):
    net = Network(
        seed=net_seed,
        default_link=LinkSpec(latency=0.002, loss_rate=loss_rate, jitter=0.5),
    )
    fabric = EventFabric(net, registry=make_registry(), reliable=True)
    fabric.add_worker("w1")
    fabric.add_worker("w2")
    pub = fabric.client("pub")
    sub1 = fabric.client("sub-v1")
    sub0 = fabric.client("sub-v0")
    got1, got0 = [], []
    sub1.subscribe("batch/ch", RESPONSE_V1,
                   lambda c, p, s, r: got1.append(s))
    sub0.subscribe("batch/ch", RESPONSE_V0,
                   lambda c, p, s, r: got0.append(s))
    net.run()
    return net, fabric, pub, (sub1, got1), (sub0, got0)


class TestBatchedPublishExactlyOnce:
    def test_lossy_fabric_delivers_each_batched_event_once(self):
        net, _fabric, pub, (sub1, got1), (sub0, got0) = batched_fleet()
        total = 40
        for start in range(0, total, 8):
            seqs = pub.publish_batch(
                "batch/ch", RESPONSE_V2,
                [v2_record("batch/ch") for _ in range(8)],
            )
            assert seqs == list(range(start + 1, start + 9))
        net.run()
        assert pub.published == total
        for sub, got in ((sub1, got1), (sub0, got0)):
            assert sub.delivered == total
            assert sub.duplicates == 0
            assert sorted(got) == list(range(1, total + 1))
            ledger = sub.received[("batch/ch", "pub")]
            assert ledger.high == total
            assert not ledger.sparse

    def test_handoff_drains_in_flight_batches_without_loss(self):
        """Batched frames in flight while the channel's shard moves to a
        new owner: the drain-and-forward handoff must keep every
        contained message exactly-once."""
        net, fabric, pub, (sub1, got1), (sub0, got0) = batched_fleet(
            net_seed=13
        )
        rng = random.Random(4)
        published = 0
        next_worker = 3
        active = ["w1", "w2"]
        for _round in range(5):
            pub.publish_batch(
                "batch/ch", RESPONSE_V2,
                [v2_record("batch/ch") for _ in range(6)],
            )
            published += 6
            # churn while the frame (and its retransmits) are in flight
            net.run(max_time=net.now + 0.05)
            if len(active) <= 2 or rng.random() < 0.5:
                address = f"w{next_worker}"
                next_worker += 1
                fabric.add_worker(address)
                active.append(address)
            else:
                address = rng.choice(active)
                fabric.remove_worker(address)
                active.remove(address)
            net.run(max_time=net.now + 0.05)
        net.run()
        for sub, got in ((sub1, got1), (sub0, got0)):
            assert sub.delivered == published
            assert sub.duplicates == 0
            assert sorted(got) == list(range(1, published + 1))

    def test_batched_and_single_publishes_interleave(self):
        net, _fabric, pub, (sub1, got1), _ = batched_fleet(loss_rate=0.0)
        pub.publish("batch/ch", RESPONSE_V2, v2_record("batch/ch"))
        pub.publish_batch(
            "batch/ch", RESPONSE_V2,
            [v2_record("batch/ch") for _ in range(3)],
        )
        pub.publish("batch/ch", RESPONSE_V2, v2_record("batch/ch"))
        net.run()
        assert sorted(got1) == [1, 2, 3, 4, 5]
        assert sub1.duplicates == 0


class TestBatchedPublishTraceContinuity:
    def test_frame_level_trace_reaches_every_delivery_span(self):
        obs.enable(registry=obs.Registry())
        try:
            net, _fabric, pub, _, _ = batched_fleet(loss_rate=0.0)
            pub.publish_batch(
                "batch/ch", RESPONSE_V2,
                [v2_record("batch/ch") for _ in range(4)],
            )
            net.run()
            tree = obs.get_tracer().tree()
            publishes = find_spans(tree, "fabric.publish_batch")
            delivers = find_spans(tree, "fabric.deliver")
            assert len(publishes) == 1
            trace_id = publishes[0].get("trace_id")
            assert trace_id is not None
            # 4 events x 2 subscribers, all on the frame's trace
            assert len(delivers) == 8
            assert {d.get("trace_id") for d in delivers} == {trace_id}
        finally:
            obs.disable(reset=True)
