"""Consistent-hashing tests: stability across processes, balance under
the load cap, and near-minimal movement on membership change."""

import subprocess
import sys

import pytest

from repro.errors import FabricError
from repro.fabric.hashing import (
    DEFAULT_NUM_SHARDS,
    HashRing,
    shard_of,
    stable_hash,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("sensors/temp") == stable_hash("sensors/temp")

    def test_spreads(self):
        values = {stable_hash(f"ch-{i}") for i in range(100)}
        assert len(values) == 100

    def test_stable_across_interpreters(self):
        """The property PYTHONHASHSEED randomization would break with
        ``hash()``: a fresh interpreter computes the same value."""
        expected = stable_hash("cross-process")
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.fabric.hashing import stable_hash;"
             "print(stable_hash('cross-process'))"],
            capture_output=True, text=True, check=True,
        )
        assert int(out.stdout) == expected

    def test_shard_of_range(self):
        for i in range(50):
            assert 0 <= shard_of(f"ch-{i}") < DEFAULT_NUM_SHARDS

    def test_shard_of_rejects_bad_count(self):
        with pytest.raises(FabricError):
            shard_of("x", 0)


def _ring(*members: str) -> HashRing:
    ring = HashRing()
    for member in members:
        ring.add(member)
    return ring


class TestMembership:
    def test_add_remove_contains(self):
        ring = _ring("a", "b")
        assert "a" in ring and "b" in ring and len(ring) == 2
        ring.remove("a")
        assert "a" not in ring and len(ring) == 1

    def test_duplicate_add_rejected(self):
        ring = _ring("a")
        with pytest.raises(FabricError, match="already"):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(FabricError, match="not on the ring"):
            _ring("a").remove("b")

    def test_assign_requires_members(self):
        with pytest.raises(FabricError, match="no workers"):
            HashRing().assign(8)


class TestAssignment:
    def test_every_shard_assigned(self):
        assignment = _ring("w1", "w2", "w3").assign(128)
        assert sorted(assignment) == list(range(128))
        assert set(assignment.values()) == {"w1", "w2", "w3"}

    def test_balanced_within_cap(self):
        for n in (1, 2, 3, 4, 8):
            members = [f"w{i}" for i in range(n)]
            assignment = _ring(*members).assign(128)
            cap = -(-128 // n)
            loads = [
                sum(1 for owner in assignment.values() if owner == member)
                for member in members
            ]
            assert max(loads) <= cap

    def test_pure_function_of_membership(self):
        """Any process holding the same member list computes the same
        placement — insertion order must not matter."""
        a = _ring("w1", "w2", "w3").assign(64)
        b = _ring("w3", "w1", "w2").assign(64)
        assert a == b

    def test_join_moves_about_one_nth(self):
        before = _ring("w1", "w2").assign(128)
        after = _ring("w1", "w2", "w3").assign(128)
        moved = sum(1 for s in range(128) if before[s] != after[s])
        # Optimum is ceil(128/3) = 43; allow a little cap-walk slack.
        assert moved <= 55

    def test_leave_moves_only_the_leavers_shards(self):
        before = _ring("w1", "w2", "w3").assign(128)
        after = _ring("w1", "w2").assign(128)
        moved = [s for s in range(128) if before[s] != after[s]]
        lost = [s for s in range(128) if before[s] == "w3"]
        # every lost shard moves, and little else
        assert set(lost) <= set(moved)
        assert len(moved) <= len(lost) + 12
