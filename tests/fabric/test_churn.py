"""Churn tests — the PR's acceptance scenario.

A seeded join/leave schedule runs *while* a lossy V2 -> V1 -> V0 morph
chain is publishing through reliable endpoints.  Shard handoff must
drain-and-forward such that ledger reconciliation proves exactly-once:
every published sequence number delivered to every subscriber exactly
once, no gaps, no duplicates — regardless of how many ownership epochs
a message crossed.

The trace-continuity class then shows the observability half: one
trace id per message even when the message took an extra forwarding hop
through its channel's *previous* owner mid-handoff.
"""

import random

import pytest

from repro import obs
from repro.echo.protocol import (
    RESPONSE_V0,
    RESPONSE_V1,
    RESPONSE_V2,
    register_protocol,
)
from repro.fabric import EventFabric
from repro.net.link import LinkSpec
from repro.net.transport import Network
from repro.obs.distributed import TraceStore
from repro.obs.tracectx import seed_ids
from repro.pbio.registry import FormatRegistry

from tests.fabric.test_fabric import moving_channel, v2_record


def make_registry():
    registry = FormatRegistry()
    register_protocol(registry, "2.0")
    return registry


class TestChurnExactlyOnce:
    @pytest.mark.parametrize("net_seed,churn_seed", [(11, 3), (23, 8)])
    def test_seeded_join_leave_under_lossy_morph_chain(
        self, net_seed, churn_seed
    ):
        """Publish V2 events through a 15%-lossy fabric at a v1.0 and a
        v0.0 subscriber while workers join and leave mid-flight."""
        net = Network(
            seed=net_seed,
            default_link=LinkSpec(
                latency=0.002, loss_rate=0.15, jitter=0.5
            ),
        )
        fabric = EventFabric(net, registry=make_registry(), reliable=True)
        fabric.add_worker("w1")
        fabric.add_worker("w2")
        workers = {"w1": fabric.directory.worker("w1"),
                   "w2": fabric.directory.worker("w2")}
        active = ["w1", "w2"]
        retired = []
        pub = fabric.client("pub")
        sub1 = fabric.client("sub-v1")
        sub0 = fabric.client("sub-v0")
        got1, got0 = [], []
        channels = [f"churn/{i}" for i in range(4)]
        for channel_id in channels:
            sub1.subscribe(channel_id, RESPONSE_V1,
                           lambda c, p, s, r: got1.append((c, s)))
            sub0.subscribe(channel_id, RESPONSE_V0,
                           lambda c, p, s, r: got0.append((c, s)))
        net.run()

        rng = random.Random(churn_seed)
        published = {channel_id: 0 for channel_id in channels}
        next_worker = 3
        for _round in range(6):
            for _ in range(5):
                channel_id = rng.choice(channels)
                pub.publish(channel_id, RESPONSE_V2, v2_record(channel_id))
                published[channel_id] += 1
            # let part of the burst (and its retransmits) fly...
            net.run(max_time=net.now + 0.05)
            # ...then churn while messages are in flight
            if len(active) <= 2 or rng.random() < 0.5:
                address = f"w{next_worker}"
                next_worker += 1
                workers[address] = fabric.add_worker(address)
                active.append(address)
            else:
                address = rng.choice(active)
                fabric.remove_worker(address)
                active.remove(address)
                retired.append(address)
            net.run(max_time=net.now + 0.05)
        net.run()  # drain everything, including retry schedules

        total = sum(published.values())
        assert total == 30
        # --- ledger reconciliation: exactly-once end to end ----------
        for sub, got in ((sub1, got1), (sub0, got0)):
            assert sub.delivered == total
            assert sub.duplicates == 0
            for channel_id in channels:
                ledger = sub.received.get((channel_id, "pub"))
                if published[channel_id] == 0:
                    assert ledger is None
                    continue
                # no gaps, no extras: the ledger compacted fully
                assert ledger.high == published[channel_id]
                assert not ledger.sparse
            seqs = sorted(s for c, s in got if c == channels[0])
            assert seqs == list(range(1, published[channels[0]] + 1))
        # --- the churn was real --------------------------------------
        fleet = list(workers.values())
        assert sum(w.handoffs_sent for w in fleet) > 0
        assert sum(w.handoffs_received for w in fleet) > 0
        assert len(retired) >= 1
        # retired workers ended up owning nothing
        for address in retired:
            assert workers[address].owned_shards() == []
        # live workers cover the whole shard space exactly once
        owned = []
        for address in active:
            owned.extend(workers[address].owned_shards())
        assert sorted(owned) == list(range(fabric.directory.num_shards))

    def test_forwarded_messages_survive_with_stale_routes(self):
        """A publisher that never refreshes its route (redirects lost to
        a fully lossy control path... simulated by pre-caching) still
        gets every message through via drain-and-forward."""
        net = Network(seed=5, default_link=LinkSpec(latency=0.001))
        fabric = EventFabric(net, registry=make_registry(), reliable=True)
        fabric.add_worker("w1")
        fabric.add_worker("w2")
        channel_id = moving_channel(
            fabric.directory.num_shards, ["w1", "w2"], ["w1", "w2", "w3"]
        )
        pub = fabric.client("pub")
        sub = fabric.client("sub")
        got = []
        sub.subscribe(channel_id, RESPONSE_V0,
                      lambda c, p, s, r: got.append(s))
        net.run()
        old_owner = fabric.directory.owner(channel_id)
        pub.publish(channel_id, RESPONSE_V2, v2_record(channel_id))
        net.run()
        fabric.add_worker("w3")
        net.run()
        for _ in range(3):
            # force the stale route every time: always hit the old owner
            pub._routes[channel_id] = (old_owner, 2)
            pub.publish(channel_id, RESPONSE_V2, v2_record(channel_id))
            net.run()
        assert got == [1, 2, 3, 4]
        assert sub.duplicates == 0
        assert fabric.directory.worker(old_owner).forwarded >= 3


class TestTraceContinuityAcrossHandoff:
    def test_one_trace_per_message_across_the_handoff_hop(self):
        """A message published against a stale route crosses three
        transport hops (publisher -> old owner -> new owner ->
        subscriber); every span lands on the publish's single trace."""
        obs.enable(capacity=16384)
        seed_ids(21)
        net = Network(seed=2, default_link=LinkSpec(latency=0.001))
        fabric = EventFabric(net, registry=make_registry(), reliable=True)
        fabric.add_worker("w1")
        fabric.add_worker("w2")
        channel_id = moving_channel(
            fabric.directory.num_shards, ["w1", "w2"], ["w1", "w2", "w3"]
        )
        pub = fabric.client("pub")
        sub = fabric.client("sub")
        got = []
        sub.subscribe(channel_id, RESPONSE_V0,
                      lambda c, p, s, r: got.append(s))
        net.run()
        pub.publish(channel_id, RESPONSE_V2, v2_record(channel_id))
        net.run()
        old_owner = fabric.directory.owner(channel_id)
        fabric.add_worker("w3")
        net.run()
        # second publish rides the stale cached route -> forwarded
        pub.publish(channel_id, RESPONSE_V2, v2_record(channel_id))
        net.run()
        assert got == [1, 2]
        assert fabric.directory.worker(old_owner).forwarded >= 1

        store = TraceStore()
        store.add_recorder("local", obs.get_tracer())
        trace_ids = store.trace_ids()
        # exactly one trace per published message — the forwarding hop
        # did not fork a new trace
        assert len(trace_ids) == 2
        forwarded_report = None
        for tid in trace_ids:
            report = store.flight(tid)
            names = set(report.span_names())
            assert "fabric.publish" in names
            assert "fabric.morph" in names
            assert "fabric.deliver" in names
            assert all(span.trace_id == tid for span in report.spans)
            hops = sum(
                1 for span in report.spans if span.name == "net.deliver"
            )
            if hops >= 3:
                forwarded_report = report
        # the second message's trace shows the extra hop through the
        # old owner
        assert forwarded_report is not None
