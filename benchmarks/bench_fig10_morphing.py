"""Figure 10 — decoding cost WITH evolution (the paper's headline
comparison).

A v1.0-only reader receives v2.0 messages:

* PBIO morphing arm = DCG decode of v2.0 + compiled ECode transform of
  paper Figure 5 (through the cached MorphReceiver route),
* XML/XSLT arm = parse text -> tree, apply the XSL transformation ->
  new tree, traverse the new tree -> v1.0 record.

Paper result: the XML/XSLT pipeline is an order of magnitude slower.

Regenerate with::

    pytest benchmarks/bench_fig10_morphing.py --benchmark-only \
        --benchmark-group-by=param
"""

import pytest

from benchmarks.conftest import size_params
from repro.bench.workloads import V2_TO_V1_STYLESHEET, response_v1_from_v2
from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2, V2_TO_V1_TRANSFORM
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.record import records_equal
from repro.pbio.registry import FormatRegistry
from repro.xmlrep.decode import record_from_tree
from repro.xmlrep.encode import encode_xml
from repro.xmlrep.parse import parse_xml
from repro.xmlrep.xslt import Stylesheet


@pytest.mark.parametrize("target", size_params())
def test_fig10_pbio_morphing(benchmark, workload_cache, target):
    record, unencoded = workload_cache(target)
    registry = FormatRegistry()
    registry.register_transform(V2_TO_V1_TRANSFORM)
    receiver = MorphReceiver(registry)
    receiver.register_handler(RESPONSE_V1, lambda rec: rec)
    wire = PBIOContext(registry).encode(RESPONSE_V2, record)
    receiver.process(wire)  # plan, compile and cache the route
    benchmark.extra_info["unencoded_bytes"] = unencoded
    out = benchmark(receiver.process, wire)
    assert records_equal(out, response_v1_from_v2(record))


@pytest.mark.parametrize("target", size_params())
def test_fig10_xml_xslt(benchmark, workload_cache, target):
    record, unencoded = workload_cache(target)
    text = encode_xml(RESPONSE_V2, record)
    stylesheet = Stylesheet.from_string(V2_TO_V1_STYLESHEET)
    benchmark.extra_info["unencoded_bytes"] = unencoded

    def morph_via_xslt():
        tree = parse_xml(text)
        transformed = stylesheet.transform(tree)
        return record_from_tree(RESPONSE_V1, transformed)

    out = benchmark(morph_via_xslt)
    assert records_equal(out, response_v1_from_v2(record))
