"""Table 1 — ChannelOpenResponse message sizes across representations.

The paper reports sizes (KB) for: unencoded v2.0 (baseline), PBIO-encoded
v2.0 (< 30 B overhead), unencoded v1.0 (~3x: rollback duplicates list
data), XML v2.0 and XML v1.0 (large inflation from inline tags).

The benchmark times the whole size-measurement pipeline per column and
attaches the measured sizes as ``extra_info`` so
``--benchmark-json`` output carries the full table.
"""

import pytest

from repro.bench.figures import table1_sizes

COLUMNS = [
    pytest.param(0.1, id="0.1KB"),
    pytest.param(1.0, id="1KB"),
    pytest.param(10.0, id="10KB"),
    pytest.param(100.0, id="100KB"),
    pytest.param(1000.0, id="1MB", marks=pytest.mark.slow),
]


@pytest.mark.parametrize("kb", COLUMNS)
def test_table1_column(benchmark, kb):
    rows = benchmark.pedantic(
        table1_sizes, args=([kb],), rounds=1, iterations=1
    )
    row = rows[0]
    benchmark.extra_info.update(
        unencoded_v2=row.unencoded_v2,
        pbio_v2=row.pbio_v2,
        unencoded_v1=row.unencoded_v1,
        xml_v2=row.xml_v2,
        xml_v1=row.xml_v1,
    )
    # the paper's qualitative claims, asserted per column:
    assert row.pbio_v2 - row.unencoded_v2 < 30 + 4 * (row.unencoded_v2 // 30)
    assert row.unencoded_v1 > 1.5 * row.unencoded_v2
    assert row.xml_v2 > 2.5 * row.unencoded_v2
    assert row.xml_v1 > row.xml_v2
