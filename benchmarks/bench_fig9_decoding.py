"""Figure 9 — decoding cost without evolution.

A v2.0 reader receives v2.0 messages: PBIO decodes with its DCG-generated
routine; the XML arm parses the text and traverses the tree back into a
record.  Paper result: PBIO is an order of magnitude cheaper.

Regenerate with::

    pytest benchmarks/bench_fig9_decoding.py --benchmark-only \
        --benchmark-group-by=param
"""

import pytest

from benchmarks.conftest import size_params
from repro.echo.protocol import RESPONSE_V2
from repro.pbio.context import PBIOContext
from repro.pbio.record import records_equal
from repro.xmlrep.decode import record_from_tree
from repro.xmlrep.encode import encode_xml
from repro.xmlrep.parse import parse_xml


@pytest.mark.parametrize("target", size_params())
def test_fig9_pbio_decode(benchmark, workload_cache, target):
    record, unencoded = workload_cache(target)
    ctx = PBIOContext()
    wire = ctx.encode(RESPONSE_V2, record)
    ctx.decode_as(RESPONSE_V2, wire)  # generate + cache the decoder
    benchmark.extra_info["unencoded_bytes"] = unencoded
    out = benchmark(ctx.decode_as, RESPONSE_V2, wire)
    assert records_equal(out, record)


@pytest.mark.parametrize("target", size_params())
def test_fig9_xml_decode(benchmark, workload_cache, target):
    record, unencoded = workload_cache(target)
    text = encode_xml(RESPONSE_V2, record)
    benchmark.extra_info["unencoded_bytes"] = unencoded

    def decode():
        return record_from_tree(RESPONSE_V2, parse_xml(text))

    out = benchmark(decode)
    assert records_equal(out, record)
