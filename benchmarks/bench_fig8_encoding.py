"""Figure 8 — encoding cost of the v2.0 ChannelOpenResponse.

Paper series: PBIO vs XML over unencoded sizes 100 B – 1 MB.
Paper result: XML encoding costs at least 2x PBIO at every size.

Regenerate with::

    pytest benchmarks/bench_fig8_encoding.py --benchmark-only \
        --benchmark-group-by=param
"""

import pytest

from benchmarks.conftest import size_params
from repro.echo.protocol import RESPONSE_V2
from repro.pbio.context import PBIOContext
from repro.xmlrep.encode import encode_xml


@pytest.mark.parametrize("target", size_params())
def test_fig8_pbio_encode(benchmark, workload_cache, target):
    record, unencoded = workload_cache(target)
    ctx = PBIOContext()
    ctx.encode(RESPONSE_V2, record)  # generate + cache the encoder
    benchmark.extra_info["unencoded_bytes"] = unencoded
    wire = benchmark(ctx.encode, RESPONSE_V2, record)
    assert len(wire) > unencoded * 0.9


@pytest.mark.parametrize("target", size_params())
def test_fig8_xml_encode(benchmark, workload_cache, target):
    record, unencoded = workload_cache(target)
    benchmark.extra_info["unencoded_bytes"] = unencoded
    text = benchmark(encode_xml, RESPONSE_V2, record)
    assert len(text) > unencoded  # XML always inflates
