"""Shared benchmark fixtures.

Each figure bench is parametrized over the paper's message sizes.  The
1 MB point (paper's largest figure size) is heavy for the XML arms under
pytest-benchmark's calibration; select it explicitly with
``-m slow`` / deselect with ``-m "not slow"`` (it is included by default
but marked)."""

from __future__ import annotations

import pytest

from repro.bench.workloads import response_v2_of_size
from repro.echo.protocol import RESPONSE_V2
from repro.pbio.encode import native_size

SIZES = {
    "100B": 100,
    "1KB": 1_000,
    "10KB": 10_000,
    "100KB": 100_000,
}

SLOW_SIZES = {"1MB": 1_000_000}


def size_params():
    params = [pytest.param(target, id=label) for label, target in SIZES.items()]
    params += [
        pytest.param(target, id=label, marks=pytest.mark.slow)
        for label, target in SLOW_SIZES.items()
    ]
    return params


@pytest.fixture(scope="session")
def workload_cache():
    cache = {}

    def get(target_bytes: int):
        if target_bytes not in cache:
            record = response_v2_of_size(target_bytes)
            cache[target_bytes] = (record, native_size(RESPONSE_V2, record))
        return cache[target_bytes]

    return get
