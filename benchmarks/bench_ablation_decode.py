"""Ablation — PBIO's generated decode routine vs a generic field-walking
decoder.

Figure 9's PBIO advantage comes from "dynamic code generation to create a
customized conversion subroutine for every incoming message type"; this
bench isolates that choice by decoding the same wire bytes through the
specialized (generated) and the interpretive decoder, and symmetrically
for encoding.
"""

import pytest

from repro.bench.workloads import response_v2_of_size
from repro.echo.protocol import RESPONSE_V2
from repro.pbio.codegen import make_decoder, make_encoder
from repro.pbio.decode import decode_record
from repro.pbio.encode import encode_record


@pytest.fixture(scope="module")
def wire_10kb():
    return encode_record(RESPONSE_V2, response_v2_of_size(10_000))


@pytest.fixture(scope="module")
def record_10kb():
    return response_v2_of_size(10_000)


def test_generated_decode(benchmark, wire_10kb):
    decode = make_decoder(RESPONSE_V2)
    benchmark(decode, wire_10kb)


def test_generic_decode(benchmark, wire_10kb):
    benchmark(decode_record, RESPONSE_V2, wire_10kb)


def test_generated_encode(benchmark, record_10kb):
    encode = make_encoder(RESPONSE_V2)
    benchmark(encode, record_10kb)


def test_generic_encode(benchmark, record_10kb):
    benchmark(encode_record, RESPONSE_V2, record_10kb)


def test_decoder_generation_cost(benchmark):
    benchmark(make_decoder, RESPONSE_V2)
