"""Ablation — MaxMatch cost vs format population.

MaxMatch runs once per unseen format, but its cost scales with the number
of registered revisions (|F1| x |F2| diff computations) and with format
weight (diff recurses through every field).  This bench sweeps both
dimensions — relevant to the paper's future-work note about refining
MaxMatch for larger protocol-evolution trials.
"""

import pytest

from repro.morph.diff import _diff_cached, diff
from repro.morph.maxmatch import max_match
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat


def make_revision(revision: int, width: int) -> IOFormat:
    """A format with *width* fields, a few of which vary per revision."""
    fields = [IOField(f"stable_{i}", "integer") for i in range(width - 2)]
    fields += [
        IOField(f"rev{revision}_a", "integer"),
        IOField(f"rev{revision}_b", "string"),
    ]
    return IOFormat("Evolving", fields, version=str(revision))


@pytest.mark.parametrize("population", [2, 8, 32])
def test_maxmatch_scales_with_population(benchmark, population):
    incoming = make_revision(999, 12)
    targets = [make_revision(r, 12) for r in range(population)]

    def run():
        _diff_cached.cache_clear()  # measure the uncached planning cost
        return max_match(incoming, targets)

    result = benchmark(run)
    assert result is not None


@pytest.mark.parametrize("width", [4, 32, 128])
def test_diff_scales_with_format_weight(benchmark, width):
    f1 = make_revision(1, width)
    f2 = make_revision(2, width)

    def run():
        _diff_cached.cache_clear()
        return diff(f1, f2)

    assert benchmark(run) == 2


def test_cached_diff_is_constant_time(benchmark):
    f1 = make_revision(1, 128)
    f2 = make_revision(2, 128)
    diff(f1, f2)  # warm the lru_cache
    benchmark(diff, f1, f2)
