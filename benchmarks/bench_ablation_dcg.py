"""Ablation — dynamic code generation vs interpretation.

The paper's efficiency argument rests on transforms being *compiled*
("this code can be converted dynamically into a native conversion
subroutine").  This bench compares the same ECode transform (paper
Figure 5):

* compiled through the Python-codegen pipeline (our DCG analogue),
* executed by the AST tree-walking interpreter,

plus the one-time compilation cost itself (paid once per format, then
amortized by the route cache).
"""

import pytest

from repro.bench.workloads import response_v2_of_size
from repro.echo.protocol import V2_TO_V1_TRANSFORM
from repro.morph.transform import Transformation


@pytest.fixture(scope="module")
def record_10kb():
    return response_v2_of_size(10_000)


def test_compiled_transform(benchmark, record_10kb):
    xform = Transformation(V2_TO_V1_TRANSFORM, use_codegen=True)
    benchmark(xform.apply, record_10kb)


def test_interpreted_transform(benchmark, record_10kb):
    xform = Transformation(V2_TO_V1_TRANSFORM, use_codegen=False)
    benchmark(xform.apply, record_10kb)


def test_one_time_compilation_cost(benchmark):
    benchmark(Transformation, V2_TO_V1_TRANSFORM, True)


def test_reconcile_python_walker(benchmark, record_10kb):
    """Imperfect-match reconciliation: structural Python walker arm."""
    from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2
    from repro.morph.compat import coerce_record

    benchmark(coerce_record, RESPONSE_V2, RESPONSE_V1, record_10kb)


def test_reconcile_generated_ecode(benchmark, record_10kb):
    """Imperfect-match reconciliation: generated-ECode (DCG) arm."""
    from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2
    from repro.morph.compat import generate_coercion_ecode
    from repro.morph.transform import Transformation
    from repro.pbio.registry import TransformSpec

    code = generate_coercion_ecode(RESPONSE_V2, RESPONSE_V1)
    xform = Transformation(
        TransformSpec(RESPONSE_V2, RESPONSE_V1, code, "generated reconcile")
    )
    benchmark(xform.apply, record_10kb)
