"""Ablation — the Algorithm 2 route cache.

The paper stresses that "the expensive steps of the algorithm are
executed for only those formats that have not been seen previously"; this
bench quantifies the claim by comparing the cached per-message path
against a receiver forced to re-plan (MaxMatch + transform-closure walk +
ECode recompilation) on every message.
"""

import pytest

from repro.bench.workloads import response_v2_of_size
from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2, V2_TO_V1_TRANSFORM
from repro.morph.receiver import MorphReceiver
from repro.pbio.context import PBIOContext
from repro.pbio.registry import FormatRegistry


def build(target=1_000):
    registry = FormatRegistry()
    registry.register_transform(V2_TO_V1_TRANSFORM)
    receiver = MorphReceiver(registry)
    receiver.register_handler(RESPONSE_V1, lambda rec: rec)
    wire = PBIOContext(registry).encode(RESPONSE_V2, response_v2_of_size(target))
    receiver.process(wire)  # prime
    return receiver, wire


def test_cache_hit_path(benchmark):
    receiver, wire = build()
    benchmark(receiver.process, wire)


def test_cache_disabled_replans_every_message(benchmark):
    receiver, wire = build()

    def process_without_cache():
        receiver._routes.clear()  # force a full Algorithm 2 pass
        return receiver.process(wire)

    benchmark(process_without_cache)


def test_route_planning_alone(benchmark):
    receiver, wire = build()
    route = receiver.route_for(RESPONSE_V2)
    assert route is not None

    def plan():
        return receiver._plan_route(RESPONSE_V2)

    benchmark(plan)
