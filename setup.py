"""Setuptools entry point.

The project is fully configured by pyproject.toml; this file exists so
fully-offline environments without the `wheel` package can still do
`python setup.py develop` or legacy editable installs.
"""

from setuptools import setup

setup()
