#!/usr/bin/env python3
"""B2B supply chain — the paper's Section 4.2 scenario (Figures 6 & 7).

The same retailer/supplier order flow runs twice:

* **XSLT mode** (Figure 6, the Oracle-AQ architecture): XML on the wire;
  the broker converts every message in-flight with XSL stylesheets —
  concentrating all conversion CPU in the middle,
* **Morphing mode** (Figure 7): PBIO binary on the wire; the broker just
  forwards bytes, because the conversion rides the format meta-data as
  ECode and executes at each receiver.

Both modes end in identical business outcomes; the broker's cost and the
wire volume differ dramatically.

Run:  python examples/b2b_broker.py
"""

from repro.b2b import build_scenario

ORDERS = [
    ("WIDGET-9", 3, 19.99, True),
    ("WIDGET-9", 10, 18.50, False),
    ("SPROCKET-3", 50, 2.50, False),   # only 5 in stock -> backordered
    ("SPROCKET-3", 2, 2.75, True),
]

results = {}
for mode in ("xslt", "morphing"):
    scenario = build_scenario(mode=mode)
    ids = [
        scenario.retailer.send_order(sku, qty, price, rush=rush)
        for sku, qty, price, rush in ORDERS
    ]
    scenario.run()

    statuses = {s["order_id"]: s for s in scenario.retailer.statuses}
    outcome = [
        (oid, "shipped" if statuses[oid]["shipped"]
         else "backordered" if statuses[oid]["backordered"] else "received")
        for oid in ids
    ]
    results[mode] = outcome

    broker = scenario.broker.stats
    print(f"=== {mode} mode ===")
    print(f"  orders shipped/backordered: "
          f"{sum(1 for _o, s in outcome if s == 'shipped')}/"
          f"{sum(1 for _o, s in outcome if s == 'backordered')}")
    print(f"  broker: forwarded={broker.forwarded}, "
          f"transformed={broker.transformed}, "
          f"transform time={broker.transform_seconds * 1000:.2f} ms")
    print(f"  wire volume through broker: {broker.bytes_in} bytes in, "
          f"{broker.bytes_out} bytes out")
    supplier_stats = scenario.supplier.receiver.stats.snapshot()
    print(f"  supplier-side morphing: {supplier_stats['morphed']} morphs, "
          f"{supplier_stats['cache_hits']} cache hits\n")

assert results["xslt"] == results["morphing"], "modes must agree on business outcomes"
print("OK: identical outcomes; morphing moved 100% of the conversion work")
print("    off the broker and shrank wire traffic.")
