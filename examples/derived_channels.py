#!/usr/bin/env python3
"""Derived event channels — ECode as a source-side event filter.

E-Code's original job in ECho was filtering: a *derived* channel is a
sub-channel whose events are the parent's events passing a filter
function.  The filter travels as ECode source in the channel meta-data,
is dynamically compiled at every event SOURCE, and events that fail it
never touch the wire — the bandwidth win that motivated running mobile
code in the middleware in the first place.

This example builds a telemetry channel, derives an alert channel
(`load > 80`), and shows:

* per-source dynamic compilation of the filter,
* bandwidth saved (filtered events produce zero network messages),
* a late-joining source picking the filter up automatically.

Run:  python examples/derived_channels.py
"""

from repro.echo import EChoProcess
from repro.net import Network
from repro.pbio import FormatRegistry, IOField, IOFormat

TELEMETRY = IOFormat(
    "Telemetry",
    [IOField("t", "float"), IOField("host", "string"), IOField("load", "integer")],
    version="1.0",
)

net = Network()
registry = FormatRegistry()

creator = EChoProcess(net, "creator", registry)
source = EChoProcess(net, "source", registry)
dashboard = EChoProcess(net, "dashboard", registry)   # wants everything
pager = EChoProcess(net, "pager", registry)           # wants only alerts

creator.create_channel("telemetry")
source.open_channel("telemetry", "creator", as_source=True)
dashboard.open_channel("telemetry", "creator", as_sink=True)
net.run()

# derive the alert channel; the filter is plain ECode text
creator.create_derived_channel(
    "telemetry", "telemetry.alerts", "return input.load > 80;"
)
pager.open_channel("telemetry.alerts", "creator", as_sink=True)
net.run()

print("filter compiled at the source:",
      "telemetry.alerts" in source._filters)

all_events, alerts = [], []
dashboard.subscribe("telemetry", TELEMETRY, all_events.append)
pager.subscribe("telemetry.alerts", TELEMETRY, alerts.append)

loads = [35, 92, 60, 99, 81, 12, 77]
baseline = net.messages_sent
for step, load in enumerate(loads):
    source.submit(
        "telemetry",
        TELEMETRY,
        TELEMETRY.make_record(t=float(step), host="node-4", load=load),
    )
net.run()

sent = net.messages_sent - baseline
print(f"\nsubmitted {len(loads)} events -> {sent} wire messages "
      f"({len(loads)} to the dashboard + {len(alerts)} alerts)")
print(f"dashboard saw loads: {[e.load for e in all_events]}")
print(f"pager saw loads    : {[e.load for e in alerts]}")
print(f"events filtered at the source, never sent: {source.filtered_out}")

assert [e.load for e in alerts] == [92, 99, 81]
assert source.filtered_out == 4
assert sent == len(loads) + len(alerts)

# a second source joins later and learns the filter automatically
late = EChoProcess(net, "late-source", registry)
late.open_channel("telemetry", "creator", as_source=True)
net.run()
late.submit("telemetry", TELEMETRY,
            TELEMETRY.make_record(t=99.0, host="node-9", load=95))
net.run()
assert [e.load for e in alerts] == [92, 99, 81, 95]
print("\na late-joining source picked the filter up automatically.")
print("OK: mobile ECode filters keep low-value events off the wire.")
