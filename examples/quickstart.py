#!/usr/bin/env python3
"""Quickstart — message morphing in ~40 lines.

A sensor network evolves its ``Reading`` message: v1 reported Celsius,
v2 reports Kelvin and adds a sensor id.  Deployed v1 consumers keep
working because the v2 format carries an ECode transformation (dynamic
code generation does the rest).

Run:  python examples/quickstart.py
"""

from repro import FormatRegistry, IOField, IOFormat, MorphReceiver, PBIOContext

# --- formats: two revisions sharing the wire name -------------------------

READING_V1 = IOFormat(
    "Reading",
    [IOField("celsius", "float"), IOField("station", "string")],
    version="1",
)

READING_V2 = IOFormat(
    "Reading",
    [
        IOField("kelvin", "float"),
        IOField("station", "string"),
        IOField("sensor_id", "integer"),
    ],
    version="2",
)

# --- the writer attaches a retro-transformation to its new format ---------

registry = FormatRegistry()
registry.add_transform(
    READING_V2,
    READING_V1,
    """
    old.celsius = new.kelvin - 273.15;
    old.station = new.station;
    """,
    description="Reading v2 -> v1 (drop sensor id, Kelvin -> Celsius)",
)

# --- an old consumer, written long before v2 existed ----------------------

receiver = MorphReceiver(registry)


def legacy_handler(reading):
    print(f"  [v1 consumer] {reading.station}: {reading.celsius:.2f} C")


receiver.register_handler(READING_V1, legacy_handler)

# --- a new producer sends v2 messages to everyone --------------------------

producer = PBIOContext(registry)

print("new producer sends Reading v2 wire messages:")
for kelvin, station, sensor in [(300.0, "atlanta-1", 17), (285.5, "atlanta-2", 9)]:
    wire = producer.encode(
        READING_V2,
        READING_V2.make_record(kelvin=kelvin, station=station, sensor_id=sensor),
    )
    receiver.process(wire)  # morphs v2 -> v1 on the fly, then dispatches

print(f"\nreceiver stats: {receiver.stats.snapshot()}")
assert receiver.stats.morphed == 2
assert receiver.stats.cache_hits == 1  # second message reused the route
print("OK: a v1-only consumer processed v2 messages without any change.")
