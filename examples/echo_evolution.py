#!/usr/bin/env python3
"""ECho evolution — the paper's Section 4.1 scenario, end to end.

A channel creator running the NEW ECho (v2.0) serves subscribers running
three different releases (v0.0, v1.0, v2.0) over a simulated network.
The v2.0 ``ChannelOpenResponse`` carries the paper's Figure 5
retro-transformation (plus a v1.0 -> v0.0 hop), so:

* the v2.0 subscriber gets an exact match,
* the v1.0 subscriber's middleware dynamically compiles and applies the
  Figure 5 ECode,
* the v0.0 subscriber morphs through the two-hop chain (Figure 1).

After membership converges, a v2.0 publisher pushes telemetry events that
themselves evolve across versions on the data plane.

Run:  python examples/echo_evolution.py
"""

from repro.echo import EChoProcess, RESPONSE_V2
from repro.net import Network, WIRELESS_11MBPS
from repro.pbio import FormatRegistry, IOField, IOFormat

# --- topology ---------------------------------------------------------------

net = Network()
registry = FormatRegistry()  # the shared out-of-band meta-data service

creator = EChoProcess(net, "creator", registry, version="2.0")
modern = EChoProcess(net, "modern-sub", registry, version="2.0")
legacy = EChoProcess(net, "legacy-sub", registry, version="1.0")
ancient = EChoProcess(net, "ancient-sub", registry, version="0.0")
publisher = EChoProcess(net, "publisher", registry, version="2.0")

net.set_link("creator", "ancient-sub", WIRELESS_11MBPS)  # a slow edge device

# --- channel membership across three protocol generations -------------------

creator.create_channel("telemetry")
modern.open_channel("telemetry", "creator", as_sink=True)
legacy.open_channel("telemetry", "creator", as_sink=True)
ancient.open_channel("telemetry", "creator", as_sink=True)
publisher.open_channel("telemetry", "creator", as_source=True)
net.run()

print("membership replicas after joins:")
for process in (modern, legacy, ancient):
    channel = process.channel("telemetry")
    members = ", ".join(m.contact for m in channel.member_list())
    print(f"  {process.address:12s} (ECho {process.version}): [{members}]")
    assert channel.ready

legacy_route = legacy.control.route_for(RESPONSE_V2)
ancient_route = ancient.control.route_for(RESPONSE_V2)
print("\nmorphing routes planned by the control plane:")
print(f"  legacy-sub : v2.0 response -> {len(legacy_route.chain)} transform hop(s)")
print(f"  ancient-sub: v2.0 response -> {len(ancient_route.chain)} transform hop(s)")
assert len(legacy_route.chain) == 1
assert len(ancient_route.chain) == 2

# --- the data plane evolves too ---------------------------------------------

TELEMETRY_V1 = IOFormat(
    "Telemetry", [IOField("t", "float"), IOField("load", "integer")], version="1.0"
)
TELEMETRY_V2 = IOFormat(
    "Telemetry",
    [IOField("t", "float"), IOField("load", "integer"), IOField("host", "string")],
    version="2.0",
)
registry.add_transform(
    TELEMETRY_V2, TELEMETRY_V1, "old.t = new.t; old.load = new.load;"
)

received = {"modern-sub": [], "legacy-sub": [], "ancient-sub": []}
modern.subscribe("telemetry", TELEMETRY_V2, received["modern-sub"].append)
legacy.subscribe("telemetry", TELEMETRY_V1, received["legacy-sub"].append)
ancient.subscribe("telemetry", TELEMETRY_V1, received["ancient-sub"].append)

for step in range(3):
    publisher.submit(
        "telemetry",
        TELEMETRY_V2,
        TELEMETRY_V2.make_record(t=float(step), load=40 + step, host="node-7"),
    )
net.run()

print("\nevents delivered (new v2.0 events, mixed-version sinks):")
for address, events in received.items():
    fields = sorted(events[0].keys())
    print(f"  {address:12s}: {len(events)} events, fields={fields}")
    assert len(events) == 3

print(f"\nsimulated network: {net.messages_sent} messages, "
      f"{net.bytes_sent} bytes, finished at t={net.now * 1000:.2f} ms (virtual)")
print("OK: three ECho generations interoperate with zero application changes.")
