#!/usr/bin/env python3
"""Out-of-band meta-data as a real protocol — the format server.

PBIO's efficiency comes from keeping meta-data OFF the wire: messages
carry an 8-byte format id, and descriptions live in a format server.
This example runs that flow end to end on the simulated network:

1. a writer publishes its formats + retro-transformations to the server,
2. the writer then emits data to a reader whose local registry is EMPTY,
3. the reader parks the unknown messages, fetches the meta-data (one
   round trip, fetches coalesced), morphs v2.0 -> v1.0 with the fetched
   ECode, and drains the parked messages,
4. a registry snapshot is saved to JSON and reloaded, showing the same
   meta-data also working for components separated in *time*.

Run:  python examples/format_service.py
"""

from repro.bench.workloads import response_v2
from repro.echo.protocol import RESPONSE_V1, RESPONSE_V2, V2_TO_V1_TRANSFORM
from repro.morph import MorphReceiver
from repro.net import Network
from repro.pbio import FormatRegistry, PBIOContext
from repro.pbio.serialization import dump_registry, load_registry
from repro.pbio.service import FormatService, MetaClient, RemoteMetaReceiver

net = Network()
service = FormatService(net)  # listens at "format-service"

# --- the writer publishes its meta-data, then sends data -------------------

writer_registry = FormatRegistry()
writer_registry.register_transform(V2_TO_V1_TRANSFORM)
writer = MetaClient(net, "writer", registry=writer_registry)
writer.publish()

reader = RemoteMetaReceiver(net, "reader")  # EMPTY local registry
received = []
reader.register_handler(RESPONSE_V1, received.append)

wire = PBIOContext(writer_registry).encode(RESPONSE_V2, response_v2(3))
print(f"wire message: {len(wire)} bytes (meta-data NOT included — "
      "only the 8-byte format id)")

for _ in range(4):  # data races ahead of meta-data
    writer.send("reader", wire)
net.run()

print(f"reader delivered {len(received)} records after "
      f"{service.stats['fetches']} meta-data fetch(es)")
print(f"  first record: member_count={received[0].member_count}, "
      f"src_count={received[0].src_count}, sink_count={received[0].sink_count}")
assert len(received) == 4
assert service.stats["fetches"] == 1  # parked + coalesced into one fetch
assert received[0].src_count == 2     # the fetched ECode transform ran

# --- the same meta-data, separated in time ---------------------------------

snapshot = dump_registry(writer_registry)
print(f"\nregistry snapshot: {len(snapshot)} bytes of JSON")
# ... imagine this sitting in an archive next to recorded wire traffic ...
revived = load_registry(snapshot)
archival_reader = MorphReceiver(revived)
archive = []
archival_reader.register_handler(RESPONSE_V1, archive.append)
archival_reader.process(wire)
assert archive[0] == received[0]
print("an archival reader revived the snapshot and decoded the same bytes.")
print("\nOK: meta-data flowed out-of-band over the network AND across time.")
