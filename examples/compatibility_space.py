#!/usr/bin/env python3
"""Compatibility space — how morphing widens what a receiver accepts.

Section 3.1 of the paper defines a receiver's *compatibility space* as
the set of message formats it can successfully interoperate with.  This
example builds five revisions of a ``JobStatus`` message (the kind of
drift a long-running cluster accumulates) and shows the space of a
v1-only consumer under three regimes:

1. strict binary matching (perfect matches only),
2. structural reconciliation (MaxMatch with default thresholds:
   default-fill + field-drop),
3. full morphing (writer-supplied ECode transformations, chained).

It also prints the diff / Mismatch-Ratio matrix that MaxMatch reasons
over, and demonstrates the threshold knobs.

Run:  python examples/compatibility_space.py
"""

from repro import FormatRegistry, IOField, IOFormat, MorphReceiver, PBIOContext
from repro.morph import diff, mismatch_ratio

# --- five revisions of one message ------------------------------------------

V1 = IOFormat("JobStatus", [
    IOField("job_id", "string"),
    IOField("running", "boolean"),
    IOField("exit_code", "integer"),
], version="1")

# v2 adds an optional field: still structurally reconcilable with v1
V2 = IOFormat("JobStatus", [
    IOField("job_id", "string"),
    IOField("running", "boolean"),
    IOField("exit_code", "integer"),
    IOField("hostname", "string"),
], version="2")

# v3 restructures: state becomes an enum -- needs a real transformation
V3 = IOFormat("JobStatus", [
    IOField("job_id", "string"),
    IOField("state", "enumeration"),  # 0 queued, 1 running, 2 done
    IOField("exit_code", "integer"),
    IOField("hostname", "string"),
], version="3")

# v4 nests host info -- further from v1 still
V4 = IOFormat("JobStatus", [
    IOField("job_id", "string"),
    IOField("state", "enumeration"),
    IOField("exit_code", "integer"),
    IOField("host", "complex", subformat=IOFormat("HostInfo", [
        IOField("hostname", "string"),
        IOField("rack", "integer"),
    ], version="3")),
], version="4")

# v5 is a different message altogether (same name, alien structure)
V5 = IOFormat("JobStatus", [
    IOField("blob", "string"),
    IOField("checksum", "unsigned", 8),
], version="5")

REVISIONS = [V1, V2, V3, V4, V5]

print("diff / Mr matrix (rows = incoming, cols = receiver's v1):")
print(f"  {'rev':>4} {'diff(f,v1)':>11} {'diff(v1,f)':>11} {'Mr(f,v1)':>9}")
for fmt in REVISIONS:
    print(f"  v{fmt.version:>3} {diff(fmt, V1):>11} {diff(V1, fmt):>11} "
          f"{mismatch_ratio(fmt, V1):>9.2f}")

# --- the writers attach transformations (v3->v2->... retro chain) -----------

registry = FormatRegistry()
for fmt in REVISIONS:
    registry.register(fmt)
registry.add_transform(V3, V2, """
    old.job_id = new.job_id;
    old.running = 0;
    if (new.state == 1) { old.running = 1; }
    old.exit_code = new.exit_code;
    old.hostname = new.hostname;
""")
registry.add_transform(V4, V3, """
    old.job_id = new.job_id;
    old.state = new.state;
    old.exit_code = new.exit_code;
    old.hostname = new.host.hostname;
""")


def space(receiver):
    return sorted(
        f"v{fmt.version}" for fmt in receiver.compatibility_space()
        if fmt.name == "JobStatus"
    )


strict = MorphReceiver(registry, diff_threshold=0, mismatch_threshold=0.0)
strict.register_handler(V1, lambda rec: rec)

# no transforms visible, and a tight Mismatch-Ratio budget: the receiver
# only accepts messages that can fill >= 75% of its fields (DIFF/MISMATCH
# thresholds are the paper's system-tuning knobs)
structural = MorphReceiver(FormatRegistry(), mismatch_threshold=0.25)
for fmt in REVISIONS:
    structural.registry.register(fmt)
structural.register_handler(V1, lambda rec: rec)

# same tight budget, but the transforms are visible: v3/v4 reach v1
# exactly (Mr = 0) through the chain, so the budget never bites
morphing = MorphReceiver(registry, mismatch_threshold=0.25)
morphing.register_handler(V1, lambda rec: rec)

print("\ncompatibility space of a v1-only consumer (Mr budget 0.25):")
print(f"  strict binary matching : {space(strict)}")
print(f"  structural reconcile   : {space(structural)}")
print(f"  full message morphing  : {space(morphing)}")

assert space(strict) == ["v1"]
assert space(structural) == ["v1", "v2"]
assert space(morphing) == ["v1", "v2", "v3", "v4"]  # v5 stays alien

# with a loose budget, structural matching would also admit v3/v4 -- but
# lossily (their 'running' flag would be silently defaulted); morphing
# admits them with the semantics intact
loose = MorphReceiver(structural.registry)
loose.register_handler(V1, lambda rec: rec)
print(f"  structural, loose Mr   : {space(loose)}  (lossy default-fill!)")

# --- watch one v4 message actually arrive ------------------------------------

sender = PBIOContext(registry)
wire = sender.encode(V4, V4.make_record(
    job_id="job-42", state=1, exit_code=0,
    host={"hostname": "rack7-node3", "rack": 7},
))
delivered = morphing.process(wire)
print(f"\nv4 message delivered to the v1 handler as: {dict(delivered)}")
assert delivered["running"] is True or delivered["running"] == 1

route = morphing.route_for(V4)
print(f"route: {len(route.chain)} transform hop(s), "
      f"then reconcile = {route.coercion is not None}")
print("\nOK: morphing turned 1 acceptable revision into 4 "
      "(and correctly refused the alien v5).")
